"""Conservative parallel DES: partitioner, merge, and equivalence.

The contract under test (DESIGN §15): the partitioned engine is an
*execution strategy*, not a different simulation.  The shard count is
fixed by the plan; ``workers`` only chooses how many OS processes host
those shards; and every configuration — one shard, many shards,
lockstep or processes — must compute the sequential answer byte for
byte.  The partitioner is equally on trial: a cut is only produced
when every cross-process-write key in the race matrix is provably
shard-local or a declared merge point, and anything else degrades to
the sequential runner instead of silently computing something new.
"""

import json

import pytest

from repro.faults.plan import FaultPlan
from repro.perf import run_bench
from repro.perf.loadgen import check_capacity_curve
from repro.perf.parallel import run_parallel_bench, run_parallel_chaos
from repro.sim.parallel import (
    PartitionError,
    accumulate_deltas,
    canonical_state_hash,
    classify_matrix,
    merge_samples,
    merge_window_log,
    plan_partition,
    suggest_cut,
)
from repro.sim.parallel.merge import conservation_check
from repro.sim.parallel.partition import (
    CUT_LINK_DELAY,
    CUT_LINK_NAME,
    derive_shard_seed,
)

# A hand-built race matrix: only `cross_process_write` keys matter to
# the partitioner; the labels exercise every classification branch.
LEGAL_MATRIX = {
    "repro.security.payment.PaymentProcessor.accounts":
        {"cross_process_write": True},
    "repro.core.transaction.TransactionEngine.records":
        {"cross_process_write": True},
    "repro.web.server.WebServer.sessions": {"cross_process_write": True},
    "repro.fleet.balancer.HashRing.members": {"cross_process_write": True},
    "repro.db.sql.Database.tables": {"cross_process_write": False},
}

MODULE_GLOBAL_MATRIX = dict(LEGAL_MATRIX)
MODULE_GLOBAL_MATRIX["repro.web.server.PENDING"] = {
    "cross_process_write": True}

# Small-but-real scenario kwargs for the equivalence runs.  Small user
# counts keep the suite fast; the full-scale claim is re-verified by
# ``parallel_check`` in the bench CLI / CI.
BENCH = dict(users=8, seed=7, transactions_per_user=3, horizon=90.0)


def _det_bytes(report):
    return json.dumps(report["deterministic"], indent=2, sort_keys=True)


# ------------------------------------------------------ the partitioner
def test_plan_covers_users_contiguously_and_keeps_seed_on_shard0():
    plan = plan_partition(users=10, seed=41, horizon=120.0,
                          matrix=LEGAL_MATRIX, shards=3)
    assert [s.users for s in plan.shards] == [4, 3, 3]
    offsets = [s.user_offset for s in plan.shards]
    assert offsets == [0, 4, 7]
    assert plan.shards[0].seed == 41
    assert all(s.seed != 41 for s in plan.shards[1:])
    # Lookahead is the cut link's propagation delay: no shard can
    # affect another in less virtual time than the wire takes.
    assert plan.lookahead == CUT_LINK_DELAY
    assert all(link.name == CUT_LINK_NAME for link in plan.cut_links)
    assert plan.sync_window >= plan.lookahead
    assert plan.windows >= 1


def test_derived_shard_seeds_are_stable_and_distinct():
    seeds = [derive_shard_seed(7, shard) for shard in range(4)]
    assert seeds[0] == 7
    assert len(set(seeds)) == 4
    assert seeds == [derive_shard_seed(7, shard) for shard in range(4)]


def test_classification_labels_every_branch():
    classes, blocking = classify_matrix(LEGAL_MATRIX, fleet=0)
    assert classes["repro.security.payment.PaymentProcessor.accounts"] \
        == "merge-point"
    assert classes["repro.web.server.WebServer.sessions"] == "replicated"
    assert classes["repro.fleet.balancer.HashRing.members"] \
        == "control-plane"
    # Read-only keys never enter the classification at all.
    assert "repro.db.sql.Database.tables" not in classes
    assert blocking == []


def test_module_level_global_blocks_the_cut():
    with pytest.raises(PartitionError) as excinfo:
        plan_partition(users=8, matrix=MODULE_GLOBAL_MATRIX)
    blocked = [entry["key"] for entry in excinfo.value.blocking]
    assert blocked == ["repro.web.server.PENDING"]


def test_fleet_control_plane_blocks_the_cut_only_when_fleet_requested():
    plan = plan_partition(users=8, matrix=LEGAL_MATRIX, fleet=0, shards=2)
    assert len(plan.shards) == 2
    with pytest.raises(PartitionError) as excinfo:
        plan_partition(users=8, matrix=LEGAL_MATRIX, fleet=3)
    blocked = [entry["key"] for entry in excinfo.value.blocking]
    assert blocked == ["repro.fleet.balancer.HashRing.members"]


def test_suggest_cut_reports_legal_plan_and_refusal():
    legal = suggest_cut(users=100, workers=2, matrix=LEGAL_MATRIX)
    assert legal["legal"] is True
    assert len(legal["shards"]) == 2
    assert legal["blocking_keys"] == []
    assert legal["merge_points"]

    refusal = suggest_cut(users=100, workers=2, fleet=3,
                          matrix=LEGAL_MATRIX)
    assert refusal["legal"] is False
    assert "fleet" in refusal["reason"] or refusal["blocking_keys"]
    assert refusal["shards"] == []


# ------------------------------------------------------------- the merge
def test_merge_window_log_restores_global_order():
    window_log = [
        {"window": 0, "reports": [
            {"shard": 1, "deltas": [[15.0, 0, 0, "k", 2]]},
            {"shard": 0, "deltas": [[15.0, 0, 0, "k", 1],
                                    [10.0, 0, 0, "j", 5]]},
        ]},
        {"window": 1, "reports": [
            {"shard": 0, "deltas": [[30.0, 0, 1, "k", 7]]},
        ]},
    ]
    merged = merge_window_log(window_log)
    assert [(e["time"], e["shard"], e["key"]) for e in merged] == [
        (10.0, 0, "j"), (15.0, 0, "k"), (15.0, 1, "k"), (30.0, 0, "k")]
    assert accumulate_deltas(merged) == {"j": 5, "k": 10}


def test_conservation_check_catches_dropped_deltas():
    merged = [{"key": "k", "value": 3}, {"key": "k", "value": 4}]
    assert conservation_check(merged, {"k": 7})["ok"]
    verdict = conservation_check(merged, {"k": 9})
    assert not verdict["ok"]
    assert verdict["mismatches"]["k"] == {"windows": 7, "final": 9}


def test_merge_samples_is_the_sorted_union():
    assert merge_samples([[3.0, 1.0], [2.0], []]) == [1.0, 2.0, 3.0]


def test_state_hash_is_order_invariant_but_state_sensitive():
    payloads = [{"shard": 0, "deterministic": {"x": 1}},
                {"shard": 1, "deterministic": {"x": 2}}]
    assert canonical_state_hash(payloads) \
        == canonical_state_hash(list(reversed(payloads)))
    changed = [{"shard": 0, "deterministic": {"x": 1}},
               {"shard": 1, "deterministic": {"x": 3}}]
    assert canonical_state_hash(payloads) != canonical_state_hash(changed)


# ------------------------------------------------- sequential equivalence
@pytest.mark.parametrize("users,seed", [(8, 7), (5, 11), (9, 23)])
def test_one_shard_plan_is_byte_identical_to_sequential_bench(users, seed):
    scenario = dict(BENCH, users=users, seed=seed)
    sequential = run_bench(**scenario)
    parallel = run_parallel_bench(workers=1, shards=1, **scenario)
    merged = dict(parallel["deterministic"])
    parallel_section = merged.pop("parallel")
    assert parallel_section["shards"] == 1
    assert json.dumps(merged, indent=2, sort_keys=True) \
        == _det_bytes(sequential)


@pytest.mark.parametrize("shards,seed", [(2, 7), (4, 7), (2, 31)])
def test_worker_count_never_changes_the_answer(shards, seed):
    scenario = dict(BENCH, seed=seed)
    lockstep = run_parallel_bench(workers=1, shards=shards, **scenario)
    processes = run_parallel_bench(workers=2, shards=shards, **scenario)
    assert processes["measured"]["mode"] == "processes"
    assert lockstep["measured"]["mode"] == "lockstep"
    assert _det_bytes(lockstep) == _det_bytes(processes)
    assert lockstep["deterministic"]["parallel"]["state_hash"] \
        == processes["deterministic"]["parallel"]["state_hash"]


def test_merged_accounting_matches_offered_load():
    report = run_parallel_bench(workers=2, shards=2, **BENCH)
    det = report["deterministic"]
    assert det["users"] == BENCH["users"]
    assert det["offered"] == BENCH["users"] * BENCH["transactions_per_user"]
    assert det["success_vs_offered"] > 0
    assert "success_rate" not in det
    assert det["parallel"]["merge_log_entries"] > 0
    assert det["parallel"]["merge_points"][
        "repro.core.transaction.TransactionEngine.records"] \
        == det["completed"]


def test_cut_link_flap_is_deterministic_across_worker_counts():
    """Chaos on the cut itself: flap the severed wired link mid-run in
    every shard and require processes to reproduce lockstep exactly."""
    plan = FaultPlan()
    plan.add("link_flap", at=30.0, duration=6.0, target=CUT_LINK_NAME)
    kwargs = dict(scenario="storm", seed=3, intensity=0.4, stations=4,
                  transactions_per_station=3, horizon=90.0, plan=plan,
                  shards=2)
    lockstep = run_parallel_chaos(workers=1, **kwargs)
    processes = run_parallel_chaos(workers=2, **kwargs)
    assert lockstep["faults"].get("injected_link_flap", 0) >= 2  # per shard
    for report in (lockstep, processes):
        measured = report.pop("measured")
        assert measured["workers"] >= 1
    assert json.dumps(lockstep, indent=2, sort_keys=True) \
        == json.dumps(processes, indent=2, sort_keys=True)


def test_fleet_scenario_falls_back_to_sequential():
    report = run_parallel_bench(workers=2, fleet=1, **BENCH)
    fallback = report["parallel_fallback"]
    assert fallback["workers"] == 2
    assert "no legal cut" in fallback["reason"]
    assert any("repro.fleet" in key for key in fallback["blocking_keys"])
    # The fallback *is* the sequential report, not an approximation.
    sequential = run_bench(fleet=1, **BENCH)
    assert _det_bytes(report) == _det_bytes(sequential)


# ------------------------------------- events/s sweep regression check
def _curve(events_large):
    det = [{"users": 10, "admitted": 20, "goodput_tps": 1.0},
           {"users": 50, "admitted": 100, "goodput_tps": 2.0}]
    measured = [{"users": 10, "events_per_sec": 100_000},
                {"users": 50, "events_per_sec": events_large}]
    return check_capacity_curve(det, events_points=measured)


def test_events_per_sec_regression_fails_the_sweep():
    verdict = _curve(events_large=70_000)["events_per_sec"]
    assert verdict["checked"] and not verdict["ok"]
    assert verdict["ratio"] == 0.7


def test_events_per_sec_within_tolerance_passes():
    verdict = _curve(events_large=80_000)["events_per_sec"]
    assert verdict["checked"] and verdict["ok"]
    assert verdict["smallest"]["users"] == 10
    assert verdict["largest"]["users"] == 50


def test_events_check_skips_single_point_sweeps():
    det = [{"users": 10, "admitted": 20, "goodput_tps": 1.0}]
    verdict = check_capacity_curve(
        det, events_points=[{"users": 10, "events_per_sec": 1}])
    assert verdict["events_per_sec"] == {
        "checked": False, "ok": True, "tolerance": 0.25}
