"""Tests for crypto primitives, the WTLS channel, auth and payment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Network, Subnet, TCPStack
from repro.security import (
    AuthenticationError,
    PaymentError,
    PaymentOrder,
    PaymentProcessor,
    SecureChannel,
    SecurityError,
    TokenIssuer,
    UserStore,
    dh_private_key,
    dh_public_key,
    dh_shared_secret,
    keystream_xor,
    mac,
    verify_mac,
)
from repro.sim import SeedBank, Simulator


# ----------------------------------------------------------------- crypto
def test_dh_agreement():
    bank = SeedBank(1)
    a_priv = dh_private_key(bank.stream("a"))
    b_priv = dh_private_key(bank.stream("b"))
    a_pub, b_pub = dh_public_key(a_priv), dh_public_key(b_priv)
    assert dh_shared_secret(b_pub, a_priv) == dh_shared_secret(a_pub, b_priv)


def test_dh_rejects_degenerate_keys():
    priv = dh_private_key(SeedBank(1).stream("a"))
    with pytest.raises(ValueError):
        dh_shared_secret(1, priv)
    with pytest.raises(ValueError):
        dh_shared_secret(0, priv)


def test_stream_cipher_round_trip_and_key_sensitivity():
    data = b"confidential order: 3 phones"
    key1, key2 = b"k" * 32, b"j" * 32
    ct = keystream_xor(key1, 7, data)
    assert ct != data
    assert keystream_xor(key1, 7, ct) == data
    assert keystream_xor(key2, 7, ct) != data
    assert keystream_xor(key1, 8, ct) != data  # nonce matters


@given(st.binary(max_size=300), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=30)
def test_stream_cipher_involution_property(data, nonce):
    key = b"property-key".ljust(32, b"\x00")
    assert keystream_xor(key, nonce, keystream_xor(key, nonce, data)) == data


def test_mac_verifies_and_catches_tampering():
    key = b"m" * 32
    tag = mac(key, b"hello", b"world")
    assert verify_mac(key, tag, b"hello", b"world")
    assert not verify_mac(key, tag, b"hello", b"world!")
    assert not verify_mac(b"x" * 32, tag, b"hello", b"world")
    # Part boundaries matter (no concatenation ambiguity).
    assert not verify_mac(key, tag, b"hellow", b"orld")


# ------------------------------------------------------------------ wtls
def secure_pair(psk=None, client_psk="same"):
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("client")
    b = net.add_node("server")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), delay=0.005)
    net.build_routes()
    tcp_a, tcp_b = TCPStack(a), TCPStack(b)
    listener = tcp_b.listen(4430)
    bank = SeedBank(42)
    world = {"sim": sim, "bank": bank}

    client_key = psk if client_psk == "same" else client_psk

    def server(env):
        conn = yield listener.accept()
        channel = SecureChannel(conn, bank.stream("server"), psk=psk)
        try:
            yield channel.handshake_server()
        except SecurityError as exc:
            world["server_error"] = exc
            return
        world["server_channel"] = channel
        while True:
            plaintext = yield channel.recv()
            if plaintext == b"":
                return
            world.setdefault("server_got", []).append(plaintext)
            channel.send(b"ACK:" + plaintext)

    def client(env):
        conn = tcp_a.connect(b.primary_address, 4430)
        yield conn.established_event
        channel = SecureChannel(conn, bank.stream("client"), psk=client_key)
        try:
            yield channel.handshake_client()
        except SecurityError as exc:
            world["client_error"] = exc
            return
        world["client_channel"] = channel
        channel.send(b"BUY 1 phone")
        reply = yield channel.recv()
        world["client_got"] = reply

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=120)
    return world


def test_secure_round_trip():
    world = secure_pair()
    assert world["server_got"] == [b"BUY 1 phone"]
    assert world["client_got"] == b"ACK:BUY 1 phone"


def test_plaintext_never_on_wire():
    """Sniff every TCP segment: the order text must not appear."""
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("client")
    b = net.add_node("server")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), delay=0.005)
    net.build_routes()
    sniffed = bytearray()

    def sniffer(packet, iface):
        seg = packet.payload
        data = getattr(seg, "data", b"")
        if data:
            sniffed.extend(data)
        return False

    b.rx_taps.append(sniffer)
    tcp_a, tcp_b = TCPStack(a), TCPStack(b)
    listener = tcp_b.listen(4430)
    bank = SeedBank(9)
    secret_text = b"PAY 499 to merchant ACME"

    def server(env):
        conn = yield listener.accept()
        channel = SecureChannel(conn, bank.stream("s"))
        yield channel.handshake_server()
        yield channel.recv()

    def client(env):
        conn = tcp_a.connect(b.primary_address, 4430)
        yield conn.established_event
        channel = SecureChannel(conn, bank.stream("c"))
        yield channel.handshake_client()
        channel.send(secret_text)

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=60)
    assert secret_text not in bytes(sniffed)
    assert len(sniffed) > 0


def test_psk_authentication_accepts_and_rejects():
    good = secure_pair(psk=b"shared-secret")
    assert good["server_got"] == [b"BUY 1 phone"]

    bad = secure_pair(psk=b"shared-secret", client_psk=b"wrong-secret")
    assert isinstance(bad.get("server_error"), SecurityError)
    assert isinstance(bad.get("client_error"), SecurityError)


def test_tampered_record_detected():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("client")
    b = net.add_node("server")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), delay=0.005)
    net.build_routes()
    tcp_a, tcp_b = TCPStack(a), TCPStack(b)
    listener = tcp_b.listen(4430)
    bank = SeedBank(3)
    outcome = {}

    def server(env):
        conn = yield listener.accept()
        channel = SecureChannel(conn, bank.stream("s"))
        yield channel.handshake_server()
        try:
            yield channel.recv()
            outcome["verdict"] = "accepted"
        except SecurityError:
            outcome["verdict"] = "rejected"

    def client(env):
        conn = tcp_a.connect(b.primary_address, 4430)
        yield conn.established_event
        channel = SecureChannel(conn, bank.stream("c"))
        yield channel.handshake_client()
        # Tamper: flip bits in the ciphertext before sending.
        channel._send_seq = 0
        from repro.security.crypto import keystream_xor as kx, mac as m
        ciphertext = kx(channel._send_key, 0, b"PAY 1")
        corrupted = bytes([ciphertext[0] ^ 0xFF]) + ciphertext[1:]
        tag = m(channel._send_mac_key, (0).to_bytes(8, "big"), ciphertext)
        import struct
        record = struct.pack(">QI", 0, len(corrupted) + len(tag)) \
            + corrupted + tag
        conn.send(record)

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=60)
    assert outcome["verdict"] == "rejected"


def test_replayed_record_detected():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("client")
    b = net.add_node("server")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), delay=0.005)
    net.build_routes()
    tcp_a, tcp_b = TCPStack(a), TCPStack(b)
    listener = tcp_b.listen(4430)
    bank = SeedBank(4)
    outcome = {}

    def server(env):
        conn = yield listener.accept()
        channel = SecureChannel(conn, bank.stream("s"))
        yield channel.handshake_server()
        first = yield channel.recv()
        outcome["first"] = first
        try:
            yield channel.recv()
            outcome["second"] = "accepted"
        except SecurityError:
            outcome["second"] = "rejected"

    def client(env):
        conn = tcp_a.connect(b.primary_address, 4430)
        yield conn.established_event
        channel = SecureChannel(conn, bank.stream("c"))
        yield channel.handshake_client()
        channel.send(b"PAY 10")
        # Replay the identical record by rewinding the sequence number.
        channel._send_seq = 0
        channel.send(b"PAY 10")

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=60)
    assert outcome["first"] == b"PAY 10"
    assert outcome["second"] == "rejected"


def test_send_before_handshake_rejected():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"))
    net.build_routes()
    conn = TCPStack(a).connect(b.primary_address, 1)
    channel = SecureChannel(conn, SeedBank(0).stream("x"))
    with pytest.raises(SecurityError):
        channel.send(b"data")
    with pytest.raises(SecurityError):
        channel.recv()


# ------------------------------------------------------------------- auth
def test_user_store_register_verify():
    store = UserStore(SeedBank(5).stream("auth"))
    store.register("ann", "hunter2", role="buyer")
    assert store.verify("ann", "hunter2") == {"role": "buyer"}
    with pytest.raises(AuthenticationError):
        store.verify("ann", "wrong")
    with pytest.raises(AuthenticationError):
        store.verify("bob", "hunter2")
    with pytest.raises(ValueError):
        store.register("ann", "again")


def test_token_issue_validate_expire():
    sim = Simulator()
    issuer = TokenIssuer(sim, secret=b"signing", ttl=100.0)
    token = issuer.issue("ann")
    assert issuer.validate(token) == "ann"
    with pytest.raises(AuthenticationError):
        issuer.validate(token[:-1] + ("0" if token[-1] != "0" else "1"))
    with pytest.raises(AuthenticationError):
        issuer.validate("garbage")

    def wait(env):
        yield env.timeout(200.0)

    sim.spawn(wait(sim))
    sim.run()
    with pytest.raises(AuthenticationError):
        issuer.validate(token)


# ---------------------------------------------------------------- payment
def payment_world():
    sim = Simulator()
    processor = PaymentProcessor(sim, SeedBank(7).stream("pay"))
    processor.open_account("ann", 10_000)
    key = processor.register_merchant("acme")
    return sim, processor, key


def signed_order(processor, key, amount=500, account="ann",
                 merchant="acme", nonce=None):
    return PaymentOrder(
        account=account,
        merchant=merchant,
        amount_cents=amount,
        nonce=nonce or processor.make_nonce(),
    ).signed(key)


def test_authorize_capture_flow():
    sim, processor, key = payment_world()
    auth = processor.authorize(signed_order(processor, key, amount=500))
    assert processor.balance("ann") == 10_000  # hold only
    new_balance = processor.capture(auth.auth_id)
    assert new_balance == 9_500


def test_void_releases_hold():
    sim, processor, key = payment_world()
    auth = processor.authorize(signed_order(processor, key, amount=9_000))
    processor.void(auth.auth_id)
    auth2 = processor.authorize(signed_order(processor, key, amount=9_000))
    assert auth2.state == "authorized"


def test_holds_count_against_balance():
    sim, processor, key = payment_world()
    processor.authorize(signed_order(processor, key, amount=9_000))
    with pytest.raises(PaymentError, match="insufficient"):
        processor.authorize(signed_order(processor, key, amount=2_000))


def test_replayed_order_declined():
    sim, processor, key = payment_world()
    order = signed_order(processor, key)
    processor.authorize(order)
    with pytest.raises(PaymentError, match="replayed"):
        processor.authorize(order)
    assert processor.stats.get("declined_replay") == 1


def test_tampered_amount_declined():
    sim, processor, key = payment_world()
    order = signed_order(processor, key, amount=500)
    inflated = PaymentOrder(
        account=order.account,
        merchant=order.merchant,
        amount_cents=5,  # attacker lowers the price
        nonce=order.nonce,
        signature=order.signature,
    )
    with pytest.raises(PaymentError, match="signature"):
        processor.authorize(inflated)


def test_unknown_merchant_and_account_declined():
    sim, processor, key = payment_world()
    with pytest.raises(PaymentError, match="merchant"):
        processor.authorize(PaymentOrder("ann", "evil", 100, "n1"))
    order = signed_order(processor, key, account="nobody")
    with pytest.raises(PaymentError, match="account"):
        processor.authorize(order)


def test_double_capture_rejected():
    sim, processor, key = payment_world()
    auth = processor.authorize(signed_order(processor, key))
    processor.capture(auth.auth_id)
    with pytest.raises(PaymentError, match="already"):
        processor.capture(auth.auth_id)
    with pytest.raises(PaymentError, match="already"):
        processor.void(auth.auth_id)
