"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(env):
        yield env.timeout(5)
        seen.append(env.now)
        yield env.timeout(2.5)
        seen.append(env.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [5.0, 7.5]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        got.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["hello"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    for delay, tag in [(3, "c"), (1, "a"), (2, "b")]:
        sim.spawn(waiter(sim, delay, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []

    def waiter(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in ["first", "second", "third"]:
        sim.spawn(waiter(sim, tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(env):
        value = yield ev
        got.append(value)

    def trigger(env):
        yield env.timeout(4)
        ev.succeed(42)

    sim.spawn(waiter(sim))
    sim.spawn(trigger(sim))
    sim.run()
    assert got == [42]
    assert ev.processed


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger(env):
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    sim.spawn(waiter(sim))
    sim.spawn(trigger(sim))
    sim.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_process_return_value_propagates():
    sim = Simulator()
    got = []

    def child(env):
        yield env.timeout(2)
        return "result"

    def parent(env):
        value = yield env.spawn(child(env))
        got.append(value)

    sim.spawn(parent(sim))
    sim.run()
    assert got == ["result"]


def test_process_exception_propagates_to_waiter():
    sim = Simulator(strict=False)
    caught = []

    def child(env):
        yield env.timeout(1)
        raise ValueError("child failed")

    def parent(env):
        try:
            yield env.spawn(child(env))
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["child failed"]


def test_strict_mode_raises_uncaught_process_error():
    sim = Simulator(strict=True)

    def bad(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    sim.spawn(bad(sim))
    with pytest.raises(ValueError):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    events = []

    def sleeper(env):
        try:
            yield env.timeout(100)
            events.append("finished")
        except Interrupt as intr:
            events.append(("interrupted", env.now, intr.cause))

    def interrupter(env, proc):
        yield env.timeout(3)
        proc.interrupt("wake up")

    proc = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, proc))
    sim.run()
    assert events == [("interrupted", 3.0, "wake up")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick(env):
        yield env.timeout(1)

    proc = sim.spawn(quick(sim))
    sim.run()
    assert not proc.is_alive
    proc.interrupt()  # must not raise


def test_run_until_stops_clock():
    sim = Simulator()

    def ticker(env):
        while True:
            yield env.timeout(10)

    sim.spawn(ticker(sim))
    sim.run(until=35)
    assert sim.now == 35


def test_run_until_past_rejected():
    sim = Simulator()

    def proc(env):
        yield env.timeout(10)

    sim.spawn(proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_all_of_waits_for_every_event():
    sim = Simulator()
    got = []

    def proc(env):
        t1 = env.timeout(2, value="a")
        t2 = env.timeout(5, value="b")
        result = yield env.all_of([t1, t2])
        got.append((env.now, sorted(result.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(5.0, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def proc(env):
        t1 = env.timeout(2, value="fast")
        t2 = env.timeout(50, value="slow")
        result = yield env.any_of([t1, t2])
        got.append((env.now, list(result.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(2.0, ["fast"])]


def test_any_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def proc(env):
        result = yield env.any_of([])
        got.append(result)

    sim.spawn(proc(sim))
    sim.run()
    assert got == [{}]


def test_yield_non_event_rejected():
    sim = Simulator()

    def bad(env):
        yield 42  # repro: noqa[yield-event] deliberately malformed process

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_peek_reports_next_event_time():
    sim = Simulator()

    def proc(env):
        yield env.timeout(7)

    sim.spawn(proc(sim))
    assert sim.peek() == 0.0  # process bootstrap event
    sim.step()
    assert sim.peek() == 7.0


def test_wait_on_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    got = []

    def late_waiter(env):
        yield env.timeout(10)
        value = yield ev  # ev processed long ago
        got.append((env.now, value))

    def trigger(env):
        yield env.timeout(1)
        ev.succeed("early")

    sim.spawn(late_waiter(sim))
    sim.spawn(trigger(sim))
    sim.run()
    assert got == [(10.0, "early")]


def test_all_of_fails_when_any_child_fails():
    sim = Simulator()
    ev_ok = sim.event()
    ev_bad = sim.event()
    caught = []

    def waiter(env):
        try:
            yield env.all_of([ev_ok, ev_bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger(env):
        yield env.timeout(1)
        ev_bad.fail(RuntimeError("child died"))
        ev_ok.succeed("fine")

    sim.spawn(waiter(sim))
    sim.spawn(trigger(sim))
    sim.run()
    assert caught == ["child died"]


def test_any_of_fails_if_first_event_fails():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(env):
        try:
            yield env.any_of([ev, env.timeout(100)])
        except ValueError as exc:
            caught.append(str(exc))

    def trigger(env):
        yield env.timeout(1)
        ev.fail(ValueError("early failure"))

    sim.spawn(waiter(sim))
    sim.spawn(trigger(sim))
    sim.run(until=200)
    assert caught == ["early failure"]


def test_interrupt_cause_none_by_default():
    sim = Simulator()
    seen = []

    def sleeper(env):
        try:
            yield env.timeout(50)
        except Interrupt as intr:
            seen.append(intr.cause)

    proc = sim.spawn(sleeper(sim))

    def poke(env):
        yield env.timeout(1)
        proc.interrupt()

    sim.spawn(poke(sim))
    sim.run()
    assert seen == [None]


def test_all_of_fails_immediately_on_already_failed_child():
    sim = Simulator()
    bad = sim.event()
    bad.fail(RuntimeError("already dead"))
    ok = sim.event()
    ok.succeed("fine")
    sim.run()  # both children are fully processed before the AllOf exists
    caught = []

    def waiter(env):
        try:
            yield env.all_of([ok, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter(sim))
    sim.run()
    # Pre-fix, _check_immediate succeeded with a partial {ok: "fine"}
    # dict, silently swallowing the failure.
    assert caught == ["already dead"]


def test_any_of_failure_follows_firing_order_not_list_order():
    sim = Simulator()
    bad = sim.event()
    good = sim.event()

    def trigger(env):
        bad.fail(ValueError("fired first"))
        yield env.timeout(1)
        good.succeed("fired second")

    sim.spawn(trigger(sim))
    sim.run()
    caught = []

    def waiter(env):
        try:
            # The failed event fired first but is listed *second*.
            yield env.any_of([good, bad])
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter(sim))
    sim.run()
    assert caught == ["fired first"]


def test_any_of_success_follows_firing_order_not_list_order():
    sim = Simulator()
    bad = sim.event()
    good = sim.event()

    def trigger(env):
        good.succeed("fired first")
        yield env.timeout(1)
        bad.fail(ValueError("fired second"))

    sim.spawn(trigger(sim))
    sim.run()
    got = []

    def waiter(env):
        # The success fired first but the failure is listed first; the
        # deterministic first-fired rule means the AnyOf succeeds.
        result = yield env.any_of([bad, good])
        got.append(result[good])

    sim.spawn(waiter(sim))
    sim.run()
    assert got == ["fired first"]


@pytest.mark.parametrize("combine", ["all_of", "any_of"])
def test_interrupt_detaches_condition_child_callbacks(combine):
    sim = Simulator()
    a, b = sim.event(), sim.event()
    seen = []

    def waiter(env):
        try:
            yield getattr(env, combine)([a, b])
        except Interrupt:
            seen.append("interrupted")

    proc = sim.spawn(waiter(sim))

    def poke(env):
        yield env.timeout(1)
        proc.interrupt()

    sim.spawn(poke(sim))
    sim.run()
    assert seen == ["interrupted"]
    # Pre-fix, the condition's _on_child callbacks lingered on the
    # children after the waiter was interrupted.
    assert a.callbacks == []
    assert b.callbacks == []
