"""Tests for the web tier: HTTP codec, server, CGI, sessions, templates."""

import pytest

from repro.db import Database, TransactionManager, execute
from repro.net import Network, Subnet
from repro.sim import Simulator
from repro.web import (
    HTTPClient,
    HTTPParseError,
    HTTPRequest,
    HTTPResponse,
    RequestParser,
    ResponseParser,
    TemplateError,
    WebServer,
    render,
)


# ------------------------------------------------------------------ codec
def test_request_encode_parse_round_trip():
    req = HTTPRequest("GET", "/shop?item=5", {"Host": "shop.example.com"})
    parsed = RequestParser().feed(req.encode())
    assert len(parsed) == 1
    out = parsed[0]
    assert out.method == "GET"
    assert out.path == "/shop?item=5"
    assert out.headers["host"] == "shop.example.com"
    assert out.query_params == {"item": "5"}


def test_request_with_body_round_trip():
    req = HTTPRequest(
        "POST", "/buy",
        {"content-type": "application/x-www-form-urlencoded"},
        body=b"item=7&qty=2",
    )
    out = RequestParser().feed(req.encode())[0]
    assert out.form_params == {"item": "7", "qty": "2"}
    assert out.params["qty"] == "2"


def test_response_round_trip_and_reason():
    resp = HTTPResponse.ok(b"<html>hi</html>")
    out = ResponseParser().feed(resp.encode())[0]
    assert out.status == 200
    assert out.reason == "OK"
    assert out.body == b"<html>hi</html>"
    assert out.content_type == "text/html"


def test_parser_handles_fragmented_input():
    req = HTTPRequest("GET", "/page", {"x-test": "1"})
    wire = req.encode()
    parser = RequestParser()
    collected = []
    for i in range(0, len(wire), 7):
        collected.extend(parser.feed(wire[i:i + 7]))
    assert len(collected) == 1
    assert collected[0].path == "/page"


def test_parser_handles_pipelined_messages():
    wire = (HTTPRequest("GET", "/a").encode()
            + HTTPRequest("GET", "/b").encode())
    parsed = RequestParser().feed(wire)
    assert [r.path for r in parsed] == ["/a", "/b"]


def test_parser_rejects_garbage():
    with pytest.raises(HTTPParseError):
        RequestParser().feed(b"NONSENSE\r\nno colon here\r\n\r\n")


def test_cookie_parsing():
    req = HTTPRequest("GET", "/", {"cookie": "msid=abc123; theme=dark"})
    assert req.cookies == {"msid": "abc123", "theme": "dark"}


# -------------------------------------------------------------- templates
def test_template_substitution_and_escaping():
    out = render("Hello {{ name }}!", {"name": "<world>"})
    assert out == "Hello &lt;world&gt;!"
    out = render("{{ markup | raw }}", {"markup": "<b>hi</b>"})
    assert out == "<b>hi</b>"


def test_template_dotted_lookup_and_missing():
    out = render("{{ user.name }}/{{ user.missing }}",
                 {"user": {"name": "ann"}})
    assert out == "ann/"


def test_template_for_loop():
    out = render("{% for item in items %}[{{ item.name }}]{% endfor %}",
                 {"items": [{"name": "a"}, {"name": "b"}]})
    assert out == "[a][b]"


def test_template_nested_loops():
    out = render(
        "{% for row in rows %}{% for cell in row %}{{ cell }},"
        "{% endfor %};{% endfor %}",
        {"rows": [[1, 2], [3]]})
    assert out == "1,2,;3,;"


def test_template_errors():
    with pytest.raises(TemplateError):
        render("{% for x %}{% endfor %}", {})
    with pytest.raises(TemplateError):
        render("{% for x in xs %}no end", {})
    with pytest.raises(TemplateError):
        render("{{ unclosed", {})
    with pytest.raises(TemplateError):
        render("{% endfor %}", {})


# ----------------------------------------------------------------- server
def web_world(**server_kwargs):
    sim = Simulator()
    net = Network(sim)
    host = net.add_node("webhost")
    client_node = net.add_node("visitor")
    net.connect(host, client_node, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=10_000_000, delay=0.005)
    net.build_routes()
    server = WebServer(host, **server_kwargs)
    client = HTTPClient(client_node)
    return sim, host, server, client


def fetch(sim, client, host, path, method="GET", body=None, headers=None):
    box = {}

    def go(env):
        if method == "GET":
            response = yield client.get(host.primary_address, path,
                                        headers=headers)
        else:
            response = yield client.post(host.primary_address, path,
                                         body or b"", headers=headers)
        box["response"] = response

    sim.spawn(go(sim))
    sim.run(until=sim.now + 60)
    return box.get("response")


def test_static_page_served():
    sim, host, server, client = web_world()
    server.add_page("/index.html", "<html>Welcome</html>")
    response = fetch(sim, client, host, "/index.html")
    assert response.status == 200
    assert b"Welcome" in response.body


def test_missing_page_404():
    sim, host, server, client = web_world()
    response = fetch(sim, client, host, "/nope")
    assert response.status == 404


def test_custom_error_body():
    sim, host, server, client = web_world()
    server.set_error_body(404, "<html>Our apologies</html>")
    response = fetch(sim, client, host, "/ghost")
    assert response.status == 404
    assert b"Our apologies" in response.body


def test_cgi_program_with_params():
    sim, host, server, client = web_world()

    def greeter(ctx):
        return HTTPResponse.ok(f"Hello {ctx.param('name', 'stranger')}")

    server.mount("/greet", greeter)
    response = fetch(sim, client, host, "/greet?name=ann")
    assert response.body == b"Hello ann"


def test_cgi_generator_program_with_database():
    sim, net_host = Simulator(), None
    sim, host, server, client = web_world()
    db = Database()
    execute(db, "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT)")
    execute(db, "INSERT INTO items (id, name) VALUES (1, 'phone')")
    server.database = db
    server.transactions = TransactionManager(sim, db)

    def lookup(ctx):
        txn = ctx.transactions.begin()
        result = yield txn.execute("SELECT name FROM items WHERE id = ?",
                                   (int(ctx.param("id", "0")),))
        txn.commit()
        if not result.rows:
            return HTTPResponse.not_found("no such item")
        return HTTPResponse.ok(result.rows[0]["name"], "text/plain")

    server.mount("/item", lookup)
    response = fetch(sim, client, host, "/item?id=1")
    assert response.body == b"phone"
    missing = fetch(sim, client, host, "/item?id=99")
    assert missing.status == 404


def test_cgi_crash_yields_500():
    sim, host, server, client = web_world()

    def broken(ctx):
        raise RuntimeError("kaput")

    server.mount("/broken", broken)
    response = fetch(sim, client, host, "/broken")
    assert response.status == 500
    assert server.stats.get("program_errors") == 1


def test_session_cookie_issued_and_reused():
    sim, host, server, client = web_world()
    visits = []

    def counter(ctx):
        n = ctx.session.get("visits", 0) + 1
        ctx.session["visits"] = n
        visits.append(n)
        return HTTPResponse.ok(str(n), "text/plain")

    server.mount("/count", counter)
    first = fetch(sim, client, host, "/count")
    cookie = first.headers.get("set-cookie")
    assert cookie and "msid=" in cookie
    name_value = cookie.split(";")[0]
    second = fetch(sim, client, host, "/count",
                   headers={"cookie": name_value})
    assert second.body == b"2"
    assert visits == [1, 2]


def test_session_expires_after_ttl():
    sim, host, server, client = web_world()
    server.sessions.ttl = 10.0

    def whoami(ctx):
        return HTTPResponse.ok(ctx.session.session_id, "text/plain")

    server.mount("/id", whoami)
    first = fetch(sim, client, host, "/id")
    cookie = first.headers["set-cookie"].split(";")[0]

    def later(env):
        yield env.timeout(100.0)  # way past TTL

    sim.spawn(later(sim))
    sim.run(until=200)
    second = fetch(sim, client, host, "/id", headers={"cookie": cookie})
    assert second.body != first.body  # a fresh session was created


def test_prefix_mount_resolution():
    sim, host, server, client = web_world()

    def catalog(ctx):
        return HTTPResponse.ok(ctx.request.path_only, "text/plain")

    server.mount("/catalog/", catalog)
    response = fetch(sim, client, host, "/catalog/phones/5")
    assert response.body == b"/catalog/phones/5"


def test_duplicate_mount_rejected():
    sim, host, server, client = web_world()
    server.mount("/x", lambda ctx: HTTPResponse.ok(""))
    with pytest.raises(ValueError):
        server.mount("/x", lambda ctx: HTTPResponse.ok(""))


def test_server_stats_track_requests():
    sim, host, server, client = web_world()
    server.add_page("/p", "x")
    fetch(sim, client, host, "/p")
    fetch(sim, client, host, "/missing")
    assert server.stats.get("requests") == 2
    assert server.stats.get("status_200") == 1
    assert server.stats.get("status_404") == 1


# ------------------------------------------------ Apache features (paper §7)
def test_content_negotiation_serves_matching_variant():
    """The paper credits Apache with 'content negotiation'."""
    sim, host, server, client = web_world()
    server.add_page("/page", "<html>full</html>", "text/html")
    server.add_page("/page", "<wml><card id='c'/></wml>",
                    "text/vnd.wap.wml")

    wml = fetch(sim, client, host, "/page",
                headers={"accept": "text/vnd.wap.wml"})
    assert wml.content_type == "text/vnd.wap.wml"
    assert b"<wml>" in wml.body

    html = fetch(sim, client, host, "/page",
                 headers={"accept": "text/html"})
    assert html.content_type == "text/html"

    default = fetch(sim, client, host, "/page")
    assert default.content_type == "text/html"  # first registered

    wildcard = fetch(sim, client, host, "/page",
                     headers={"accept": "application/json, text/*"})
    assert wildcard.content_type == "text/html"


def test_basic_auth_protects_prefix():
    """The paper credits Apache with 'DBM-based authentication databases'."""
    import base64
    from repro.security import UserStore
    from repro.sim import SeedBank

    sim, host, server, client = web_world()
    users = UserStore(SeedBank(1).stream("auth"))
    users.register("admin", "s3cret")
    server.services["users"] = users
    server.add_page("/admin/panel", "top secret", "text/plain")
    server.add_page("/public", "open", "text/plain")
    server.protect("/admin/", realm="ops")

    anonymous = fetch(sim, client, host, "/admin/panel")
    assert anonymous.status == 401
    assert "ops" in anonymous.headers.get("www-authenticate", "")

    wrong = fetch(sim, client, host, "/admin/panel", headers={
        "authorization": "Basic " + base64.b64encode(
            b"admin:wrong").decode()})
    assert wrong.status == 401

    right = fetch(sim, client, host, "/admin/panel", headers={
        "authorization": "Basic " + base64.b64encode(
            b"admin:s3cret").decode()})
    assert right.status == 200
    assert right.body == b"top secret"

    public = fetch(sim, client, host, "/public")
    assert public.status == 200  # outside the protected prefix
    assert server.stats.get("auth_failures") == 2


def test_protect_requires_user_store():
    sim, host, server, client = web_world()
    with pytest.raises(RuntimeError):
        server.protect("/x/")


def test_access_log_records_requests():
    """The Apache-style access log captures who asked for what."""
    sim, host, server, client = web_world()
    server.add_page("/a", "alpha")
    fetch(sim, client, host, "/a")
    fetch(sim, client, host, "/missing")
    assert len(server.access_log) == 2
    t1, client_addr, method, path, status, size = server.access_log[0]
    assert method == "GET" and path == "/a" and status == 200
    assert size == len(b"alpha")
    assert server.access_log[1][4] == 404


def test_session_ids_deterministic_across_stores():
    # The id counter is store-local (not module-level), so running the
    # same scenario twice — two fresh worlds — yields identical ids.
    def run_world():
        sim, host, server, client = web_world()

        def whoami(ctx):
            return HTTPResponse.ok(ctx.session.session_id, "text/plain")

        server.mount("/id", whoami)
        first = fetch(sim, client, host, "/id")
        second = fetch(sim, client, host, "/id")  # no cookie: new session
        return first.body, second.body

    assert run_world() == run_world()
