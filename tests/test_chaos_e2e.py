"""End-to-end chaos tests: scenarios, determinism, policy impact."""

import json
import os
import subprocess
import sys

from repro.faults import FaultPlan, SCENARIOS, run_chaos, scenario_plan
from repro.sim import SeedBank

_OUTAGE = dict(scenario="gateway-outage", seed=7, intensity=0.5,
               stations=3, transactions_per_station=8, horizon=240.0)


def test_every_named_scenario_builds_a_valid_plan():
    for name in SCENARIOS:
        plan = scenario_plan(name, SeedBank(5).stream("chaos-plan"),
                             horizon=240.0, intensity=0.5)
        plan.validate()
        if name == "canary-regression":
            # The regression is a planted-slow v2 canary deployed by the
            # CanaryController, not a FaultSpec — the plan is empty.
            assert len(plan) == 0, name
        else:
            assert len(plan) > 0, name


def test_gateway_outage_policies_beat_baseline():
    """The headline acceptance check: with resilience policies on, a
    gateway outage at moderate intensity barely dents the success
    rate; with them off the same faults sink a third of the
    transactions."""
    on = run_chaos(policies=True, **_OUTAGE)
    off = run_chaos(policies=False, **_OUTAGE)
    assert on["success_rate"] >= 0.9, on["errors"]
    assert on["success_rate"] > off["success_rate"]
    # The win comes from real mechanisms, not luck: the standby route
    # absorbed the primary's crash windows.
    assert on["resilience"]["failovers"] >= 1
    assert off["resilience"]["enabled"] is False
    assert off["errors"], "baseline run should record failures"


def test_breaker_trips_and_recovers_under_server_crash():
    plan = FaultPlan()
    plan.add("server_crash", at=20.0, duration=120.0)
    report = run_chaos(scenario="custom", seed=3, policies=True, stations=3,
                       transactions_per_station=8, horizon=240.0, plan=plan)
    gateway = report["resilience"]["gateway"]
    assert gateway["origin_timeouts"] >= 1
    assert gateway["breaker"]["trips"] >= 1
    assert gateway["breaker"]["rejections"] >= 1
    # The breaker closed again once the origin came back, and the
    # retry policy salvaged a majority of the flows.
    assert gateway["breaker"]["closes"] >= 1
    assert report["retries"] >= 1
    assert report["success_rate"] >= 0.5


def test_empty_plan_run_is_clean():
    report = run_chaos(scenario="custom", seed=5, stations=2,
                       transactions_per_station=4, horizon=120.0,
                       plan=FaultPlan())
    assert report["faults"] == {}
    assert report["errors"] == {}
    assert report["success_rate"] == 1.0
    assert report["plan"] == []


def _cli_chaos(tmp_path, name):
    out = tmp_path / name
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "storm", "--seed", "11",
         "--intensity", "0.5", "--json", str(out)],
        check=True, env=env, cwd=root,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    return out.read_bytes()


def test_same_seed_gives_byte_identical_report(tmp_path):
    """The reproducibility guarantee as the CLI delivers it: two runs
    of the same scenario and seed emit byte-identical reports."""
    first = _cli_chaos(tmp_path, "a.json")
    second = _cli_chaos(tmp_path, "b.json")
    assert first == second
    report = json.loads(first)
    assert report["scenario"] == "storm"
    assert report["seed"] == 11
    assert report["plan"], "storm scenario should schedule faults"


def test_chaos_report_identical_with_caches_off():
    """The hot-path caches must be invisible in chaos reports: the same
    gateway-outage run (crash/restart flushes included) produces the
    same bytes with every optimization disabled."""
    from repro.faults import report_json
    from repro.opt import optimizations_disabled

    cached = report_json(run_chaos(policies=True, **_OUTAGE))
    with optimizations_disabled():
        uncached = report_json(run_chaos(policies=True, **_OUTAGE))
    assert cached == uncached
