"""Failure injection: the system under partial failure.

The paper's requirements demand transactions complete "easily, in a
timely manner, and ubiquitously" — these tests probe what happens when
parts of the stack misbehave: dead batteries, exhausted device memory,
flapping radio links, saturated web servers, unresolvable names and
crashed sessions.
"""

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.devices import BatteryDeadError, OutOfMemoryError
from repro.net import Network, Subnet, TCPStack
from repro.sim import Simulator
from repro.web import HTTPClient, HTTPResponse, WebServer


def build_world(**kwargs):
    defaults = dict(middleware="WAP", bearer=("cellular", "GPRS"))
    defaults.update(kwargs)
    system = MCSystemBuilder(**defaults).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 500_000)
    return system, shop


# ----------------------------------------------------------- device faults
def test_dead_battery_fails_transaction_cleanly():
    system, shop = build_world()
    handle = system.add_station("Palm i705")
    handle.station.battery.charge = 0.0
    engine = TransactionEngine(system)
    done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
    system.run(until=300)
    record = done.value
    assert not record.ok
    assert "BatteryDeadError" in record.error
    # The failure is contained: the next (charged) station still works.
    handle2 = system.add_station("Toshiba E740")
    done2 = engine.run_flow(handle2, shop.browse_and_buy(account="ann"))
    system.run(until=system.sim.now + 300)
    assert done2.value.ok, done2.value.error


def test_oom_render_fails_but_frees_memory():
    system, shop = build_world()
    handle = system.add_station("Palm i705")
    station = handle.station
    # Fill RAM almost completely.
    station.memory.allocate("hog", station.memory.free_kb - 1)
    used_before = station.memory.used_kb
    with pytest.raises(OutOfMemoryError):
        handle.browser.render(b"x" * 100_000, "text/vnd.wap.wml")
    assert station.memory.used_kb == used_before  # nothing leaked


def test_battery_drains_over_many_transactions():
    system, shop = build_world(bearer=("cellular", "WCDMA"))
    from repro.db import execute
    execute(system.host.db_server.database,
            "UPDATE shop_items SET stock = 100000 WHERE id = 1")
    system.host.payment.accounts["ann"] = 10_000_000_000
    handle = system.add_station("Compaq iPAQ H3870")
    handle.station.battery.capacity = 0.02
    handle.station.battery.charge = 0.02
    engine = TransactionEngine(system)
    outcomes = []

    def shopper(env):
        for _ in range(200):
            record = yield engine.run_flow(
                handle, shop.browse_and_buy(account="ann"))
            outcomes.append(record.ok)
            if not record.ok:
                return

    system.sim.spawn(shopper(system.sim))
    system.run(until=10_000)
    assert outcomes[0] is True       # worked while charged
    assert outcomes[-1] is False     # eventually the battery died
    assert handle.station.battery.is_dead


# ------------------------------------------------------------ radio faults
def test_radio_flap_delays_but_does_not_corrupt():
    system, shop = build_world(bearer=("wlan", "802.11b"))
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)
    link = handle.attachment.link

    def flapper(env):
        for _ in range(3):
            yield env.timeout(0.02)
            link.take_down()
            yield env.timeout(0.3)
            link.bring_up()

    system.sim.spawn(flapper(system.sim))
    done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
    system.run(until=600)
    record = done.value
    assert record.ok, record.error
    assert record.latency > 0.3  # the flaps cost real time


def test_station_out_of_coverage_mid_transaction():
    system, shop = build_world(bearer=("wlan", "802.11b"))
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)

    def walk_away(env):
        yield env.timeout(0.012)
        handle.station.move_to(
            type(handle.station.position)(10_000.0, 0.0))

    system.sim.spawn(walk_away(system.sim))
    done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
    system.run(until=90)
    # The transaction cannot complete out of coverage...
    if done.triggered and done.value.ok:
        pytest.fail("transaction should not complete from 10 km away")
    # ...and whatever the server did commit must be self-consistent:
    # stock decremented exactly once per written order.
    from repro.db import execute
    db = system.host.db_server.database
    orders = execute(db, "SELECT * FROM shop_orders").rows
    stock = execute(db, "SELECT stock FROM shop_items WHERE id = 1"
                    ).rows[0]["stock"]
    assert stock == 10 - len(orders)


# ------------------------------------------------------------ host faults
def test_web_server_worker_saturation_queues_not_drops():
    sim = Simulator()
    net = Network(sim)
    host = net.add_node("host")
    client_node = net.add_node("client")
    net.connect(host, client_node, Subnet.parse("10.0.0.0/24"),
                delay=0.001)
    net.build_routes()
    server = WebServer(host, workers=1)

    def slow(ctx):
        yield ctx.request and sim.timeout(0.5)
        return HTTPResponse.ok("done", "text/plain")

    server.mount("/slow", slow)
    client = HTTPClient(client_node)
    results = []

    def fetch(env):
        response = yield client.get(host.primary_address, "/slow")
        results.append((env.now, response.status))

    for _ in range(4):
        sim.spawn(fetch(sim))
    sim.run(until=60)
    assert len(results) == 4
    assert all(status == 200 for _, status in results)
    # One worker: completions serialise roughly 0.5 s apart.
    times = sorted(t for t, _ in results)
    assert times[-1] - times[0] >= 1.0


def test_unknown_host_fails_fast_with_502():
    system, shop = build_world()
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)

    def bad_flow(ctx):
        response = yield handle.session.get("http://ghost.example.com/x")
        return {"status": response.status}

    done = engine.run_flow(handle, bad_flow)
    system.run(until=60)
    assert done.value.ok  # the flow itself handled it
    assert done.value.result == {"status": 502}


def test_payment_processor_outage_contained():
    """A crashed service yields a 500, not a hung transaction."""
    system, shop = build_world()
    handle = system.add_station("Toshiba E740")

    class Broken:
        def make_nonce(self):
            raise RuntimeError("payment backend down")

    system.host.web_server.services["payment"] = Broken()
    engine = TransactionEngine(system)
    done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
    system.run(until=300)
    record = done.value
    assert not record.ok
    assert "purchase failed: 500" in record.error
    assert system.host.web_server.stats.get("program_errors") == 1


def test_transaction_engine_never_hangs_on_session_close():
    system, shop = build_world()
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)

    def flow(ctx):
        first = yield from ctx.get("/shop/catalog")
        # Adversarial: the session drops mid-flow.
        handle.session._conn.close()
        handle.session._conn = None
        second = yield from ctx.get("/shop/catalog")
        return {"second": second.status}

    done = engine.run_flow(handle, flow)
    system.run(until=300)
    record = done.value
    # Either the session transparently reconnected or the flow failed;
    # both are acceptable — hanging is not.
    assert record.finished_at > 0
