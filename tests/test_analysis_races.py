"""Tests for the static side of the race detector: process discovery,
call-graph reachability, shared-state matrix, findings and the JSON
artifact."""

import json
import textwrap

from repro.analysis.races import analyze_paths, analyze_sources
from repro.analysis.races.static import RULE_ID, StaticRaceAnalyzer
from repro.analysis.rules import ModuleInfo


def analyze(*sources):
    """Analyze (path, module, source) triples."""
    infos = [ModuleInfo.parse(path, textwrap.dedent(source), module=module)
             for path, module, source in sources]
    return analyze_sources(infos)


WRITER_READER = ("shop.py", "repro.fake.shop", """\
    class Shop:
        def __init__(self):
            self.orders = {}

        def seller(self, env):
            yield env.timeout(1)
            self.orders["last"] = "sold"

        def auditor(self, env):
            yield env.timeout(1)
            count = self.orders.get("last")
            return count
""")


def test_cross_process_write_is_flagged():
    analysis = analyze(WRITER_READER)
    assert len(analysis.processes) == 2
    assert any(f.rule_id == RULE_ID for f in analysis.findings)
    finding = analysis.findings[0]
    assert "Shop.orders" in finding.message
    assert finding.file == "shop.py"
    assert finding.severity == "warning"


def test_single_process_state_is_not_flagged():
    analysis = analyze(("solo.py", "repro.fake.solo", """\
        class Solo:
            def __init__(self):
                self.tally = {}

            def worker(self, env):
                yield env.timeout(1)
                self.tally["n"] = 1
    """))
    assert analysis.findings == []


def test_handoff_methods_are_sanctioned():
    analysis = analyze(("store.py", "repro.fake.store", """\
        class Producerconsumer:
            def __init__(self, store):
                self.store = store

            def producer(self, env):
                yield self.store.put("item")

            def consumer(self, env):
                item = yield self.store.get()
                return item
    """))
    assert analysis.findings == []


def test_call_graph_indirection_is_followed():
    # The write happens two helper calls below the process function.
    analysis = analyze(("deep.py", "repro.fake.deep", """\
        class Ledger:
            def __init__(self):
                self.entries = {}

            def _commit(self, key):
                self.entries[key] = True

            def _record(self, key):
                self._commit(key)

            def poster(self, env):
                yield env.timeout(1)
                self._record("a")

            def reviewer(self, env):
                yield env.timeout(1)
                self._record("b")
    """))
    assert any("Ledger.entries" in f.message for f in analysis.findings)


def test_noqa_suppresses_shared_state_finding():
    analysis = analyze(("ok.py", "repro.fake.ok", """\
        class Board:
            def __init__(self):
                self.notes = {}

            def writer_a(self, env):
                yield env.timeout(1)
                self.notes["k"] = 1  # repro: noqa[shared-state]

            def writer_b(self, env):
                yield env.timeout(1)
                count = self.notes.get("k")
                return count
    """))
    assert analysis.findings == []


def test_kernel_package_is_exempt():
    path, _, source = WRITER_READER
    analysis = analyze((path, "repro.sim.fake", source))
    assert analysis.findings == []
    assert analysis.processes == []


def test_module_level_mutable_global_is_tracked():
    analysis = analyze(("glob.py", "repro.fake.glob", """\
        REGISTRY = {}

        def register(env):
            yield env.timeout(1)
            REGISTRY["a"] = 1

        def scanner(env):
            yield env.timeout(1)
            found = REGISTRY.get("a")
            return found
    """))
    assert any("repro.fake.glob.REGISTRY" in f.message
               for f in analysis.findings)


def test_matrix_artifact_shape():
    analysis = analyze(WRITER_READER)
    artifact = json.loads(analysis.render_json())
    assert artifact["cross_process_keys"] >= 1
    key = "repro.fake.shop.Shop.orders"
    assert key in artifact["matrix"]
    cell = artifact["matrix"][key]
    assert cell["cross_process_write"] is True
    assert cell["write_sites"] and cell["read_sites"]
    accesses = cell["accesses"]
    assert any("W" in kinds for kinds in accesses.values())


def test_findings_are_stable_sorted():
    analysis = analyze(
        WRITER_READER,
        ("aaa.py", "repro.fake.aaa", """\
            class Pool:
                def __init__(self):
                    self.jobs = {}

                def one(self, env):
                    yield env.timeout(1)
                    self.jobs["x"] = 1

                def two(self, env):
                    yield env.timeout(1)
                    self.jobs["x"] = 2
        """),
    )
    keys = [(f.file, f.line, f.rule_id, f.message)
            for f in analysis.findings]
    assert keys == sorted(keys)
    assert keys[0][0] == "aaa.py"


def test_findings_in_filters_by_prefix():
    analysis = analyze(WRITER_READER)
    assert analysis.findings_in(["shop.py"]) == analysis.findings
    assert analysis.findings_in(["src/other"]) == []


def test_analyze_paths_over_repo_strict_dirs_clean():
    analysis = analyze_paths(["src/repro"])
    strict = analysis.findings_in(
        ("src/repro/faults", "src/repro/resilience", "src/repro/sim"))
    assert strict == []
    # The pass must actually be looking at a whole program, not a stub.
    assert len(analysis.processes) > 50
    assert analysis.functions > 500


def test_cha_resolution_skips_builtin_container_methods():
    # x.update(...) on an unknown receiver must NOT wire an edge into
    # every class defining update(); the dict mutation of the process's
    # *own* tracked state is still seen.
    analysis = analyze(("cha.py", "repro.fake.cha", """\
        class Stats:
            def __init__(self):
                self.counts = {}

            def update(self, key):
                self.counts[key] = self.counts.get(key, 0) + 1

        class Driver:
            def __init__(self, mystery):
                self.mystery = mystery

            def runner(self, env):
                yield env.timeout(1)
                self.mystery.update("k")
    """))
    keys = [key for key in analysis.matrix
            if key.endswith("Stats.counts")]
    if keys:
        cell = analysis.matrix[keys[0]]
        assert not cell["accesses"], \
            "CHA must not resolve .update() into Stats.update"


def test_yield_from_delegation_counts_as_process_body():
    analysis = analyze(("dele.py", "repro.fake.dele", """\
        class Flow:
            def __init__(self):
                self.state = {}

            def _inner(self, env):
                yield env.timeout(1)
                self.state["k"] = 1

            def outer_a(self, env):
                yield from self._inner(env)

            def outer_b(self, env):
                yield from self._inner(env)
    """))
    assert any("Flow.state" in f.message for f in analysis.findings)
