"""Tests for seeded random streams and measurement collectors."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Counter, LatencyRecorder, SeedBank, StatSummary, TimeSeries, Trace


# ------------------------------------------------------------- SeedBank
def test_same_root_seed_same_sequence():
    a = SeedBank(42).stream("loss")
    b = SeedBank(42).stream("loss")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_stream_names_independent():
    bank = SeedBank(42)
    a = bank.stream("loss")
    b = bank.stream("mobility")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_creation_order_irrelevant():
    bank1 = SeedBank(7)
    x1 = bank1.stream("x")
    _ = bank1.stream("y")
    seq1 = [x1.random() for _ in range(5)]

    bank2 = SeedBank(7)
    _ = bank2.stream("y")
    x2 = bank2.stream("x")
    seq2 = [x2.random() for _ in range(5)]
    assert seq1 == seq2


def test_fork_produces_independent_bank():
    bank = SeedBank(1)
    child = bank.fork("cell-3")
    assert child.root_seed != bank.root_seed
    s1 = bank.stream("a").random()
    s2 = child.stream("a").random()
    assert s1 != s2


def test_chance_bounds():
    stream = SeedBank(0).stream("p")
    with pytest.raises(ValueError):
        stream.chance(1.5)
    assert stream.chance(1.0) is True
    assert stream.chance(0.0) is False


def test_expovariate_positive_rate_required():
    stream = SeedBank(0).stream("e")
    with pytest.raises(ValueError):
        stream.expovariate(0)


@given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=20))
def test_stream_reproducible_property(seed, name):
    a = SeedBank(seed).stream(name)
    b = SeedBank(seed).stream(name)
    assert a.random() == b.random()


# -------------------------------------------------------------- Counter
def test_counter_incr_and_get():
    c = Counter()
    c.incr("tx")
    c.incr("tx", 4)
    assert c.get("tx") == 5
    assert c.get("missing") == 0
    assert c.as_dict() == {"tx": 5}


# ------------------------------------------------------------ TimeSeries
def test_timeseries_mean_and_rate():
    ts = TimeSeries("bytes")
    ts.record(0.0, 100)
    ts.record(5.0, 100)
    ts.record(10.0, 100)
    assert ts.mean() == 100
    assert ts.rate() == pytest.approx(30.0)  # 300 over 10s


def test_timeseries_rejects_time_regression():
    ts = TimeSeries()
    ts.record(5.0, 1)
    with pytest.raises(ValueError):
        ts.record(4.0, 1)


def test_timeseries_time_weighted_mean():
    ts = TimeSeries()
    ts.record(0.0, 0)   # value 0 during [0, 10)
    ts.record(10.0, 10)  # value 10 during [10, 20)
    ts.record(20.0, 0)
    assert ts.time_weighted_mean() == pytest.approx(5.0)


def test_timeseries_empty():
    ts = TimeSeries()
    assert ts.mean() == 0.0
    assert ts.rate() == 0.0


# ----------------------------------------------------------- StatSummary
def test_stat_summary_basics():
    s = StatSummary.of([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.p50 == 2.0


def test_stat_summary_empty():
    s = StatSummary.of([])
    assert s.count == 0
    assert s.mean == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_stat_summary_invariants(samples):
    import math
    s = StatSummary.of(samples)
    assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum
    # Mean is inside [min, max] up to float summation rounding.
    assert (s.minimum <= s.mean <= s.maximum
            or math.isclose(s.mean, s.minimum, rel_tol=1e-9)
            or math.isclose(s.mean, s.maximum, rel_tol=1e-9))


# ------------------------------------------------------- LatencyRecorder
def test_latency_recorder_round_trip():
    rec = LatencyRecorder()
    rec.start("req1", 10.0)
    rec.start("req2", 11.0)
    assert rec.in_flight == 2
    assert rec.stop("req1", 13.0) == pytest.approx(3.0)
    assert rec.in_flight == 1
    assert rec.stop("unknown", 14.0) is None
    assert rec.summary().count == 1


# ----------------------------------------------------------------- Trace
def test_trace_records_and_filters():
    tr = Trace()
    tr.log(1.0, "send", size=100)
    tr.log(2.0, "recv", size=100)
    tr.log(3.0, "send", size=50)
    assert len(tr) == 3
    assert [e[0] for e in tr.of_kind("send")] == [1.0, 3.0]


def test_trace_disabled_drops_entries():
    tr = Trace(enabled=False)
    tr.log(1.0, "send")
    assert len(tr) == 0


def test_stat_summary_sample_variance():
    import math
    # Bessel-corrected (n-1) variance: for [2, 4, 4, 4, 5, 5, 7, 9] the
    # population stdev is 2.0 but the sample stdev is sqrt(32/7).
    s = StatSummary.of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert s.stdev == pytest.approx(math.sqrt(32.0 / 7.0))


def test_stat_summary_single_sample_stdev_zero():
    s = StatSummary.of([42.0])
    assert s.count == 1
    assert s.stdev == 0.0


def test_trace_bounded_drops_oldest():
    tr = Trace(max_entries=3)
    for i in range(5):
        tr.log(float(i), "tick", n=i)
    assert len(tr) == 3
    assert [e[0] for e in tr.entries] == [2.0, 3.0, 4.0]
    assert tr.dropped == 2


def test_trace_unbounded_by_default():
    tr = Trace()
    for i in range(1000):
        tr.log(float(i), "tick")
    assert len(tr) == 1000
    assert tr.dropped == 0
