"""Validation of the simulation models against analytic theory.

A simulator earns trust by matching closed-form results where they
exist:

* the circuit-switched cell's blocking probability must follow the
  Erlang-B formula B(A, C);
* TCP's smoothed RTT estimator must converge to the true path RTT;
* link serialization+propagation must match the back-of-envelope sum;
* the channel model's reference loss must interpolate sensibly between
  calibrated bands.
"""

import math

import pytest

from repro.net import Network, Packet, Subnet, TCPStack
from repro.sim import SeedBank, Simulator
from repro.wireless import (
    CellularNetwork,
    CellularStandard,
    ChannelModel,
    Mobile,
    Position,
    wlan_standard,
)


# ----------------------------------------------------------------- Erlang B
def erlang_b(offered_load: float, channels: int) -> float:
    """Closed-form Erlang-B blocking probability."""
    inv_b = 1.0
    for k in range(1, channels + 1):
        inv_b = 1.0 + inv_b * k / offered_load
    return 1.0 / inv_b


@pytest.mark.parametrize("offered_load", [4.0, 8.0, 12.0])
def test_circuit_blocking_matches_erlang_b(offered_load):
    """Poisson arrivals, exponential holding, C=8 channels."""
    channels = 8
    sim = Simulator()
    net = Network(sim)
    core = net.add_node("core", forwarding=True)
    standard = CellularStandard(
        "GSM-small", "2G", "digital", "circuit", 9_600.0,
        voice_channels_per_cell=channels,
    )
    cellnet = CellularNetwork(net, core, standard)
    bs = cellnet.add_base_station("bs0", Position(0, 0))
    net.build_routes()

    stream = SeedBank(99).stream(f"traffic-{offered_load}")
    mean_hold = 60.0
    arrival_rate = offered_load / mean_hold
    n_calls = 3000

    def traffic(env):
        for _ in range(n_calls):
            yield env.timeout(stream.expovariate(arrival_rate))
            bs.place_voice_call(
                duration=stream.expovariate(1.0 / mean_hold))

    sim.spawn(traffic(sim))
    sim.run()

    blocked = bs.stats.get("calls_blocked")
    carried = bs.stats.get("calls_carried")
    measured = blocked / (blocked + carried)
    expected = erlang_b(offered_load, channels)
    assert measured == pytest.approx(expected, abs=0.035), (
        f"A={offered_load}: measured blocking {measured:.3f}, "
        f"Erlang-B predicts {expected:.3f}"
    )


# ------------------------------------------------------------------ TCP RTT
def test_tcp_srtt_converges_to_path_rtt():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    one_way = 0.040
    net.connect(a, b, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=10_000_000, delay=one_way)
    net.build_routes()
    tcp_a, tcp_b = TCPStack(a, mss=512), TCPStack(b, mss=512)
    listener = tcp_b.listen(80)
    received = bytearray()
    size = 100_000

    def server(env):
        conn = yield listener.accept()
        while len(received) < size:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    holder = {}

    def client(env):
        conn = tcp_a.connect(b.primary_address, 80, mss=512)
        holder["conn"] = conn
        yield conn.established_event
        conn.send(b"R" * size)

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=120)
    assert bytes(received) == b"R" * size
    conn = holder["conn"]
    true_rtt = 2 * one_way  # plus small serialization; srtt should be near
    assert conn.srtt == pytest.approx(true_rtt, rel=0.35)
    # And the RTO respects the floor while staying sane.
    assert 0.2 <= conn.rto < 1.0


# ------------------------------------------------------------ link timing
def test_link_latency_formula():
    """Arrival time = serialization + propagation, exactly."""
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    bandwidth, delay = 2_000_000.0, 0.0125
    net.connect(a, b, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=bandwidth, delay=delay)
    net.build_routes()
    arrivals = []
    b.register_protocol("t", lambda n, p: arrivals.append(sim.now))
    size_bytes = 1500
    a.send_ip(Packet(src=a.primary_address, dst=b.primary_address,
                     proto="t", payload_size=size_bytes - 20))
    sim.run()
    expected = size_bytes * 8 / bandwidth + delay
    assert arrivals[0] == pytest.approx(expected, abs=1e-9)


def test_back_to_back_packets_pipeline():
    """The second packet queues behind the first (store-and-forward)."""
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    bandwidth, delay = 1_000_000.0, 0.010
    net.connect(a, b, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=bandwidth, delay=delay)
    net.build_routes()
    arrivals = []
    b.register_protocol("t", lambda n, p: arrivals.append(sim.now))
    for _ in range(3):
        a.send_ip(Packet(src=a.primary_address, dst=b.primary_address,
                         proto="t", payload_size=980))  # 1000 B on wire
    sim.run()
    serialize = 1000 * 8 / bandwidth
    for index, arrival in enumerate(arrivals):
        assert arrival == pytest.approx((index + 1) * serialize + delay,
                                        abs=1e-9)


# --------------------------------------------------------------- channel
def test_reference_loss_interpolates_between_bands():
    ch = ChannelModel()
    loss_24 = ch.reference_loss(2.4)
    loss_50 = ch.reference_loss(5.0)
    loss_36 = ch.reference_loss(3.6)
    assert loss_24 < loss_36 < loss_50
    # 20*log10 scaling from the 2.4 GHz anchor.
    assert loss_36 == pytest.approx(
        loss_24 + 20 * math.log10(3.6 / 2.4), abs=1e-9)


def test_free_space_like_doubling_distance_costs_fixed_db():
    """Log-distance law: doubling d adds 10*n*log10(2) dB, everywhere."""
    ch = ChannelModel()
    step = ch.path_loss_db(20, 2.4) - ch.path_loss_db(10, 2.4)
    step2 = ch.path_loss_db(200, 2.4) - ch.path_loss_db(100, 2.4)
    assert step == pytest.approx(step2, abs=1e-9)
    assert step == pytest.approx(10 * 3.0 * math.log10(2), abs=1e-9)
