"""POST flows through every middleware (forms, not just query strings)."""

import pytest

from repro.apps import InventoryApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.db import execute


def build_world(middleware):
    system = MCSystemBuilder(middleware=middleware,
                             bearer=("cellular", "WCDMA")).build()
    fleet = InventoryApp()
    system.mount_application(fleet)
    return system, fleet


@pytest.mark.parametrize("middleware", ["WAP", "i-mode", "Palm"])
def test_post_form_reaches_application(middleware):
    system, fleet = build_world(middleware)
    handle = system.add_station("Compaq iPAQ H3870")
    engine = TransactionEngine(system)

    def post_update(ctx):
        response = yield from ctx.post(
            "/fleet/update",
            {"shipment": "1", "x": "42.5", "y": "17.25",
             "status": "delayed"})
        return {"status": response.status}

    done = engine.run_flow(handle, post_update)
    system.run(until=300)
    record = done.value
    assert record.ok, record.error
    assert record.result == {"status": 200}
    rows = execute(system.host.db_server.database,
                   "SELECT * FROM inv_shipments WHERE shipment_id = 1").rows
    assert rows[0]["x"] == 42.5
    assert rows[0]["y"] == 17.25
    assert rows[0]["status"] == "delayed"


def test_post_and_get_interleave_on_one_session():
    system, fleet = build_world("WAP")
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)

    def mixed(ctx):
        first = yield from ctx.post(
            "/fleet/update", {"shipment": "2", "status": "idle",
                              "x": "1", "y": "1"})
        status = yield from ctx.get("/fleet/status")
        yield from ctx.render(status)
        return {"post": first.status, "get": status.status}

    done = engine.run_flow(handle, mixed)
    system.run(until=300)
    assert done.value.ok, done.value.error
    assert done.value.result == {"post": 200, "get": 200}
    assert handle.session.stats.get("session_establishments") == 1
