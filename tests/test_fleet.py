"""Tests for repro.fleet: ring, health FSM, autoscaler, canary, fleet.

The pure cores (ring arithmetic, :meth:`HealthMonitor.record_probe`,
:meth:`AutoScaler.decide`, :meth:`CanaryController.evaluate`) are
driven directly; the integration surface (fleet-of-1 transparency,
member-outage recovery, canary rollback under a planted regression) is
exercised through the real chaos/bench runners.
"""

import json

import pytest

from repro.fleet import (
    AutoScaler,
    CanaryController,
    GatewayFleet,
    HashRing,
    HealthMonitor,
)
from repro.middleware.base import MiddlewareResponse, MiddlewareSession
from repro.resilience import RequestTimeout, ResilientSession
from repro.sim import Simulator


# --------------------------------------------------------------- hash ring
def test_ring_affinity_is_stable():
    ring = HashRing()
    for name in ("gw-0", "gw-1", "gw-2", "gw-3"):
        ring.add(name)
    keys = [f"station-{i}" for i in range(200)]
    first = {key: ring.owner(key) for key in keys}
    second = {key: ring.owner(key) for key in keys}
    assert first == second  # same membership, same mapping


def test_ring_spreads_keys_over_members():
    ring = HashRing()
    members = ["gw-0", "gw-1", "gw-2", "gw-3"]
    for name in members:
        ring.add(name)
    owners = [ring.owner(f"station-{i}") for i in range(400)]
    for name in members:
        share = owners.count(name) / len(owners)
        # 64 virtual nodes keep each member within a loose band of the
        # fair 1/4 share.
        assert 0.10 < share < 0.45, (name, share)


def test_ring_removal_remaps_only_the_removed_members_keys():
    ring = HashRing()
    members = ["gw-0", "gw-1", "gw-2", "gw-3"]
    for name in members:
        ring.add(name)
    keys = [f"station-{i}" for i in range(300)]
    before = {key: ring.owner(key) for key in keys}
    ring.remove("gw-1")
    after = {key: ring.owner(key) for key in keys}
    moved = [key for key in keys if before[key] != after[key]]
    # Exactly the removed member's keys remap — nobody else moves —
    # so churn is bounded well under the 2/N the issue allows.
    assert all(before[key] == "gw-1" for key in moved)
    assert all(after[key] != "gw-1" for key in keys)
    assert len(moved) / len(keys) <= 2 / len(members)
    # Re-adding restores the original mapping bit for bit.
    ring.add("gw-1")
    assert {key: ring.owner(key) for key in keys} == before


def test_ring_candidates_are_distinct_and_start_at_owner():
    ring = HashRing()
    for name in ("gw-0", "gw-1", "gw-2"):
        ring.add(name)
    names = ring.candidates("station-7")
    assert names[0] == ring.owner("station-7")
    assert sorted(names) == ["gw-0", "gw-1", "gw-2"]
    assert ring.candidates("station-7", count=2) == names[:2]


def test_ring_validates_and_reports_membership():
    with pytest.raises(ValueError):
        HashRing(virtual_nodes=0)
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.owner("anything")
    ring.add("gw-0")
    assert "gw-0" in ring and len(ring) == 1
    ring.remove("gw-9")  # unknown member: idempotent no-op
    assert ring.members() == ["gw-0"]


# ------------------------------------------------------------ fleet + pool
class _FakeGateway:
    def __init__(self):
        self.is_down = False

    def crash(self):
        self.is_down = True

    def restart(self):
        self.is_down = False


def _make_fleet(sim, members=3, **kwargs):
    def make_gateway(index, port, version, handicap, cell_index):
        return _FakeGateway(), lambda station: None

    fleet = GatewayFleet(sim, make_gateway, base_port=9200, **kwargs)
    for _ in range(members):
        fleet.add_member()
    return fleet


def test_fleet_ports_follow_the_stride_scheme():
    fleet = _make_fleet(Simulator(), members=3, port_stride=20)
    assert [m.port for m in fleet.members.values()] == [9200, 9220, 9240]
    assert [m.name for m in fleet.members.values()] == \
        ["gw-0", "gw-1", "gw-2"]


def test_fleet_retirement_is_graceful_and_idempotent():
    fleet = _make_fleet(Simulator(), members=3)
    member = fleet.retire_member("gw-1", reason="scale-down")
    assert member.state == "retired"
    assert member.retire_reason == "scale-down"
    assert "gw-1" not in fleet.ring
    # The gateway keeps running so in-flight requests can drain.
    assert not member.gateway.is_down
    again = fleet.retire_member("gw-1", reason="other")
    assert again.retire_reason == "scale-down"  # first reason wins
    assert len(fleet.serving_members()) == 2


# ---------------------------------------------------------- health monitor
def test_health_fsm_ejects_after_threshold_and_readmits():
    sim = Simulator()
    fleet = _make_fleet(sim, members=3)
    monitor = HealthMonitor(sim, fleet, unhealthy_threshold=3,
                            recovery_threshold=2)
    member = fleet.member("gw-1")

    monitor.record_probe(member, False)
    monitor.record_probe(member, False)
    assert member.health == "healthy"  # below threshold
    monitor.record_probe(member, True)  # success resets the count
    monitor.record_probe(member, False)
    monitor.record_probe(member, False)
    assert member.health == "healthy"
    monitor.record_probe(member, False)
    assert member.health == "ejected"
    assert "gw-1" not in fleet.ring

    # Half-open: probes continue; recovery needs consecutive successes.
    monitor.record_probe(member, True)
    assert member.health == "ejected"
    monitor.record_probe(member, False)  # streak broken
    monitor.record_probe(member, True)
    monitor.record_probe(member, True)
    assert member.health == "healthy"
    assert "gw-1" in fleet.ring
    assert monitor.stats.get("ejections") == 1
    assert monitor.stats.get("readmissions") == 1


def test_health_readmission_respects_retirement():
    sim = Simulator()
    fleet = _make_fleet(sim, members=2)
    monitor = HealthMonitor(sim, fleet, unhealthy_threshold=1,
                            recovery_threshold=1)
    member = fleet.member("gw-1")
    monitor.record_probe(member, False)
    assert member.health == "ejected"
    fleet.retire_member("gw-1", reason="canary-replace")
    monitor.record_probe(member, True)
    # Recovered but retired: it must not rejoin the ring.
    assert member.health == "healthy"
    assert "gw-1" not in fleet.ring


# --------------------------------------------------------------- autoscaler
class _GaugeRegistry:
    """Minimal stand-in for MetricsRegistry.gauge()."""

    class _Gauge:
        def __init__(self, value=0.0):
            self.value = value

        def set(self, value):
            self.value = value

    def __init__(self):
        self._gauges = {}

    def gauge(self, name):
        return self._gauges.setdefault(name, self._Gauge())


def test_autoscaler_decides_with_watermarks_and_cooldown():
    sim = Simulator()
    fleet = _make_fleet(sim, members=2)
    scaler = AutoScaler(sim, fleet, _GaugeRegistry(),
                        high_watermark=8.0, low_watermark=1.0,
                        min_members=1, max_members=4, cooldown=30.0)
    assert scaler.decide([10.0, 12.0], 2, now=0.0) == "up"
    assert scaler.decide([0.0, 0.5], 2, now=0.0) == "down"
    assert scaler.decide([4.0, 4.0], 2, now=0.0) is None  # in the band
    assert scaler.decide([], 2, now=0.0) is None
    # Bounds: never above max_members or below min_members.
    assert scaler.decide([20.0] * 4, 4, now=0.0) is None
    assert scaler.decide([0.0], 1, now=0.0) is None


def test_autoscaler_hysteresis_does_not_flap():
    sim = Simulator()
    fleet = _make_fleet(sim, members=2)
    scaler = AutoScaler(sim, fleet, _GaugeRegistry(),
                        high_watermark=8.0, low_watermark=1.0,
                        min_members=1, max_members=4, cooldown=30.0)
    scaler.last_action_at = 100.0
    # Oscillating load inside the cooldown window: every decision is
    # suppressed, so the pool cannot flap.
    for step, depth in enumerate([12.0, 0.2, 15.0, 0.1, 9.0]):
        now = 101.0 + step * 5.0
        assert scaler.decide([depth, depth], 2, now=now) is None
    # After the cooldown the high watermark acts again.
    assert scaler.decide([12.0, 12.0], 2, now=131.0) == "up"


def test_autoscaler_tick_scales_up_and_down_via_gauges():
    sim = Simulator()
    fleet = _make_fleet(sim, members=2)
    metrics = _GaugeRegistry()
    scaler = AutoScaler(sim, fleet, metrics, high_watermark=4.0,
                        low_watermark=1.0, min_members=1, max_members=4,
                        cooldown=0.0)
    for member in fleet.members.values():
        metrics.gauge(f"gateway.{member.name}.queue_depth").set(9.0)
    assert scaler.tick() == "up"
    assert len(fleet.serving_members()) == 3
    for member in fleet.members.values():
        metrics.gauge(f"gateway.{member.name}.queue_depth").set(0.0)
    assert scaler.tick() == "down"
    # The newest member drains first.
    assert fleet.member("gw-2").state == "retired"
    assert [e["action"] for e in scaler.events] == ["up", "down"]


def test_autoscaler_validates_watermarks():
    sim = Simulator()
    fleet = _make_fleet(sim, members=1)
    with pytest.raises(ValueError):
        AutoScaler(sim, fleet, _GaugeRegistry(), high_watermark=1.0,
                   low_watermark=2.0)
    with pytest.raises(ValueError):
        AutoScaler(sim, fleet, _GaugeRegistry(), min_members=3,
                   max_members=2)


# ------------------------------------------------------------------ canary
def _controller(**kwargs):
    sim = Simulator()
    fleet = _make_fleet(sim, members=4)
    defaults = dict(fraction=0.25, min_samples=5, p95_ratio=1.5,
                    success_delta=0.1, violations=2, healthy_windows=3)
    defaults.update(kwargs)
    return CanaryController(sim, fleet, balancer=None, **defaults)


def _window(count, successes, latency):
    return {"count": count, "successes": successes,
            "latencies": [latency] * successes}


def test_canary_evaluate_rolls_exactly_at_the_slo_thresholds():
    canary = _controller()
    baseline = _window(20, 20, 1.0)  # p95 = 1.0, success 1.0
    # p95 exactly at ratio * baseline is healthy; just past it is not.
    assert canary.evaluate(_window(10, 10, 1.5), baseline) == "healthy"
    assert canary.evaluate(_window(10, 10, 1.5001), baseline) == \
        "violation"
    # Success exactly delta below baseline is healthy; further is not.
    assert canary.evaluate(_window(10, 9, 1.0), baseline) == "healthy"
    assert canary.evaluate(_window(10, 8, 1.0), baseline) == "violation"
    # Too few samples on either side abstains.
    assert canary.evaluate(_window(4, 4, 9.0), baseline) == \
        "insufficient"
    assert canary.evaluate(_window(10, 10, 9.0), _window(3, 3, 1.0)) == \
        "insufficient"


def test_canary_deploy_replaces_fraction_and_rollback_restores():
    canary = _controller(fraction=0.5)
    fleet = canary.fleet
    canary.deploy()
    assert canary.state == CanaryController.CANARY
    v2 = [m for m in fleet.serving_members() if m.version == "v2"]
    assert len(v2) == 2  # ceil(0.5 * 4)
    # Replacements inherit the retired members' radio cells.
    retired = [m for m in fleet.members.values()
               if m.retire_reason == "canary-replace"]
    assert sorted(m.cell_index for m in v2) == \
        sorted(m.cell_index for m in retired)
    canary.rollback()
    assert canary.state == CanaryController.ROLLED_BACK
    assert all(m.version == "v1" for m in fleet.serving_members())
    assert len(fleet.serving_members()) == 4


def test_canary_promote_switches_fleet_default_to_v2():
    canary = _controller(fraction=0.25, handicap=0.5)
    canary.deploy()
    canary.promote()
    assert canary.state == CanaryController.PROMOTED
    assert all(m.version == "v2"
               for m in canary.fleet.serving_members())
    assert canary.fleet.default_version == "v2"
    added = canary.fleet.add_member()
    assert added.version == "v2" and added.handicap == 0.5


def test_canary_validates_fraction():
    sim = Simulator()
    fleet = _make_fleet(sim, members=2)
    with pytest.raises(ValueError):
        CanaryController(sim, fleet, balancer=None, fraction=0.0)
    with pytest.raises(ValueError):
        CanaryController(sim, fleet, balancer=None, fraction=1.5)


# --------------------------------------- resilient session (provider mode)
class _ScriptedSession(MiddlewareSession):
    """Session whose get() follows a script of 'ok' / exception items."""

    def __init__(self, sim, script):
        self.sim = sim
        self.script = list(script)
        self.calls = 0

    def get(self, url, trace=None, timeout=None):
        self.calls += 1
        event = self.sim.event()
        action = self.script.pop(0) if self.script else "ok"
        if action == "ok":
            event.succeed(MiddlewareResponse(200, "text/plain", b"ok"))
        else:
            event.fail(action)
        return event

    def post(self, url, form, trace=None, timeout=None):
        return self.get(url, trace=trace, timeout=timeout)

    def close(self):
        pass


def test_provider_session_follows_the_candidate_list():
    sim = Simulator()
    a = _ScriptedSession(sim, [ConnectionError("a down"), "ok"])
    b = _ScriptedSession(sim, ["ok"])
    routes = [a, b]
    session = ResilientSession(lambda: list(routes), sim=sim)
    responses = []

    def drive(env):
        first = yield session.get("http://h/x")
        second = yield session.get("http://h/x")
        responses.extend([first, second])

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert [r.status for r in responses] == [200, 200]
    # First call failed over a -> b and stuck there.
    assert (a.calls, b.calls) == (1, 2)
    assert session.active_route is b
    assert session.stats.get("failovers") == 1


def test_provider_session_rebases_when_sticky_member_disappears():
    sim = Simulator()
    a = _ScriptedSession(sim, ["ok"])
    b = _ScriptedSession(sim, ["ok", "ok"])
    routes = [a, b]
    session = ResilientSession(lambda: list(routes), sim=sim)
    responses = []

    def drive(env):
        responses.append((yield session.get("http://h/x")))
        # The balancer retires a's member: it vanishes from the list.
        del routes[0]
        responses.append((yield session.get("http://h/x")))

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert [r.status for r in responses] == [200, 200]
    assert session.active_route is b
    # Moving off a retired route is a switch, not a failover.
    assert session.stats.get("failovers") == 0
    assert session.stats.get("route_switches") == 1


def test_provider_session_with_empty_candidates_exhausts():
    sim = Simulator()
    session = ResilientSession(lambda: [], sim=sim)
    captured = {}

    def drive(env):
        try:
            yield session.get("http://h/x")
        except ConnectionError as exc:
            captured["error"] = exc

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert "no middleware route" in str(captured["error"])
    assert session.stats.get("exhausted") == 1


def test_provider_session_reports_observations():
    sim = Simulator()
    good = _ScriptedSession(sim, ["ok"])
    seen = []
    session = ResilientSession(
        lambda: [good], sim=sim,
        observer=lambda s, ok, elapsed: seen.append((s, ok)))

    def drive(env):
        yield session.get("http://h/x")

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert seen == [(good, True)]


def test_static_routes_still_require_no_sim_argument():
    sim = Simulator()
    primary = _ScriptedSession(sim, [RequestTimeout("slow")])
    standby = _ScriptedSession(sim, ["ok"])
    session = ResilientSession([primary, standby])
    responses = []

    def drive(env):
        responses.append((yield session.get("http://h/x")))

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert responses[0].status == 200
    assert session.stats.get("failovers") == 1


# --------------------------------------------------------- integration (e2e)
def test_fleet_of_one_matches_single_gateway_byte_for_byte():
    from repro.perf.loadgen import run_bench

    def det_bytes(fleet):
        report = run_bench(users=4, seed=11, transactions_per_user=2,
                           horizon=60.0, trace=False, fleet=fleet)
        return json.dumps(report["deterministic"], sort_keys=True)

    assert det_bytes(1) == det_bytes(0)


def test_fleet_outage_ejects_recovers_and_strands_nobody():
    from repro.faults.chaos import run_chaos

    report = run_chaos("fleet-outage", seed=3, intensity=0.5,
                       stations=8, transactions_per_station=4,
                       horizon=200.0)
    fleet = report["fleet"]
    assert fleet["health"]["ejections"] >= 1
    assert fleet["health"]["readmissions"] >= 1
    assert fleet["stranded_sessions"] == 0
    assert report["success_vs_offered"] >= 0.9
    assert all(m["health"] == "healthy" for m in fleet["members"])


def test_canary_regression_rolls_back_with_zero_stranded():
    from repro.faults.chaos import run_chaos

    report = run_chaos("canary-regression", seed=0, intensity=0.5)
    fleet = report["fleet"]
    canary = fleet["canary"]
    assert canary["state"] == "ROLLED_BACK"
    assert canary["stats"]["windows_violation"] >= 2
    assert fleet["stranded_sessions"] == 0
    assert report["success_vs_offered"] >= 0.9
    # After rollback only v1 members serve.
    serving = [m for m in fleet["members"]
               if m["state"] == "active" and m["health"] == "healthy"]
    assert all(m["version"] == "v1" for m in serving)


def test_fleet_chaos_reports_are_deterministic():
    from repro.faults.chaos import report_json, run_chaos

    first = report_json(run_chaos("fleet-outage", seed=5, intensity=0.4,
                                  stations=6, transactions_per_station=3,
                                  horizon=120.0))
    second = report_json(run_chaos("fleet-outage", seed=5, intensity=0.4,
                                   stations=6, transactions_per_station=3,
                                   horizon=120.0))
    assert first == second


def test_gateway_crash_member_selectors():
    from repro.faults.injectors import gateways_for
    from repro.core import MCSystemBuilder
    from repro.resilience import ResilienceConfig
    import dataclasses

    res = dataclasses.replace(ResilienceConfig(), fleet_size=3,
                              standby_gateway=False)
    system = MCSystemBuilder(seed=1, resilience=res).build()
    members = list(system.fleet.members.values())
    assert gateways_for(system, "member:1") == [members[1].gateway]
    assert gateways_for(system, "") == [system.gateway]
    chosen = gateways_for(system, "random-seeded", at=12.0)
    assert len(chosen) == 1
    assert chosen[0] in [m.gateway for m in system.fleet.active_members()]
    # Same seed, same spec time: an identical build picks the same
    # member (the draw comes from a seeded per-spec stream).
    twin = MCSystemBuilder(seed=1, resilience=res).build()
    twin_pick = gateways_for(twin, "random-seeded", at=12.0)
    index = [m.gateway for m in system.fleet.members.values()].index(
        chosen[0])
    assert twin_pick == [list(twin.fleet.members.values())[index].gateway]
    assert gateways_for(system, "canary") == []  # no v2 members yet
    with pytest.raises(ValueError):
        gateways_for(system, "bogus-target")
