"""Tests for WTLS-secured WAP sessions (WAP's transport security layer)."""

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.middleware import WAPSession, WMLC_CONTENT_TYPE, decode_wmlc
from repro.sim import SeedBank


def build_secure_world(**kwargs):
    defaults = dict(middleware="WAP", bearer=("cellular", "GPRS"),
                    secure_wap=True)
    defaults.update(kwargs)
    system = MCSystemBuilder(**defaults).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 500_000)
    return system, shop


def test_secure_wap_purchase_end_to_end():
    system, shop = build_secure_world()
    handle = system.add_station("Toshiba E740")
    assert handle.session.secure
    engine = TransactionEngine(system)
    done = engine.run_flow(handle,
                           shop.browse_and_buy(account="ann"))
    system.run(until=600)
    record = done.value
    assert record.ok, record.error
    assert handle.session.stats.get("wtls_handshakes") == 1
    gateway = system.model.component("mobile-middleware").implementation
    assert gateway.stats.get("wtls_sessions") == 1
    assert gateway.stats.get("translations") >= 1  # still a WAP gateway


def test_secure_wap_hides_urls_from_sniffer():
    """Plain WSP leaks the requested URL on the air; WTLS does not."""

    def sniffed(secure: bool) -> tuple[bytes, bytes]:
        system, shop = build_secure_world(secure_wap=secure)
        handle = system.add_station("Toshiba E740")
        station_addr = handle.station.primary_address
        air = bytearray()
        wired = bytearray()

        def sniffer(packet, iface):
            data = getattr(packet.payload, "data", b"")
            if not data:
                return False
            # Uplink from the station = the air interface; everything
            # else at the gateway is its wired side.
            if packet.src == station_addr:
                air.extend(data)
            else:
                wired.extend(data)
            return False

        system.network.node("middleware-gw").rx_taps.append(sniffer)
        engine = TransactionEngine(system)
        done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
        system.run(until=600)
        assert done.value.ok, done.value.error
        return bytes(air), bytes(wired)

    plain_air, _ = sniffed(secure=False)
    secure_air, secure_wired = sniffed(secure=True)
    assert b"/shop/buy" in plain_air       # WSP requests are cleartext
    assert b"/shop/buy" not in secure_air  # WTLS records are not
    assert b"account=ann" not in secure_air
    # The famous "WAP gap": WTLS terminates at the gateway, so the
    # gateway's wired side still carries plaintext HTTP — the paper's
    # closing remark that "a unified approach has not yet emerged"
    # in one assertion.
    assert b"/shop/buy" in secure_wired


def test_secure_session_still_delivers_wmlc():
    system, shop = build_secure_world()
    handle = system.add_station("Nokia 9290 Communicator")
    engine = TransactionEngine(system)

    def fetch(ctx):
        response = yield from ctx.get("/shop/catalog")
        return {"content_type": response.content_type,
                "cards": len(decode_wmlc(response.body).cards)}

    done = engine.run_flow(handle, fetch)
    system.run(until=300)
    assert done.value.ok, done.value.error
    assert done.value.result["content_type"] == WMLC_CONTENT_TYPE
    assert done.value.result["cards"] >= 1


def test_secure_session_requires_entropy():
    system, shop = build_secure_world()
    station = system.add_station("Palm i705").station
    with pytest.raises(ValueError, match="entropy"):
        WAPSession(station, system.host.web_node.primary_address,
                   secure=True)


def test_secure_costs_a_handshake():
    """The secure session's first request pays the WTLS round trips."""

    def first_request_latency(secure: bool) -> float:
        system, shop = build_secure_world(secure_wap=secure)
        handle = system.add_station("Toshiba E740")
        engine = TransactionEngine(system)

        def fetch(ctx):
            yield from ctx.get("/shop/catalog")
            return True

        done = engine.run_flow(handle, fetch)
        system.run(until=300)
        assert done.value.ok
        return done.value.latency

    assert first_request_latency(True) > first_request_latency(False)
