"""End-to-end secure payment and concurrency soak over the MC system.

The §8 story in situ: a mobile station opens a WTLS-style secure
channel *through the mobile commerce network* (radio bearer + wired
core) to the payment host and authorizes a payment; a sniffer on the
core sees only ciphertext.  Plus a soak: 12 stations shopping
concurrently on one cell without cross-talk.
"""

import json

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.net.tcp import tcp_stack
from repro.security import PaymentOrder, SecureChannel
from repro.sim import SeedBank


def build_world(**kwargs):
    defaults = dict(middleware="WAP", bearer=("cellular", "WCDMA"))
    defaults.update(kwargs)
    system = MCSystemBuilder(**defaults).build()
    shop = CommerceApp()
    system.mount_application(shop)
    return system, shop


def test_secure_payment_through_the_mc_network():
    system, shop = build_world()
    processor = system.host.payment
    processor.open_account("ann", 100_000)
    merchant_key = processor.register_merchant("secure-shop")
    handle = system.add_station("Toshiba E740")
    station = handle.station
    host_node = system.host.web_node
    bank = SeedBank(77)

    # A payment endpoint on the host, behind a SecureChannel.
    host_tcp = tcp_stack(host_node)
    listener = host_tcp.listen(4443)
    outcomes = {}

    def payment_endpoint(env):
        conn = yield listener.accept()
        channel = SecureChannel(conn, bank.stream("host"),
                                psk=b"sim-card-secret")
        yield channel.handshake_server()
        plaintext = yield channel.recv()
        order_data = json.loads(plaintext.decode())
        order = PaymentOrder(
            account=order_data["account"],
            merchant=order_data["merchant"],
            amount_cents=order_data["amount"],
            nonce=order_data["nonce"],
            signature=bytes.fromhex(order_data["signature"]),
        )
        auth = processor.authorize(order)
        processor.capture(auth.auth_id)
        channel.send(f"CAPTURED {auth.auth_id}".encode())
        outcomes["served"] = True

    # Sniff every TCP payload crossing the wired core.
    sniffed = bytearray()

    def sniffer(packet, iface):
        data = getattr(packet.payload, "data", b"")
        if data:
            sniffed.extend(data)
        return False

    system.network.node("internet-core").rx_taps.append(sniffer)

    def mobile_payment(env):
        station_tcp = tcp_stack(station)
        conn = station_tcp.connect(host_node.primary_address, 4443)
        yield conn.established_event
        channel = SecureChannel(conn, bank.stream("mobile"),
                                psk=b"sim-card-secret")
        yield channel.handshake_client()
        order = PaymentOrder(
            account="ann", merchant="secure-shop", amount_cents=2599,
            nonce=processor.make_nonce(),
        ).signed(merchant_key)
        channel.send(json.dumps({
            "account": order.account,
            "merchant": order.merchant,
            "amount": order.amount_cents,
            "nonce": order.nonce,
            "signature": order.signature.hex(),
        }).encode())
        reply = yield channel.recv()
        outcomes["reply"] = reply

    system.sim.spawn(payment_endpoint(system.sim))
    system.sim.spawn(mobile_payment(system.sim))
    system.run(until=120)

    assert outcomes.get("served")
    assert outcomes["reply"].startswith(b"CAPTURED")
    assert processor.balance("ann") == 100_000 - 2599
    # Confidentiality across the real network path.
    wire = bytes(sniffed)
    assert b"secure-shop" not in wire
    assert b"ann" not in wire
    assert len(wire) > 0


def test_soak_many_stations_one_cell():
    """12 devices shop concurrently; every outcome correct, no cross-talk."""
    system, shop = build_world()
    engine = TransactionEngine(system)
    events = []
    devices = ["Palm i705", "Toshiba E740", "Compaq iPAQ H3870",
               "Nokia 9290 Communicator", "SONY Clie PEG-NR70V"]
    for index in range(12):
        account = f"user{index}"
        system.host.payment.open_account(account, 50_000)
        handle = system.add_station(devices[index % len(devices)],
                                    name=f"station-{index}")
        events.append(engine.run_flow(
            handle, shop.browse_and_buy(item_id=2, account=account)))
    system.run(until=2_000)

    records = [e.value for e in events]
    failed = [(r.client_name, r.error) for r in records if not r.ok]
    assert not failed, failed
    # Server-side consistency: 12 orders, stock decremented exactly 12.
    from repro.db import execute
    db = system.host.db_server.database
    orders = execute(db, "SELECT * FROM shop_orders").rows
    assert len(orders) == 12
    assert len({o["account"] for o in orders}) == 12  # one each, no mixups
    stock = execute(db, "SELECT stock FROM shop_items WHERE id = 2"
                    ).rows[0]["stock"]
    assert stock == 100 - 12
    # Each user paid exactly once.
    for index in range(12):
        assert system.host.payment.balance(f"user{index}") == 50_000 - 950


def test_soak_entire_catalog_sells_out_cleanly():
    """Contention on the last items: exactly `stock` purchases succeed."""
    system, _ = build_world()
    shop2 = CommerceApp(items=[("Limited Edition", 1000, 3)])
    # A second commerce app cannot mount at the same paths; use a fresh
    # system instead.
    system = MCSystemBuilder(middleware="WAP",
                             bearer=("cellular", "WCDMA")).build()
    system.mount_application(shop2)
    engine = TransactionEngine(system)
    events = []
    for index in range(8):
        account = f"buyer{index}"
        system.host.payment.open_account(account, 10_000)
        handle = system.add_station("Toshiba E740",
                                    name=f"buyer-station-{index}")
        events.append(engine.run_flow(
            handle, shop2.browse_and_buy(item_id=1, account=account)))
    system.run(until=2_000)
    records = [e.value for e in events]
    succeeded = [r for r in records if r.ok]
    # Exactly 3 units existed.
    assert len(succeeded) == 3
    from repro.db import execute
    db = system.host.db_server.database
    stock = execute(db, "SELECT stock FROM shop_items WHERE id = 1"
                    ).rows[0]["stock"]
    assert stock == 0
    orders = execute(db, "SELECT * FROM shop_orders").rows
    assert len(orders) == 3
