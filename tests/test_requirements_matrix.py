"""Requirement 4 (interoperability) and the full §1.1 report.

Runs the reference purchase over the device x middleware x bearer
matrix — every combination the model claims to support must work.
"""

import pytest

from repro.apps import CommerceApp
from repro.core import (
    MCSystemBuilder,
    TransactionEngine,
    check_requirements,
    run_interoperability_matrix,
)

DEVICES = ["Palm i705", "Toshiba E740"]
MIDDLEWARES = ["WAP", "i-mode", "Palm"]
BEARERS = [("cellular", "GPRS"), ("wlan", "802.11b")]


def purchase_scenario(builder_kwargs, device) -> bool:
    system = MCSystemBuilder(**builder_kwargs).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 500_000)
    handle = system.add_station(device)
    engine = TransactionEngine(system)
    done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
    system.run(until=600)
    return done.triggered and done.value.ok


@pytest.fixture(scope="module")
def matrix():
    return run_interoperability_matrix(
        DEVICES, MIDDLEWARES, BEARERS, purchase_scenario)


def test_every_combination_works(matrix):
    failing = sorted(key for key, ok in matrix.items() if not ok)
    assert not failing, f"non-interoperable combinations: {failing}"
    assert len(matrix) == len(DEVICES) * len(MIDDLEWARES) * len(BEARERS)


def test_full_requirements_report_passes(matrix):
    """All five §1.1 requirements PASS on the reference system."""
    system = MCSystemBuilder(middleware="WAP",
                             bearer=("cellular", "GPRS")).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 500_000)
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)
    done = engine.run_flow(
        handle, shop.browse_and_buy(account="ann", user="ann"))
    system.run(until=600)
    assert done.value.ok

    # Requirement 5 evidence: the same flow on two different stacks.
    outcomes = {}
    for label, middleware, bearer in [
        ("stack-a", "WAP", ("cellular", "GPRS")),
        ("stack-b", "i-mode", ("wlan", "802.11b")),
    ]:
        other = MCSystemBuilder(middleware=middleware,
                                bearer=bearer).build()
        other_shop = CommerceApp()
        other.mount_application(other_shop)
        other.host.payment.open_account("ann", 500_000)
        other_handle = other.add_station("Toshiba E740")
        other_engine = TransactionEngine(other)
        other_done = other_engine.run_flow(
            other_handle, other_shop.browse_and_buy(account="ann"))
        other.run(until=600)
        assert other_done.value.ok
        outcomes[label] = other_done.value.result

    report = check_requirements(
        system, engine,
        interop_matrix=matrix,
        independence_outcomes=outcomes,
        expected_categories={"commerce"},
    )
    assert report.all_satisfied, report.summary()
