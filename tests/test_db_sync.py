"""Tests for mobile-database delta sync (device <-> host)."""

import pytest

from repro.db import SyncClient, SyncService
from repro.devices import EmbeddedDatabase, build_station
from repro.net import IPAddress, Network, Subnet
from repro.sim import Simulator
from repro.wireless import AccessPoint, ChannelModel, Mobile, Position, \
    wlan_standard


def build_sync_world(n_devices=1):
    sim = Simulator()
    net = Network(sim)
    host = net.add_node("host")
    ap_router = net.add_node("ap", forwarding=True)
    net.connect(host, ap_router, Subnet.parse("10.0.0.0/24"), delay=0.002)
    channel = ChannelModel()
    ap = AccessPoint(ap_router, Position(0, 0), wlan_standard("802.11b"),
                     channel, wireless_subnet=Subnet.parse("10.0.1.0/24"))
    net.build_routes()
    service = SyncService(host)

    clients = []
    for index in range(n_devices):
        station = build_station(
            sim, "Palm i705", IPAddress.parse(f"10.0.1.{10 + index}"),
            name=f"palm-{index}")
        net.adopt(station)
        ap.associate(station, station.mobile)
        db = EmbeddedDatabase(station, name=f"notes-{index}")
        clients.append(SyncClient(db, host.primary_address,
                                  namespace="notes"))
    return sim, service, clients


def run_sync(sim, client):
    ev = client.sync()
    sim.run(until=sim.now + 60)
    assert ev.triggered
    return ev.value


def test_device_changes_reach_host():
    sim, service, (client,) = build_sync_world()
    client.database.put("n1", {"text": "buy milk"})
    client.database.put("n2", {"text": "call office"})
    summary = run_sync(sim, client)
    assert summary["pushed"] == 2
    namespace = service.namespace("notes")
    assert namespace.records["n1"].value == {"text": "buy milk"}


def test_host_changes_reach_device():
    sim, service, (client,) = build_sync_world()
    service.namespace("notes").put("promo", {"text": "sale on cases"})
    summary = run_sync(sim, client)
    assert summary["pulled"] == 1
    assert client.database.get("promo") == {"text": "sale on cases"}


def test_second_sync_ships_only_deltas():
    sim, service, (client,) = build_sync_world()
    client.database.put("a", {"v": 1})
    first = run_sync(sim, client)
    assert first["pushed"] == 1
    second = run_sync(sim, client)
    assert second["pushed"] == 0
    assert second["pulled"] == 0
    client.database.put("b", {"v": 2})
    third = run_sync(sim, client)
    assert third["pushed"] == 1


def test_tombstones_propagate():
    sim, service, (client,) = build_sync_world()
    client.database.put("gone", {"v": 1})
    run_sync(sim, client)
    client.database.delete("gone")
    run_sync(sim, client)
    assert service.namespace("notes").records["gone"].deleted


def test_two_devices_converge():
    sim, service, clients = build_sync_world(n_devices=2)
    alpha, beta = clients
    alpha.database.put("from-alpha", {"v": "a"})
    beta.database.put("from-beta", {"v": "b"})
    run_sync(sim, alpha)
    run_sync(sim, beta)   # beta pulls alpha's record
    run_sync(sim, alpha)  # alpha pulls beta's record
    assert alpha.database.get("from-beta") == {"v": "b"}
    assert beta.database.get("from-alpha") == {"v": "a"}
    assert alpha.database.keys() == beta.database.keys()


def test_conflict_resolves_server_wins():
    """Two devices edit the same key offline; first to sync wins."""
    sim, service, clients = build_sync_world(n_devices=2)
    alpha, beta = clients
    alpha.database.put("shared", {"v": "alpha-first"})
    beta.database.put("shared", {"v": "beta-late"})
    run_sync(sim, alpha)                  # alpha lands on the server
    summary = run_sync(sim, beta)         # beta's edit conflicts
    assert summary["conflicts"] == 1
    # The server copy (alpha's) ships back; everyone converges on it.
    assert service.namespace("notes").records["shared"].value == \
        {"v": "alpha-first"}
    assert beta.database.get("shared") == {"v": "alpha-first"}
    run_sync(sim, alpha)
    assert alpha.database.get("shared") == {"v": "alpha-first"}


def test_sync_times_out_gracefully_when_host_unreachable():
    sim, service, (client,) = build_sync_world()
    # Cut the backhaul before syncing.
    for link in client.station.sim and []:
        pass
    client.service_address = IPAddress.parse("10.9.9.9")  # no such host
    ev = client.sync(timeout=1.0)
    sim.run(until=sim.now + 30)
    assert ev.value is None


def test_sync_respects_device_quota():
    sim, service, (client,) = build_sync_world()
    from repro.devices import OutOfMemoryError
    small = EmbeddedDatabase(client.station, name="tiny", quota_kb=1)
    tiny_client = SyncClient(small, client.service_address,
                             namespace="big", tcp=client.tcp)
    service.namespace("big").put("huge", {"blob": "z" * 5000})
    ev = tiny_client.sync()
    with pytest.raises(OutOfMemoryError):
        sim.run(until=sim.now + 60)
