"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ICDCSW'03" in out
    assert "repro.core" in out


def test_cli_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Palm i705" in out
    assert "802.11b" in out
    assert "WCDMA" in out
    assert "commerce" in out


def test_cli_validate(capsys):
    assert main(["validate"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1 (EC): VALID" in out
    assert "Figure 2 (MC): VALID" in out


def test_cli_quickstart_default(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "OK in" in out


def test_cli_quickstart_wlan_bearer_inferred(capsys):
    assert main(["quickstart", "--bearer", "802.11b",
                 "--middleware", "i-mode"]) == 0
    out = capsys.readouterr().out
    assert "i-mode/802.11b" in out


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
