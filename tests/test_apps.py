"""Per-category tests for the eight Table 1 applications."""

import pytest

from repro.apps import (
    CommerceApp,
    EducationApp,
    EntertainmentApp,
    ERPApp,
    HealthcareApp,
    InventoryApp,
    TrafficApp,
    TravelApp,
)
from repro.core import MCSystemBuilder, TransactionEngine
from repro.db import execute


@pytest.fixture
def world():
    """A WCDMA/WAP system with a fast device and a funded account."""
    system = MCSystemBuilder(middleware="WAP",
                             bearer=("cellular", "WCDMA")).build()
    system.host.payment.open_account("ann", 1_000_000)
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)
    return system, handle, engine


def run_flow(system, engine, handle, flow):
    done = engine.run_flow(handle, flow)
    system.run(until=system.sim.now + 300)
    assert done.triggered, "flow did not finish"
    return done.value


def db_rows(system, sql, params=()):
    return execute(system.host.db_server.database, sql, params).rows


# ---------------------------------------------------------------- commerce
def test_commerce_purchase_writes_order(world):
    system, handle, engine = world
    app = CommerceApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle,
                      app.browse_and_buy(item_id=2, account="ann"))
    assert record.ok, record.error
    orders = db_rows(system, "SELECT * FROM shop_orders")
    assert len(orders) == 1
    assert orders[0]["item_id"] == 2


def test_commerce_out_of_stock_rejected(world):
    system, handle, engine = world
    app = CommerceApp(items=[("Rare Thing", 100, 0)])
    system.mount_application(app)
    record = run_flow(system, engine, handle,
                      app.browse_and_buy(item_id=1, account="ann"))
    assert not record.ok
    assert db_rows(system, "SELECT * FROM shop_orders") == []


def test_commerce_personalization_flag(world):
    system, handle, engine = world
    app = CommerceApp()
    system.mount_application(app)
    assert not app.personalization_used
    record = run_flow(system, engine, handle,
                      app.browse_and_buy(account="ann", user="ann"))
    assert record.ok
    assert app.personalization_used


# --------------------------------------------------------------- education
def test_education_enroll_and_grade(world):
    system, handle, engine = world
    app = EducationApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle, app.attend_class(
        student="s1", answers={"q1": "4", "q2": "tcp"}))
    assert record.ok, record.error
    grades = db_rows(system, "SELECT * FROM edu_grades")
    assert grades[0]["score"] == 100
    courses = db_rows(system,
                      "SELECT enrolled FROM edu_courses WHERE code = 'CS101'")
    assert courses[0]["enrolled"] == 1


def test_education_wrong_answers_scored(world):
    system, handle, engine = world
    app = EducationApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle, app.attend_class(
        answers={"q1": "5", "q2": "tcp"}))
    assert record.ok
    grades = db_rows(system, "SELECT * FROM edu_grades")
    assert grades[0]["score"] == 50


# --------------------------------------------------------------------- erp
def test_erp_reserve_respects_capacity(world):
    system, handle, engine = world
    app = ERPApp(resources=[("crane", 1)])
    system.mount_application(app)

    def double_reserve(ctx):
        first = yield from ctx.get("/erp/reserve?resource=crane")
        second = yield from ctx.get("/erp/reserve?resource=crane")
        return {"first": first.status, "second": second.status}

    record = run_flow(system, engine, handle, double_reserve)
    assert record.ok
    assert record.result == {"first": 200, "second": 409}


def test_erp_full_cycle(world):
    system, handle, engine = world
    app = ERPApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle, app.manage_resources())
    assert record.ok
    rows = db_rows(system, "SELECT reserved FROM erp_resources "
                           "WHERE name = 'delivery-van'")
    assert rows[0]["reserved"] == 0  # reserved then released


# ----------------------------------------------------------- entertainment
def test_entertainment_download_delivers_bytes(world):
    system, handle, engine = world
    app = EntertainmentApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle,
                      app.buy_and_download(media_id=1, account="ann"))
    assert record.ok, record.error
    assert record.result["bytes"] == 12 * 1024
    licenses = db_rows(system, "SELECT * FROM media_licenses")
    assert len(licenses) == 1
    assert system.host.payment.balance("ann") == 1_000_000 - 99


def test_entertainment_larger_media_takes_longer(world):
    system, handle, engine = world
    app = EntertainmentApp()
    system.mount_application(app)
    small = run_flow(system, engine, handle,
                     app.buy_and_download(media_id=1, account="ann"))
    big = run_flow(system, engine, handle,
                   app.buy_and_download(media_id=3, account="ann"))
    assert small.ok and big.ok
    assert big.latency > small.latency


# ---------------------------------------------------------------- healthcare
def test_healthcare_requires_authentication(world):
    system, handle, engine = world
    app = HealthcareApp()
    system.mount_application(app)

    def snoop(ctx):
        record = yield from ctx.get("/hc/record?patient=1&token=forged")
        return {"status": record.status}

    record = run_flow(system, engine, handle, snoop)
    assert record.result == {"status": 401}


def test_healthcare_rounds_audited(world):
    system, handle, engine = world
    app = HealthcareApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle, app.rounds())
    assert record.ok, record.error
    audit = db_rows(system, "SELECT * FROM hc_audit")
    actions = sorted(row["action"] for row in audit)
    assert actions == ["read", "write"]
    vitals = db_rows(system,
                     "SELECT * FROM hc_vitals WHERE patient_id = 1")
    assert len(vitals) == 2  # seeded + newly recorded


def test_healthcare_bad_password_rejected(world):
    system, handle, engine = world
    app = HealthcareApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle,
                      app.rounds(password="wrong"))
    assert not record.ok


# ----------------------------------------------------------------- inventory
def test_inventory_driver_updates_position(world):
    system, handle, engine = world
    app = InventoryApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle,
                      app.driver_rounds(shipment=1))
    assert record.ok
    rows = db_rows(system,
                   "SELECT x, y FROM inv_shipments WHERE shipment_id = 1")
    assert (rows[0]["x"], rows[0]["y"]) == (3.0, 6.0)


def test_inventory_dispatch_picks_nearest(world):
    system, handle, engine = world
    app = InventoryApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle,
                      app.dispatcher_flow(pickup=(6.0, 6.0)))
    assert record.ok
    dispatched = db_rows(system, "SELECT * FROM inv_shipments "
                                 "WHERE status = 'dispatched'")
    assert len(dispatched) == 1
    assert dispatched[0]["driver"] == "erin"  # at (5,5), nearest to (6,6)


# ------------------------------------------------------------------ traffic
def test_traffic_directions_shortest_path(world):
    system, handle, engine = world
    app = TrafficApp()
    system.mount_application(app)

    def ask(ctx):
        reply = yield from ctx.get(
            "/traffic/directions?from_x=0&from_y=0&to_x=2&to_y=0")
        return {"status": reply.status,
                "body": reply.body.decode(errors="replace")}

    record = run_flow(system, engine, handle, ask)
    assert record.ok


def test_traffic_congestion_changes_route(world):
    system, handle, engine = world
    app = TrafficApp()
    system.mount_application(app)

    def scenario(ctx):
        before = yield from ctx.get(
            "/traffic/directions?from_x=0&from_y=0&to_x=4&to_y=4")
        yield from ctx.get("/traffic/report?x=2&y=2&delay=60")
        after = yield from ctx.get(
            "/traffic/directions?from_x=0&from_y=0&to_x=4&to_y=4")
        return {"before": before.body.decode(errors="replace"),
                "after": after.body.decode(errors="replace")}

    record = run_flow(system, engine, handle, scenario)
    assert record.ok, record.error
    # The congested intersection is avoided afterwards.
    assert "(2, 2)" not in record.result["after"]


def test_traffic_off_map_rejected(world):
    system, handle, engine = world
    app = TrafficApp()
    system.mount_application(app)

    def ask(ctx):
        reply = yield from ctx.get(
            "/traffic/directions?from_x=0&from_y=0&to_x=99&to_y=99")
        return {"status": reply.status}

    record = run_flow(system, engine, handle, ask)
    assert record.result == {"status": 404}


# ------------------------------------------------------------------- travel
def test_travel_booking_decrements_seats(world):
    system, handle, engine = world
    app = TravelApp()
    system.mount_application(app)
    record = run_flow(system, engine, handle,
                      app.book_trip(trip_id=102, passenger="ann"))
    assert record.ok, record.error
    rows = db_rows(system,
                   "SELECT seats_left FROM tv_trips WHERE trip_id = 102")
    assert rows[0]["seats_left"] == 39


def test_travel_sellout(world):
    system, handle, engine = world
    app = TravelApp(trips=[(1, "A", "B", "08:00", 1, 1000)])
    system.mount_application(app)
    first = run_flow(system, engine, handle, app.book_trip(
        origin="A", destination="B", trip_id=1, passenger="p1"))
    assert first.ok
    second = run_flow(system, engine, handle, app.book_trip(
        origin="A", destination="B", trip_id=1, passenger="p2"))
    assert not second.ok


def test_travel_ticket_verifiable(world):
    system, handle, engine = world
    app = TravelApp()
    system.mount_application(app)

    def book_and_verify(ctx):
        from repro.middleware import WMLC_CONTENT_TYPE, decode_wmlc
        ticket_page = yield from ctx.get(
            "/travel/book?trip=201&passenger=ann")
        if ticket_page.content_type == WMLC_CONTENT_TYPE:
            deck = decode_wmlc(ticket_page.body)
            body = " ".join(p for card in deck.cards
                            for p in card.paragraphs)
        else:
            body = ticket_page.body.decode(errors="replace")
        token = next(word for word in body.split()
                     if word.startswith("ann@trip201:"))
        verdict = yield from ctx.get(f"/travel/verify?token={token}")
        forged = yield from ctx.get("/travel/verify?token=bogus")
        return {"real": verdict.status, "forged": forged.status}

    record = run_flow(system, engine, handle, book_and_verify)
    assert record.ok, record.error
    assert record.result == {"real": 200, "forged": 403}
