"""Cross-layer property-based tests (hypothesis).

Slow-ish generative tests that hammer invariants across the stack:
TCP delivers exactly the bytes sent regardless of loss pattern; the
HTTP codec round-trips arbitrary messages; templates never crash on
well-formed input; WML survives transcoding pipelines.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.middleware import decode_wmlc, encode_wmlc, html_to_wml, parse_wml
from repro.net import Network, Subnet, TCPStack
from repro.sim import SeedBank, Simulator
from repro.web import HTTPRequest, HTTPResponse, RequestParser, ResponseParser

SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------- TCP
@given(
    payload=st.binary(min_size=1, max_size=30_000),
    loss=st.sampled_from([0.0, 0.03, 0.10]),
    seed=st.integers(min_value=0, max_value=1000),
)
@SLOW
def test_tcp_delivers_exact_bytes_under_any_loss(payload, loss, seed):
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    stream = SeedBank(seed).stream("loss") if loss else None
    net.connect(a, b, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=5_000_000, delay=0.005,
                loss_rate=loss, loss_stream=stream)
    net.build_routes()
    tcp_a, tcp_b = TCPStack(a, mss=700), TCPStack(b, mss=700)
    listener = tcp_b.listen(80)
    received = bytearray()

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    def client(env):
        conn = tcp_a.connect(b.primary_address, 80, mss=700)
        yield conn.established_event
        conn.send(payload)

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=3_000)
    assert bytes(received) == payload


@given(
    chunks=st.lists(st.binary(min_size=1, max_size=4000),
                    min_size=1, max_size=8),
)
@SLOW
def test_tcp_preserves_stream_order_across_sends(chunks):
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), delay=0.002)
    net.build_routes()
    tcp_a, tcp_b = TCPStack(a), TCPStack(b)
    listener = tcp_b.listen(80)
    total = sum(len(c) for c in chunks)
    received = bytearray()

    def server(env):
        conn = yield listener.accept()
        while len(received) < total:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    def client(env):
        conn = tcp_a.connect(b.primary_address, 80)
        yield conn.established_event
        for chunk in chunks:
            conn.send(chunk)
            yield env.timeout(0.001)

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=300)
    assert bytes(received) == b"".join(chunks)


# --------------------------------------------------------------- HTTP
_header_name = st.text(alphabet="abcdefghijklmnopqrstuvwxyz-",
                       min_size=1, max_size=12).filter(
    lambda s: not s.startswith("-"))
_header_value = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=30)


@given(
    path=st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                 min_size=1, max_size=40).map(
        lambda s: "/" + s.replace(" ", "")),
    headers=st.dictionaries(_header_name, _header_value, max_size=5),
    body=st.binary(max_size=2000),
)
@SLOW
def test_http_request_codec_round_trip(path, headers, body):
    request = HTTPRequest("POST", path, headers, body)
    parsed = RequestParser().feed(request.encode())
    assert len(parsed) == 1
    out = parsed[0]
    assert out.method == "POST"
    assert out.path == path
    assert out.body == body
    for name, value in headers.items():
        if name != "content-length":
            assert out.headers.get(name) == value.strip()


@given(status=st.sampled_from([200, 201, 302, 400, 404, 500]),
       body=st.binary(max_size=5000))
@SLOW
def test_http_response_codec_round_trip(status, body):
    response = HTTPResponse(status, {"content-type": "text/html"}, body)
    out = ResponseParser().feed(response.encode())[0]
    assert out.status == status
    assert out.body == body


@given(messages=st.lists(st.binary(max_size=500), min_size=1, max_size=5),
       chop=st.integers(min_value=1, max_value=64))
@SLOW
def test_http_parser_invariant_under_fragmentation(messages, chop):
    """Any byte-chopping of a pipelined stream parses identically."""
    wire = b"".join(
        HTTPRequest("POST", f"/m{i}", {}, body).encode()
        for i, body in enumerate(messages)
    )
    parser = RequestParser()
    collected = []
    for i in range(0, len(wire), chop):
        collected.extend(parser.feed(wire[i:i + chop]))
    assert [r.body for r in collected] == list(messages)


# ----------------------------------------------------------------- WML
@given(text=st.text(alphabet=st.characters(
    blacklist_characters="<>&\"", blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=400))
@SLOW
def test_html_to_wml_to_wmlc_pipeline_never_crashes(text):
    html = f"<html><head><title>T</title></head><body><p>{text}</p></body></html>"
    deck = html_to_wml(html)
    blob = encode_wmlc(deck)
    decoded = decode_wmlc(blob)
    assert decoded == deck
    reparsed = parse_wml(deck.to_xml())
    assert len(reparsed.cards) == len(deck.cards)


@given(words=st.lists(
    st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
            min_size=1, max_size=12),
    min_size=1, max_size=300))
@SLOW
def test_html_to_wml_preserves_all_words(words):
    """Card splitting loses no content."""
    html = "<html><body><p>" + " ".join(words) + "</p></body></html>"
    deck = html_to_wml(html, card_limit=80)
    recovered = " ".join(
        p for card in deck.cards for p in card.paragraphs).split()
    assert recovered == words
