"""Tests for repro.perf: the load benchmark, the optimization flags,
and the caches-on/off determinism guard."""

import json

import pytest

from repro.opt import FLAG_NAMES, OPTIMIZATIONS, optimizations_disabled
from repro.perf import (
    bench_json,
    determinism_check,
    run_bench,
    scheduler_check,
    sweep_bench,
)
from repro.perf.baseline import (
    BASELINES,
    PRE_OPTIMIZATION_BASELINE,
    baseline_for,
    baselines_for,
)

SMALL = dict(users=5, seed=11, transactions_per_user=2, horizon=90.0)


# ------------------------------------------------------------- opt flags
def test_flags_default_on_and_context_restores():
    assert all(OPTIMIZATIONS.as_dict().values())
    with optimizations_disabled():
        assert not any(OPTIMIZATIONS.as_dict().values())
    assert all(OPTIMIZATIONS.as_dict().values())


def test_flags_partial_disable():
    with optimizations_disabled("dns_cache"):
        flags = OPTIMIZATIONS.as_dict()
        assert flags["dns_cache"] is False
        others = {k: v for k, v in flags.items() if k != "dns_cache"}
        assert all(others.values())
    assert OPTIMIZATIONS.dns_cache is True


def test_flags_reject_unknown_names():
    with pytest.raises(ValueError):
        with optimizations_disabled("hyperdrive"):
            pass
    assert all(OPTIMIZATIONS.as_dict().values())


def test_flag_catalogue_matches_slots():
    assert set(FLAG_NAMES) == {"dns_cache", "translation_cache", "sql_cache",
                               "gc_isolation"}


# ------------------------------------------------------------- the bench
def test_run_bench_report_shape_and_health():
    report = run_bench(**SMALL)
    det = report["deterministic"]
    assert det["users"] == SMALL["users"]
    assert det["completed"] == SMALL["users"] * SMALL["transactions_per_user"]
    assert det["success_vs_offered"] >= 0.9
    # success_rate (succeeded/completed) was removed from the bench: it
    # hid stranded work; success_vs_offered is the honest replacement.
    assert "success_rate" not in det
    assert det["kernel_events"] > 0
    assert det["virtual_seconds"] == SMALL["horizon"]
    # The tracer-backed layer breakdown covers the whole path (deepest
    # span wins, so layers fully covered by children may not appear).
    assert {"wireless", "middleware", "wired", "db"} <= set(det["layers"])
    measured = report["measured"]
    assert measured["wall_seconds"] > 0
    assert measured["events_per_sec"] > 0
    assert report["optimizations"] == OPTIMIZATIONS.as_dict()


def test_run_bench_rejects_bad_parameters():
    with pytest.raises(ValueError):
        run_bench(users=0)
    with pytest.raises(ValueError):
        run_bench(users=1, transactions_per_user=0)


def test_bench_deterministic_section_reproducible():
    first = run_bench(**SMALL)
    second = run_bench(**SMALL)
    assert json.dumps(first["deterministic"], sort_keys=True) == \
        json.dumps(second["deterministic"], sort_keys=True)


def test_bench_json_is_canonical():
    report = run_bench(**SMALL)
    text = bench_json(report)
    assert json.loads(text) == report
    assert text == bench_json(json.loads(text))


# ------------------------------------------------- determinism A/B guard
def test_caches_on_and_off_give_identical_bench_results():
    """The tentpole invariant: every optimization is transparent."""
    cached = run_bench(**SMALL)
    with optimizations_disabled():
        uncached = run_bench(**SMALL)
    assert json.dumps(cached["deterministic"], sort_keys=True) == \
        json.dumps(uncached["deterministic"], sort_keys=True)
    # The runs really did take different code paths.
    assert cached["optimizations"] != uncached["optimizations"]


def test_determinism_check_verdict():
    verdict = determinism_check(users=5, seed=11)
    assert verdict["identical"] is True
    assert set(verdict["checks"]) == {
        "bench", "chaos-gateway-outage", "chaos-dns-blackout"}
    assert all(verdict["checks"].values())
    # The guard restores the flags it toggled.
    assert all(OPTIMIZATIONS.as_dict().values())


def test_scheduler_check_verdict():
    """The tentpole invariant: heap and calendar dispatch identically."""
    verdict = scheduler_check(users=5, seed=11)
    assert verdict["identical"] is True
    assert verdict["schedulers"] == ["heap", "calendar"]
    assert set(verdict["checks"]) == {
        "bench", "chaos-gateway-outage", "chaos-dns-blackout"}
    assert all(verdict["checks"].values())


def test_scheduler_check_rejects_bad_scheduler_lists():
    with pytest.raises(ValueError):
        scheduler_check(users=2, schedulers=("heap",))
    with pytest.raises(ValueError):
        scheduler_check(users=2, schedulers=("heap", "splay"))


# ----------------------------------------------------------------- sweep
def test_sweep_bench_curve_shape():
    sweep = sweep_bench([3, 1], seed=11, transactions_per_user=2,
                        horizon=90.0)
    det = sweep["deterministic"]
    users = [point["users"] for point in det["points"]]
    assert users == [1, 3]  # sorted, deduplicated
    for point in det["points"]:
        assert point["offered_tps"] > 0
        assert 0.0 <= point["goodput_tps"] <= point["offered_tps"] + 1e-9
        assert point["kernel_events"] > 0
    measured = [point["users"] for point in sweep["measured"]["points"]]
    assert measured == users


def test_sweep_bench_rejects_empty():
    with pytest.raises(ValueError):
        sweep_bench([])


# ------------------------------------------------------------- baseline
def test_baseline_only_matches_its_exact_scenario():
    b = PRE_OPTIMIZATION_BASELINE
    match = baseline_for(b["users"], b["seed"],
                         b["transactions_per_user"], b["horizon"])
    assert match is not None and match["wall_seconds"] > 0
    assert baseline_for(b["users"] + 1, b["seed"],
                        b["transactions_per_user"], b["horizon"]) is None


def test_baselines_for_returns_every_matching_record():
    b = PRE_OPTIMIZATION_BASELINE
    matches = baselines_for(b["users"], b["seed"],
                            b["transactions_per_user"], b["horizon"])
    assert set(matches) <= set(BASELINES)
    assert "pre_optimization" in matches
    for record in matches.values():
        assert record["wall_seconds"] > 0 and record["kernel_events"] > 0
