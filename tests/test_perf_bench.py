"""Tests for repro.perf: the load benchmark, the optimization flags,
and the caches-on/off determinism guard."""

import json

import pytest

from repro.opt import FLAG_NAMES, OPTIMIZATIONS, optimizations_disabled
from repro.perf import (
    bench_json,
    determinism_check,
    run_bench,
)
from repro.perf.baseline import PRE_OPTIMIZATION_BASELINE, baseline_for

SMALL = dict(users=5, seed=11, transactions_per_user=2, horizon=90.0)


# ------------------------------------------------------------- opt flags
def test_flags_default_on_and_context_restores():
    assert all(OPTIMIZATIONS.as_dict().values())
    with optimizations_disabled():
        assert not any(OPTIMIZATIONS.as_dict().values())
    assert all(OPTIMIZATIONS.as_dict().values())


def test_flags_partial_disable():
    with optimizations_disabled("dns_cache"):
        flags = OPTIMIZATIONS.as_dict()
        assert flags["dns_cache"] is False
        others = {k: v for k, v in flags.items() if k != "dns_cache"}
        assert all(others.values())
    assert OPTIMIZATIONS.dns_cache is True


def test_flags_reject_unknown_names():
    with pytest.raises(ValueError):
        with optimizations_disabled("hyperdrive"):
            pass
    assert all(OPTIMIZATIONS.as_dict().values())


def test_flag_catalogue_matches_slots():
    assert set(FLAG_NAMES) == {"dns_cache", "translation_cache", "sql_cache"}


# ------------------------------------------------------------- the bench
def test_run_bench_report_shape_and_health():
    report = run_bench(**SMALL)
    det = report["deterministic"]
    assert det["users"] == SMALL["users"]
    assert det["completed"] == SMALL["users"] * SMALL["transactions_per_user"]
    assert det["success_rate"] >= 0.9
    assert det["kernel_events"] > 0
    assert det["virtual_seconds"] == SMALL["horizon"]
    # The tracer-backed layer breakdown covers the whole path (deepest
    # span wins, so layers fully covered by children may not appear).
    assert {"wireless", "middleware", "wired", "db"} <= set(det["layers"])
    measured = report["measured"]
    assert measured["wall_seconds"] > 0
    assert measured["events_per_sec"] > 0
    assert report["optimizations"] == OPTIMIZATIONS.as_dict()


def test_run_bench_rejects_bad_parameters():
    with pytest.raises(ValueError):
        run_bench(users=0)
    with pytest.raises(ValueError):
        run_bench(users=1, transactions_per_user=0)


def test_bench_deterministic_section_reproducible():
    first = run_bench(**SMALL)
    second = run_bench(**SMALL)
    assert json.dumps(first["deterministic"], sort_keys=True) == \
        json.dumps(second["deterministic"], sort_keys=True)


def test_bench_json_is_canonical():
    report = run_bench(**SMALL)
    text = bench_json(report)
    assert json.loads(text) == report
    assert text == bench_json(json.loads(text))


# ------------------------------------------------- determinism A/B guard
def test_caches_on_and_off_give_identical_bench_results():
    """The tentpole invariant: every optimization is transparent."""
    cached = run_bench(**SMALL)
    with optimizations_disabled():
        uncached = run_bench(**SMALL)
    assert json.dumps(cached["deterministic"], sort_keys=True) == \
        json.dumps(uncached["deterministic"], sort_keys=True)
    # The runs really did take different code paths.
    assert cached["optimizations"] != uncached["optimizations"]


def test_determinism_check_verdict():
    verdict = determinism_check(users=5, seed=11)
    assert verdict["identical"] is True
    assert set(verdict["checks"]) == {
        "bench", "chaos-gateway-outage", "chaos-dns-blackout"}
    assert all(verdict["checks"].values())
    # The guard restores the flags it toggled.
    assert all(OPTIMIZATIONS.as_dict().values())


# ------------------------------------------------------------- baseline
def test_baseline_only_matches_its_exact_scenario():
    b = PRE_OPTIMIZATION_BASELINE
    match = baseline_for(b["users"], b["seed"],
                         b["transactions_per_user"], b["horizon"])
    assert match is not None and match["wall_seconds"] > 0
    assert baseline_for(b["users"] + 1, b["seed"],
                        b["transactions_per_user"], b["horizon"]) is None
