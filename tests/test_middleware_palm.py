"""Tests for Palm Web Clipping (the paper's third middleware)."""

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.middleware import (
    CLIPPING_CONTENT_TYPE,
    PalmSession,
    WebClippingProxy,
)
from repro.net import NameRegistry, Network, Subnet
from repro.sim import Simulator
from repro.web import WebServer

LONG_HTML = ("<html><head><title>Long Article</title></head><body>"
             "<script>noise();</script>"
             + "<p>" + "Interesting mobile commerce news. " * 120 + "</p>"
             + "</body></html>")


def clipping_world():
    sim = Simulator()
    net = Network(sim)
    origin = net.add_node("origin")
    proxy_node = net.add_node("clipper", forwarding=True)
    palm = net.add_node("palm")
    net.connect(origin, proxy_node, Subnet.parse("10.0.1.0/24"),
                delay=0.005)
    net.connect(proxy_node, palm, Subnet.parse("10.0.2.0/24"),
                bandwidth_bps=9_600, delay=0.3)  # Mobitex-era radio
    net.build_routes()
    registry = NameRegistry()
    registry.register("news.example.com", origin.primary_address)
    server = WebServer(origin)
    server.add_page("/article", LONG_HTML)
    proxy = WebClippingProxy(proxy_node, registry)
    session = PalmSession(palm, proxy_node.primary_address)
    return sim, proxy, session


def run_get(sim, session, url):
    box = {}

    def go(env):
        box["response"] = yield session.get(url)

    sim.spawn(go(sim))
    sim.run(until=sim.now + 300)
    return box["response"]


def test_clipping_is_small_and_plain():
    sim, proxy, session = clipping_world()
    response = run_get(sim, session, "http://news.example.com/article")
    assert response.ok
    assert response.content_type == CLIPPING_CONTENT_TYPE
    text = response.body.decode()
    assert text.startswith("Long Article")
    assert "Interesting mobile commerce news." in text
    assert "noise()" not in text
    assert len(response.body) <= 1024          # the clipping ceiling
    assert response.meta["truncated"] is True  # the article was long
    assert response.meta["origin_bytes"] > 3000


def test_clipping_compressed_on_the_wire():
    sim, proxy, session = clipping_world()
    response = run_get(sim, session, "http://news.example.com/article")
    # Repetitive text compresses dramatically below the clipping size.
    assert response.meta["wire_bytes"] < response.meta["clipping_bytes"] / 3


def test_clipping_unresolvable_host():
    sim, proxy, session = clipping_world()
    response = run_get(sim, session, "http://ghost.example.com/x")
    assert response.status == 502


def test_palm_session_always_on_like():
    sim, proxy, session = clipping_world()
    run_get(sim, session, "http://news.example.com/article")
    run_get(sim, session, "http://news.example.com/article")
    assert session.stats.get("session_establishments") == 1
    assert session.stats.get("requests") == 2


def test_palm_middleware_in_full_mc_system():
    """The third middleware drops into the builder like the other two."""
    system = MCSystemBuilder(middleware="Palm",
                             bearer=("cellular", "GPRS")).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    handle = system.add_station("Palm i705")  # the natural pairing
    engine = TransactionEngine(system)
    done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
    system.run(until=600)
    record = done.value
    assert record.ok, record.error
    assert system.model.validate_mc().valid
    # The pages arrived as clippings and were rendered on the device.
    assert handle.browser.pages_rendered == 3


def test_palm_renders_cheapest_on_device():
    """Pre-digested clippings cost the device less than WML decks."""
    def render_cost(middleware):
        system = MCSystemBuilder(middleware=middleware,
                                 bearer=("cellular", "WCDMA")).build()
        shop = CommerceApp()
        system.mount_application(shop)
        system.host.payment.open_account("ann", 100_000)
        handle = system.add_station("Palm i705")
        engine = TransactionEngine(system)
        done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
        system.run(until=600)
        assert done.value.ok, done.value.error
        return done.value.render_seconds

    assert render_cost("Palm") < render_cost("WAP")
