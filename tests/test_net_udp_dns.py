"""Tests for UDP sockets and the DNS substrate."""

import pytest

from repro.net import (
    DNSResolver,
    DNSServer,
    NameRegistry,
    Network,
    Subnet,
    UDPStack,
)
from repro.sim import Simulator


def make_pair(sim):
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), delay=0.002)
    net.build_routes()
    return net, a, b


def test_udp_send_receive():
    sim = Simulator()
    net, a, b = make_pair(sim)
    udp_a, udp_b = UDPStack(a), UDPStack(b)
    server = udp_b.bind(9000)
    client = udp_a.bind()
    got = []

    def srv(env):
        data, src, port = yield server.recv()
        got.append((data, str(src), port))

    sim.spawn(srv(sim))
    client.sendto("ping", b.primary_address, 9000, data_size=16)
    sim.run()
    assert got == [("ping", str(a.primary_address), client.port)]


def test_udp_reply_path():
    sim = Simulator()
    net, a, b = make_pair(sim)
    udp_a, udp_b = UDPStack(a), UDPStack(b)
    server = udp_b.bind(9000)
    client = udp_a.bind()
    got = []

    def srv(env):
        data, src, port = yield server.recv()
        server.sendto(data.upper(), src, port, data_size=16)

    def cli(env):
        client.sendto("hello", b.primary_address, 9000, data_size=16)
        data, _, _ = yield client.recv()
        got.append(data)

    sim.spawn(srv(sim))
    sim.spawn(cli(sim))
    sim.run()
    assert got == ["HELLO"]


def test_udp_unbound_port_drops():
    sim = Simulator()
    net, a, b = make_pair(sim)
    udp_a = UDPStack(a)
    UDPStack(b)
    client = udp_a.bind()
    client.sendto("x", b.primary_address, 12345, data_size=8)
    sim.run()
    assert b.stats.get("udp_port_unreachable") == 1


def test_udp_double_bind_rejected():
    sim = Simulator()
    net, a, _ = make_pair(sim)
    udp = UDPStack(a)
    udp.bind(5000)
    with pytest.raises(RuntimeError):
        udp.bind(5000)


def test_udp_recv_timeout():
    sim = Simulator()
    net, a, _ = make_pair(sim)
    udp = UDPStack(a)
    sock = udp.bind(7000)
    result = sock.recv_with_timeout(0.5)
    sim.run()
    assert result.value is None


def test_udp_closed_socket_rejects():
    sim = Simulator()
    net, a, b = make_pair(sim)
    udp = UDPStack(a)
    sock = udp.bind()
    sock.close()
    with pytest.raises(RuntimeError):
        sock.sendto("x", b.primary_address, 1)
    with pytest.raises(RuntimeError):
        sock.recv()


def test_name_registry_case_insensitive():
    reg = NameRegistry()
    from repro.net import IPAddress
    reg.register("Shop.Example.COM", IPAddress.parse("10.0.0.5"))
    assert reg.lookup("shop.example.com") == IPAddress.parse("10.0.0.5")
    assert reg.lookup("other.example.com") is None
    reg.unregister("SHOP.example.com")
    assert len(reg) == 0


def test_registry_rejects_empty_name():
    from repro.net import IPAddress
    with pytest.raises(ValueError):
        NameRegistry().register("", IPAddress(1))


def test_dns_resolution_over_network():
    sim = Simulator()
    net, client_node, server_node = make_pair(sim)
    registry = NameRegistry()
    registry.register("shop.example.com", server_node.primary_address)
    DNSServer(server_node, registry)
    resolver = DNSResolver(client_node, server_node.primary_address)
    result = resolver.resolve("shop.example.com")
    sim.run()
    assert result.value == server_node.primary_address


def test_dns_negative_answer():
    sim = Simulator()
    net, client_node, server_node = make_pair(sim)
    DNSServer(server_node, NameRegistry())
    resolver = DNSResolver(client_node, server_node.primary_address)
    result = resolver.resolve("missing.example.com")
    sim.run()
    assert result.value is None


def test_dns_cache_hits_without_network():
    sim = Simulator()
    net, client_node, server_node = make_pair(sim)
    registry = NameRegistry()
    registry.register("shop.example.com", server_node.primary_address)
    DNSServer(server_node, registry)
    resolver = DNSResolver(client_node, server_node.primary_address)
    first = resolver.resolve("shop.example.com")
    sim.run()
    assert first.value == server_node.primary_address
    # Second resolution must not touch the wire: cut the link to prove it.
    net.links[0].take_down()
    second = resolver.resolve("shop.example.com")
    sim.run()
    assert second.value == server_node.primary_address
