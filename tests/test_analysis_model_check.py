"""Tests for the static model checker: reference builds all-PASS,
deliberately broken systems FAIL with evidence, thin models are
INCONCLUSIVE."""

import json

import pytest

from repro.__main__ import main
from repro.analysis import (
    ModelChecker,
    Verdict,
    check_reference_systems,
)
from repro.apps import CommerceApp
from repro.core import (
    Component,
    ComponentKind,
    EDGE_DATA_FLOW,
    MCSystemBuilder,
    SystemModel,
)
from repro.core.requirements import (
    STRUCTURAL_CLAIMS,
    claims_for_figure,
    structural_claim,
)


def build_mc(middleware="WAP", with_app=True, with_station=True):
    system = MCSystemBuilder(middleware=middleware).build()
    if with_app:
        system.mount_application(CommerceApp())
    if with_station:
        system.add_station("Toshiba E740")
    return system


# -- reference builds ----------------------------------------------------------

def test_reference_builds_all_pass():
    reports = check_reference_systems()
    assert set(reports) == {"ec", "mc"}
    for report in reports.values():
        assert report.failures == []
        assert report.verdict is Verdict.PASS


def test_every_figure_claim_gets_a_verdict():
    reports = check_reference_systems()
    for figure, report in reports.items():
        decided = {r.claim.claim_id for r in report.results}
        expected = {c.claim_id for c in claims_for_figure(figure)}
        assert decided == expected


def test_all_middlewares_pass_table3_compat():
    for middleware in ("WAP", "i-mode", "Palm"):
        system = build_mc(middleware=middleware)
        report = ModelChecker.for_system(system).run()
        result = report.result("MC-MIDDLEWARE-COMPAT")
        assert result.verdict is Verdict.PASS, result.evidence


# -- seeded failures ----------------------------------------------------------

def test_wap_without_gateway_host_fails():
    """The headline broken fixture: WAP declared, no gateway mounted."""
    system = build_mc(middleware="WAP")
    system.model.component("mobile-middleware").implementation = None
    report = ModelChecker.for_system(system).run()
    result = report.result("MC-MIDDLEWARE-COMPAT")
    assert result.verdict is Verdict.FAIL
    assert "gateway" in result.evidence
    assert report.verdict is Verdict.FAIL


def test_wrong_gateway_family_fails():
    wap = build_mc(middleware="WAP")
    imode = build_mc(middleware="i-mode")
    # Terminate WAP sessions at an i-mode centre: Table 3 violation.
    wap.model.component("mobile-middleware").implementation = \
        imode.model.component("mobile-middleware").implementation
    result = ModelChecker.for_system(wap).run() \
        .result("MC-MIDDLEWARE-COMPAT")
    assert result.verdict is Verdict.FAIL
    assert "IModeCenter" in result.evidence


def test_unhosted_gateway_fails():
    system = build_mc(middleware="WAP")
    gateway = system.model.component("mobile-middleware").implementation
    gateway.node = None
    result = ModelChecker.for_system(system).run() \
        .result("MC-MIDDLEWARE-COMPAT")
    assert result.verdict is Verdict.FAIL
    assert "not hosted" in result.evidence


def test_dangling_edge_fails():
    system = build_mc()
    model = system.model
    model._edges.append(type(model.edges()[0])(
        "mobile-stations", "ghost-component", EDGE_DATA_FLOW))
    result = ModelChecker.for_system(system).run().result("EDGES-RESOLVED")
    assert result.verdict is Verdict.FAIL
    assert "ghost-component" in result.evidence


def test_unreachable_component_fails():
    system = build_mc()
    system.model.add(Component(ComponentKind.HOST_COMPUTERS,
                               "orphan-host"))
    result = ModelChecker.for_system(system).run().result("REACHABLE")
    assert result.verdict is Verdict.FAIL
    assert "orphan-host" in result.evidence


def test_missing_flow_fails():
    model = SystemModel(name="broken")
    for kind, name in [
        (ComponentKind.USERS, "users"),
        (ComponentKind.MOBILE_STATIONS, "stations"),
        (ComponentKind.WIRELESS_NETWORKS, "radio"),
        (ComponentKind.WIRED_NETWORKS, "wire"),
        (ComponentKind.HOST_COMPUTERS, "host"),
        (ComponentKind.APPLICATIONS, "app"),
    ]:
        model.add(Component(kind, name))
    # users -> stations only; the chain stops dead at the bearer.
    model.connect("users", "stations", EDGE_DATA_FLOW)
    report = ModelChecker(model, figure="mc").run()
    assert report.result("MC-FLOW").verdict is Verdict.FAIL
    assert report.result("MC-STATION-BEARER").verdict is Verdict.FAIL


def test_ec_with_wireless_fails():
    from repro.core import ECSystemBuilder

    system = ECSystemBuilder().build()
    system.mount_application(CommerceApp())
    system.add_client()
    system.model.add(Component(ComponentKind.WIRELESS_NETWORKS,
                               "rogue-radio"))
    report = ModelChecker(system.model, figure="ec", system=system).run()
    assert report.result("EC-NO-WIRELESS").verdict is Verdict.FAIL


# -- inconclusive territory ----------------------------------------------------

def test_empty_model_is_inconclusive_not_crashing():
    model = SystemModel(name="empty")
    report = ModelChecker(model, figure="mc").run()
    assert report.result("MC-APP-HOSTED").verdict is Verdict.INCONCLUSIVE
    assert report.result("REACHABLE").verdict is Verdict.INCONCLUSIVE
    assert report.result("MC-COMPONENTS").verdict is Verdict.FAIL
    assert report.verdict is Verdict.FAIL


def test_bare_model_without_declared_kind_is_inconclusive():
    model = SystemModel(name="bare")
    report = ModelChecker(model, figure="mc").run()
    assert report.result("MC-MIDDLEWARE-COMPAT").verdict \
        is Verdict.INCONCLUSIVE


# -- verdict algebra and plumbing ---------------------------------------------

def test_verdict_aggregation():
    assert Verdict.aggregate([]) is Verdict.PASS
    assert Verdict.aggregate([Verdict.PASS, Verdict.PASS]) is Verdict.PASS
    assert Verdict.aggregate(
        [Verdict.PASS, Verdict.INCONCLUSIVE]) is Verdict.INCONCLUSIVE
    assert Verdict.aggregate(
        [Verdict.INCONCLUSIVE, Verdict.FAIL, Verdict.PASS]) is Verdict.FAIL


def test_figure_inference():
    mc = build_mc()
    assert ModelChecker(mc.model).figure == "mc"
    from repro.core import ECSystemBuilder

    ec = ECSystemBuilder().build()
    assert ModelChecker(ec.model).figure == "ec"


def test_claim_matrix_lookup():
    assert structural_claim("MC-FLOW").reference == "Figure 2"
    assert {c.claim_id for c in STRUCTURAL_CLAIMS} >= {
        "EC-COMPONENTS", "MC-COMPONENTS", "MC-MIDDLEWARE-COMPAT",
        "HOST-INTERNALS", "EDGES-RESOLVED", "REACHABLE",
    }
    with pytest.raises(ValueError):
        claims_for_figure("figure-3")
    with pytest.raises(KeyError):
        structural_claim("NO-SUCH-CLAIM")


def test_report_json_roundtrip():
    report = ModelChecker.for_system(build_mc()).run()
    payload = json.loads(report.render_json())
    assert payload["figure"] == "mc"
    assert payload["verdict"] == "pass"
    assert {r["claim_id"] for r in payload["results"]} == \
        {c.claim_id for c in claims_for_figure("mc")}
    for row in payload["results"]:
        assert set(row) == {"claim_id", "reference", "description",
                            "verdict", "evidence"}


def test_report_unknown_claim_raises():
    report = ModelChecker.for_system(build_mc()).run()
    with pytest.raises(KeyError):
        report.result("NO-SUCH-CLAIM")


# -- CLI -----------------------------------------------------------------------

def test_cli_check_text(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "reference builds: PASS" in out
    assert "MC-MIDDLEWARE-COMPAT" in out
    assert "Figure 2" in out


def test_cli_check_json(capsys):
    assert main(["check", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mc"]["verdict"] == "pass"
    assert payload["ec"]["verdict"] == "pass"
