"""Unit tests for Resource, Store and Channel primitives."""

import pytest

from repro.sim import Channel, Resource, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    granted = []

    def user(env, tag):
        req = res.request()
        yield req
        granted.append((tag, env.now))
        yield env.timeout(10)
        res.release(req)

    for tag in "abc":
        sim.spawn(user(sim, tag))
    sim.run()
    by_tag = dict(granted)
    assert by_tag["a"] == 0.0
    assert by_tag["b"] == 0.0
    assert by_tag["c"] == 10.0  # waited for a release


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(env, tag, hold):
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(hold)
        res.release(req)

    for tag in ["first", "second", "third"]:
        sim.spawn(user(sim, tag, hold=1))
    sim.run()
    assert order == ["first", "second", "third"]


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_counts_and_queue():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req1 = res.request()
    req2 = res.request()
    assert res.available == 0
    assert res.queue_length == 1
    assert req1.triggered and not req2.triggered
    res.release(req1)
    assert req2.triggered


def test_request_cancel_leaves_queue():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    waiting = res.request()
    waiting.cancel()
    assert res.queue_length == 0
    res.release(held)
    assert not waiting.triggered  # cancelled requests are never granted


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(3)
        yield store.put("packet")

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert got == [(3.0, "packet")]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)
    order = []

    def consumer(env):
        item = yield store.get()
        order.append(item)

    sim.spawn(consumer(sim))
    store.put("x")
    sim.run()
    assert order == ["x"]


def test_store_bounded_put_blocks_until_space():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer(env):
        yield store.put(1)
        times.append(("put1", env.now))
        yield store.put(2)
        times.append(("put2", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        times.append(("got", env.now, item))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert ("put1", 0.0) in times
    assert ("put2", 5.0) in times


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.try_put(i)
    got = []

    def consumer(env):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.spawn(consumer(sim))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_try_put_respects_capacity():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    assert not store.try_put("c")
    assert len(store) == 2


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.try_put("v")
    ok, item = store.try_get()
    assert ok and item == "v"


# ----------------------------------------------------------------- Channel
def test_channel_delivers_after_delay():
    sim = Simulator()
    chan = Channel(sim, delay=2.5)
    got = []

    def receiver(env):
        item = yield chan.recv()
        got.append((env.now, item))

    sim.spawn(receiver(sim))
    chan.send("msg")
    sim.run()
    assert got == [(2.5, "msg")]


def test_channel_preserves_order():
    sim = Simulator()
    chan = Channel(sim, delay=1.0)
    got = []

    def sender(env):
        for i in range(3):
            chan.send(i)
            yield env.timeout(0.1)

    def receiver(env):
        for _ in range(3):
            item = yield chan.recv()
            got.append(item)

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert got == [0, 1, 2]


def test_channel_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, delay=-1)
