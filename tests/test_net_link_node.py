"""Tests for links, nodes, routing and IP forwarding."""

import pytest

from repro.net import (
    IPAddress,
    Link,
    Network,
    Packet,
    Subnet,
    install_echo_responder,
    ping,
)
from repro.net.packet import PROTO_ICMP
from repro.sim import SeedBank, Simulator


def two_host_net(sim, **link_kwargs):
    net = Network(sim)
    a = net.add_node("a")
    b = net.add_node("b")
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), **link_kwargs)
    net.build_routes()
    return net, a, b


def test_direct_delivery():
    sim = Simulator()
    net, a, b = two_host_net(sim)
    got = []
    b.register_protocol("test", lambda n, p: got.append(p))
    pkt = Packet(src=a.primary_address, dst=b.primary_address,
                 proto="test", payload="hi", payload_size=10)
    a.send_ip(pkt)
    sim.run()
    assert len(got) == 1
    assert got[0].payload == "hi"


def test_serialization_plus_propagation_latency():
    sim = Simulator()
    # 1 Mbps, 10 ms propagation: 1000-byte packet -> 8 ms + 10 ms = 18 ms.
    net, a, b = two_host_net(sim, bandwidth_bps=1_000_000, delay=0.010)
    arrival = []
    b.register_protocol("test", lambda n, p: arrival.append(sim.now))
    a.send_ip(Packet(src=a.primary_address, dst=b.primary_address,
                     proto="test", payload_size=980))  # 980+20 hdr = 1000B
    sim.run()
    assert arrival[0] == pytest.approx(0.018, abs=1e-6)


def test_loopback_delivery():
    sim = Simulator()
    net, a, b = two_host_net(sim)
    got = []
    a.register_protocol("test", lambda n, p: got.append(p))
    a.send_ip(Packet(src=a.primary_address, dst=a.primary_address,
                     proto="test", payload="self"))
    sim.run()
    assert got and got[0].payload == "self"


def test_multi_hop_forwarding_through_router():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    r = net.add_node("r", forwarding=True)
    b = net.add_node("b")
    net.connect(a, r, Subnet.parse("10.0.1.0/24"))
    net.connect(r, b, Subnet.parse("10.0.2.0/24"))
    net.build_routes()
    got = []
    b.register_protocol("test", lambda n, p: got.append(p))
    a.send_ip(Packet(src=a.primary_address, dst=b.primary_address,
                     proto="test", payload="via router"))
    sim.run()
    assert got and got[0].hops == ["r", "b"]


def test_non_forwarding_node_drops_transit():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    h = net.add_node("h")  # host, not router
    b = net.add_node("b")
    net.connect(a, h, Subnet.parse("10.0.1.0/24"))
    net.connect(h, b, Subnet.parse("10.0.2.0/24"))
    net.build_routes()
    got = []
    b.register_protocol("test", lambda n, p: got.append(p))
    a.send_ip(Packet(src=a.primary_address, dst=b.primary_address, proto="test"))
    sim.run()
    assert not got
    assert h.stats.get("not_for_me_drops") == 1


def test_ttl_expiry_drops_packet():
    sim = Simulator()
    net = Network(sim)
    nodes = [net.add_node(f"n{i}", forwarding=True) for i in range(4)]
    for i in range(3):
        net.connect(nodes[i], nodes[i + 1],
                    Subnet.parse(f"10.0.{i}.0/24"))
    net.build_routes()
    got = []
    nodes[3].register_protocol("test", lambda n, p: got.append(p))
    pkt = Packet(src=nodes[0].primary_address, dst=nodes[3].primary_address,
                 proto="test", ttl=2)  # needs 2 forwarding hops => dies at n2
    nodes[0].send_ip(pkt)
    sim.run()
    assert not got
    assert sum(n.stats.get("ttl_drops") for n in nodes) == 1


def test_packet_born_dead_rejected():
    with pytest.raises(ValueError):
        Packet(src=IPAddress(1), dst=IPAddress(2), proto="t", ttl=0)


def test_link_loss_drops_packets():
    sim = Simulator()
    stream = SeedBank(7).stream("loss")
    net, a, b = two_host_net(sim, loss_rate=1.0, loss_stream=stream)
    got = []
    b.register_protocol("test", lambda n, p: got.append(p))
    a.send_ip(Packet(src=a.primary_address, dst=b.primary_address, proto="test"))
    sim.run()
    assert not got
    assert net.links[0].stats.get("loss_drops") == 1


def test_loss_requires_stream():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, loss_rate=0.1)


def test_link_down_blackholes():
    sim = Simulator()
    net, a, b = two_host_net(sim)
    got = []
    b.register_protocol("test", lambda n, p: got.append(p))
    net.links[0].take_down()
    a.send_ip(Packet(src=a.primary_address, dst=b.primary_address, proto="test"))
    sim.run()
    assert not got
    net.links[0].bring_up()
    a.send_ip(Packet(src=a.primary_address, dst=b.primary_address, proto="test"))
    sim.run()
    assert len(got) == 1


def test_queue_tail_drop():
    sim = Simulator()
    net, a, b = two_host_net(sim, bandwidth_bps=1000.0, queue_capacity=2)
    for _ in range(10):
        a.send_ip(Packet(src=a.primary_address, dst=b.primary_address,
                         proto="test", payload_size=100))
    sim.run()
    assert net.links[0].stats.get("queue_drops") > 0


def test_no_route_counted():
    sim = Simulator()
    net, a, b = two_host_net(sim)
    a.send_ip(Packet(src=a.primary_address,
                     dst=IPAddress.parse("172.16.0.1"), proto="test"))
    sim.run()
    assert a.stats.get("no_route_drops") == 1


def test_tunnel_encapsulation_round_trip():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    r = net.add_node("r", forwarding=True)
    b = net.add_node("b")
    net.connect(a, r, Subnet.parse("10.0.1.0/24"))
    net.connect(r, b, Subnet.parse("10.0.2.0/24"))
    net.build_routes()
    got = []
    b.register_protocol("test", lambda n, p: got.append(p))
    inner = Packet(src=a.primary_address, dst=b.primary_address,
                   proto="test", payload="tunneled")
    outer = inner.encapsulate(a.primary_address, b.primary_address)
    a.send_ip(outer)
    sim.run()
    assert got and got[0].payload == "tunneled"
    assert b.stats.get("decapsulated") == 1


def test_decapsulate_non_tunnel_rejected():
    pkt = Packet(src=IPAddress(1), dst=IPAddress(2), proto="test")
    with pytest.raises(ValueError):
        pkt.decapsulate()


def test_ping_round_trip():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    r = net.add_node("r", forwarding=True)
    b = net.add_node("b")
    net.connect(a, r, Subnet.parse("10.0.1.0/24"), delay=0.005)
    net.connect(r, b, Subnet.parse("10.0.2.0/24"), delay=0.005)
    net.build_routes()
    install_echo_responder(b)
    result = ping(sim, a, b.primary_address)
    sim.run()
    reply = result.value
    assert reply is not None
    assert reply.rtt >= 0.020  # 4 x 5 ms propagation
    assert "r" in reply.hops


def test_ping_timeout_returns_none():
    sim = Simulator()
    net, a, b = two_host_net(sim)
    # No echo responder installed on b.
    result = ping(sim, a, b.primary_address, timeout=1.0)
    sim.run()
    assert result.value is None


def test_duplicate_node_name_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_node("x")
    with pytest.raises(ValueError):
        net.add_node("x")


def test_find_node_by_address():
    sim = Simulator()
    net, a, b = two_host_net(sim)
    assert net.find_node_by_address(b.primary_address) is b
    assert net.find_node_by_address(IPAddress.parse("1.2.3.4")) is None
