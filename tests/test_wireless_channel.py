"""Tests for the radio channel model, standards registry and mobility."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SeedBank, Simulator
from repro.wireless import (
    CELLULAR_STANDARDS,
    WLAN_STANDARDS,
    ChannelModel,
    LinearPath,
    Mobile,
    Position,
    RandomWaypoint,
    cellular_standard,
    wlan_standard,
)


# ------------------------------------------------------------- standards
def test_all_table4_rows_present():
    assert set(WLAN_STANDARDS) == {
        "Bluetooth", "802.11b", "802.11a", "HyperLAN2".replace("y", "i"),
        "802.11g",
    }


def test_all_table5_rows_present():
    assert set(CELLULAR_STANDARDS) == {
        "AMPS", "TACS", "GSM", "TDMA", "CDMA", "GPRS", "EDGE",
        "CDMA2000", "WCDMA",
    }


def test_unknown_standard_helpful_error():
    with pytest.raises(KeyError, match="known"):
        wlan_standard("802.11n")
    with pytest.raises(KeyError, match="known"):
        cellular_standard("LTE")


def test_generation_taxonomy_matches_table5():
    assert cellular_standard("AMPS").generation == "1G"
    assert cellular_standard("GSM").generation == "2G"
    assert cellular_standard("GPRS").generation == "2.5G"
    assert cellular_standard("WCDMA").generation == "3G"
    assert cellular_standard("GSM").switching == "circuit"
    assert cellular_standard("GPRS").switching == "packet"
    assert not cellular_standard("AMPS").supports_data
    assert cellular_standard("EDGE").supports_data


def test_rate_ladder_top_equals_rated_max():
    for std in WLAN_STANDARDS.values():
        assert max(r for r, _ in std.rate_ladder) == std.max_rate_bps


# ---------------------------------------------------------------- channel
def test_path_loss_monotonic_in_distance():
    ch = ChannelModel()
    losses = [ch.path_loss_db(d, 2.4) for d in (1, 10, 50, 100, 500)]
    assert losses == sorted(losses)
    assert losses[0] < losses[-1]


def test_5ghz_attenuates_more_than_2_4ghz():
    ch = ChannelModel()
    assert ch.path_loss_db(50, 5.0) > ch.path_loss_db(50, 2.4)


def test_rate_degrades_with_distance():
    ch = ChannelModel()
    std = wlan_standard("802.11a")
    rates = [std.rate_at_snr(ch.snr_db(d, std)) for d in (2, 30, 60, 90, 200)]
    assert rates[0] == 54e6
    assert all(rates[i] >= rates[i + 1] for i in range(len(rates) - 1))
    assert rates[-1] == 0.0


def test_model_ranges_land_in_table4_windows():
    """The headline calibration: max usable range within the paper's column."""
    ch = ChannelModel()
    for std in WLAN_STANDARDS.values():
        low, high = std.typical_range_m
        measured = ch.max_range_m(std)
        assert low <= measured <= high * 1.1, (
            f"{std.name}: measured range {measured:.0f} m outside "
            f"[{low}, {high}] window"
        )


def test_budget_out_of_range():
    ch = ChannelModel()
    std = wlan_standard("Bluetooth")
    budget = ch.budget(Position(0, 0), Position(1000, 0), std)
    assert not budget.in_range
    assert budget.success_probability == 0.0
    assert not ch.frame_delivered(budget)


def test_budget_near_is_reliable():
    ch = ChannelModel()
    std = wlan_standard("802.11b")
    budget = ch.budget(Position(0, 0), Position(3, 0), std)
    assert budget.in_range
    assert budget.rate_bps == 11e6
    assert budget.success_probability > 0.99


def test_frame_delivery_deterministic_without_fading():
    ch = ChannelModel()
    std = wlan_standard("802.11b")
    near = ch.budget(Position(0, 0), Position(5, 0), std)
    assert ch.frame_delivered(near)


def test_frame_delivery_stochastic_with_fading():
    fading = SeedBank(1).stream("fade")
    ch = ChannelModel(fading_stream=fading)
    std = wlan_standard("802.11b")
    # Right at the lowest rung's edge the success probability is ~0.5.
    edge = ch.budget(Position(0, 0), Position(99, 0), std)
    outcomes = [ch.frame_delivered(edge) for _ in range(400)]
    successes = sum(outcomes)
    assert 100 < successes < 300


def test_bad_exponent_rejected():
    with pytest.raises(ValueError):
        ChannelModel(path_loss_exponent=0)


@given(st.floats(min_value=1, max_value=5000),
       st.floats(min_value=1.1, max_value=5000))
def test_snr_decreases_with_distance_property(d1, factor):
    ch = ChannelModel()
    std = wlan_standard("802.11g")
    assert ch.snr_db(d1 * factor, std) < ch.snr_db(d1, std)


# --------------------------------------------------------------- mobility
def test_position_distance():
    assert Position(0, 0).distance_to(Position(3, 4)) == 5.0


def test_position_toward_clamps_at_target():
    p = Position(0, 0)
    target = Position(10, 0)
    assert p.toward(target, 4).x == pytest.approx(4)
    assert p.toward(target, 15) == target
    assert target.toward(target, 5) == target


def test_mobile_move_fires_callbacks():
    m = Mobile(Position(0, 0))
    seen = []
    m.on_move.append(lambda p: seen.append(p))
    m.move_to(Position(1, 1))
    assert seen == [Position(1, 1)]


def test_linear_path_reaches_waypoints():
    sim = Simulator()
    m = Mobile(Position(0, 0))
    path = LinearPath(sim, m, [Position(10, 0), Position(10, 10)],
                      speed=2.0, tick=1.0)
    sim.run(until=30)
    assert m.position == Position(10, 10)
    assert path.done.triggered


def test_linear_path_speed_is_respected():
    sim = Simulator()
    m = Mobile(Position(0, 0))
    LinearPath(sim, m, [Position(100, 0)], speed=5.0, tick=1.0)
    sim.run(until=10)
    assert m.position.x == pytest.approx(50.0)


def test_linear_path_rejects_bad_params():
    sim = Simulator()
    m = Mobile(Position(0, 0))
    with pytest.raises(ValueError):
        LinearPath(sim, m, [], speed=0)
    with pytest.raises(ValueError):
        LinearPath(sim, m, [], speed=1, tick=0)


def test_random_waypoint_stays_in_area():
    sim = Simulator()
    m = Mobile(Position(50, 50))
    stream = SeedBank(11).stream("rwp")
    RandomWaypoint(sim, m, stream, width=100, height=100,
                   speed_range=(1, 5), pause_range=(0, 2))
    positions = []

    def sample(env):
        for _ in range(50):
            yield env.timeout(5)
            positions.append(m.position)

    sim.spawn(sample(sim))
    sim.run(until=250)
    assert positions
    for p in positions:
        assert 0 <= p.x <= 100 and 0 <= p.y <= 100
    # It actually moved.
    assert len({(round(p.x), round(p.y)) for p in positions}) > 3


def test_random_waypoint_stop():
    sim = Simulator()
    m = Mobile(Position(0, 0))
    stream = SeedBank(2).stream("rwp")
    model = RandomWaypoint(sim, m, stream, width=100, height=100)

    def stopper(env):
        yield env.timeout(10)
        model.stop()
        yield env.timeout(1)

    sim.spawn(stopper(sim))
    sim.run()  # drains shortly after stop() instead of roaming forever
    assert sim.now < 100


def test_random_waypoint_validates_area():
    sim = Simulator()
    m = Mobile(Position(0, 0))
    stream = SeedBank(0).stream("x")
    with pytest.raises(ValueError):
        RandomWaypoint(sim, m, stream, width=0, height=10)
    with pytest.raises(ValueError):
        RandomWaypoint(sim, m, stream, width=10, height=10,
                       speed_range=(0, 1))
