"""Tests for the sim-safety linter: every rule detects its violation,
stays quiet on clean code, and honours ``# repro: noqa[...]``."""

import json
import os
import textwrap

import pytest

from repro.__main__ import main
from repro.analysis import Finding, Linter, lint_paths
from repro.analysis.rules import ModuleInfo, RULE_REGISTRY, default_rules

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_rule(rule_id, source, module=None, path="fixture.py"):
    """Findings of one rule over one dedented source snippet."""
    info = ModuleInfo.parse(path, textwrap.dedent(source), module=module)
    report = Linter(default_rules(only=[rule_id])).lint_sources([info])
    return report


# -- wall-clock --------------------------------------------------------------

def test_wall_clock_detects_time_calls():
    report = run_rule("wall-clock", """\
        import time
        def measure():
            start = time.time()
            time.sleep(1)
            return time.perf_counter() - start
    """)
    assert [f.line for f in report.findings] == [3, 4, 5]
    assert all(f.rule_id == "wall-clock" for f in report.findings)


def test_wall_clock_detects_from_import_and_datetime():
    report = run_rule("wall-clock", """\
        from time import sleep
        from datetime import datetime
        def nap():
            sleep(2)
            return datetime.now()
    """)
    assert len(report.findings) == 2


def test_wall_clock_allows_kernel_and_virtual_time():
    report = run_rule("wall-clock", """\
        import time
        def kernel_tick():
            return time.time()
    """, module="repro.sim.kernel")
    assert report.findings == []
    clean = run_rule("wall-clock", """\
        def worker(env):
            yield env.timeout(5)
            return env.now
    """)
    assert clean.findings == []


def test_wall_clock_suppressed():
    report = run_rule("wall-clock", """\
        import time
        def bench():
            return time.time()  # repro: noqa[wall-clock] host-side bench
    """)
    assert report.findings == []
    assert report.suppressed == 1


# -- module-random ----------------------------------------------------------

def test_module_random_detects_import_forms():
    report = run_rule("module-random", """\
        import random
        from random import choice
    """)
    assert [f.line for f in report.findings] == [1, 2]


def test_module_random_allows_sim_random_and_streams():
    report = run_rule("module-random", "import random\n",
                      module="repro.sim.random")
    assert report.findings == []
    clean = run_rule("module-random", """\
        from repro.sim import SeedBank
        stream = SeedBank(0).stream("loss")
    """)
    assert clean.findings == []


def test_module_random_suppressed():
    report = run_rule(
        "module-random",
        "import random  # repro: noqa[module-random] fixture shuffling\n")
    assert report.findings == []
    assert report.suppressed == 1


# -- yield-event --------------------------------------------------------------

def test_yield_event_detects_constant_yields():
    report = run_rule("yield-event", """\
        def proc(env):
            yield 42
            yield None
            yield
    """)
    assert [f.line for f in report.findings] == [2, 3, 4]


def test_yield_event_ignores_non_process_and_event_yields():
    report = run_rule("yield-event", """\
        def numbers():
            yield 1
        def proc(sim):
            yield sim.timeout(1)
            def helper():
                yield 2
    """)
    assert report.findings == []


def test_yield_event_suppressed():
    report = run_rule("yield-event", """\
        def proc(env):
            yield 42  # repro: noqa[yield-event] malformed on purpose
    """)
    assert report.findings == []
    assert report.suppressed == 1


# -- bare-except / broad-except ------------------------------------------------

def test_bare_except_detected_and_clean():
    report = run_rule("bare-except", """\
        try:
            risky()
        except:
            pass
    """)
    assert [f.line for f in report.findings] == [3]
    clean = run_rule("bare-except", """\
        try:
            risky()
        except ValueError:
            pass
    """)
    assert clean.findings == []


def test_broad_except_detects_exception_and_tuple():
    report = run_rule("broad-except", """\
        try:
            risky()
        except Exception:
            pass
        try:
            risky()
        except (ValueError, BaseException):
            pass
    """)
    assert len(report.findings) == 2
    clean = run_rule("broad-except", """\
        try:
            risky()
        except (ValueError, KeyError):
            pass
    """)
    assert clean.findings == []


def test_broad_except_suppressed():
    report = run_rule("broad-except", """\
        try:
            risky()
        except Exception:  # repro: noqa[broad-except] fault barrier
            pass
    """)
    assert report.findings == []
    assert report.suppressed == 1


# -- mutable-default ----------------------------------------------------------

def test_mutable_default_detects_literals_and_calls():
    report = run_rule("mutable-default", """\
        def f(a, b=[], c={}, d=dict()):
            return a
    """)
    assert len(report.findings) == 3


def test_mutable_default_allows_none_and_tuples():
    report = run_rule("mutable-default", """\
        def f(a, b=None, c=(), d="x", e=0):
            return a
    """)
    assert report.findings == []


def test_mutable_default_suppressed():
    report = run_rule("mutable-default", """\
        def f(cache={}):  # repro: noqa[mutable-default] shared memo
            return cache
    """)
    assert report.findings == []
    assert report.suppressed == 1


# -- export-drift --------------------------------------------------------------

def test_export_drift_detects_phantom_and_missing():
    report = run_rule("export-drift", """\
        __all__ = ["exists", "phantom", "exists"]
        def exists():
            pass
        def unlisted():
            pass
    """)
    messages = [f.message for f in report.findings]
    assert any("phantom" in m for m in messages)
    assert any("twice" in m for m in messages)
    assert any("unlisted" in m for m in messages)


def test_export_drift_clean_and_no_all():
    clean = run_rule("export-drift", """\
        __all__ = ["public", "CONST"]
        CONST = 1
        def public():
            pass
        def _private():
            pass
    """)
    assert clean.findings == []
    no_all = run_rule("export-drift", "def anything():\n    pass\n")
    assert no_all.findings == []


def test_export_drift_suppressed():
    report = run_rule(
        "export-drift",
        '__all__ = ["ghost"]  # repro: noqa[export-drift] lazy attr\n')
    assert report.findings == []
    assert report.suppressed == 1


# -- import-cycle --------------------------------------------------------------

def _modules(**sources):
    return [ModuleInfo.parse(f"{name.replace('.', '/')}.py",
                             textwrap.dedent(src), module=name)
            for name, src in sources.items()]


def run_cycle_rule(infos):
    return Linter(default_rules(only=["import-cycle"])).lint_sources(infos)


def test_import_cycle_detected():
    report = run_cycle_rule(_modules(**{
        "repro.aa.one": "from repro.bb import two\n",
        "repro.bb.two": "import repro.aa.one\n",
    }))
    assert len(report.findings) == 1
    assert "repro.aa.one" in report.findings[0].message
    assert "repro.bb.two" in report.findings[0].message


def test_import_cycle_ignores_acyclic_and_type_checking():
    acyclic = run_cycle_rule(_modules(**{
        "repro.aa.one": "from repro.bb import two\n",
        "repro.bb.two": "import json\n",
    }))
    assert acyclic.findings == []
    guarded = run_cycle_rule(_modules(**{
        "repro.aa.one": textwrap.dedent("""\
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.bb import two
        """),
        "repro.bb.two": "import repro.aa.one\n",
    }))
    assert guarded.findings == []


def test_import_cycle_resolves_relative_imports():
    report = run_cycle_rule([
        ModuleInfo.parse("repro/aa/__init__.py",
                         "from .one import x\n", module="repro.aa"),
        ModuleInfo.parse("repro/aa/one.py",
                         "from . import helper\n", module="repro.aa.one"),
    ])
    assert len(report.findings) == 1


def test_import_cycle_suppressed():
    report = run_cycle_rule([
        ModuleInfo.parse(
            "repro/aa/one.py",
            "from repro.bb import two  # repro: noqa[import-cycle] legacy\n",
            module="repro.aa.one"),
        ModuleInfo.parse("repro/bb/two.py", "import repro.aa.one\n",
                         module="repro.bb.two"),
    ])
    assert report.findings == []
    assert report.suppressed == 1


# -- hot-queue-pop -----------------------------------------------------------

def test_hot_queue_pop_detects_front_of_list_ops():
    report = run_rule("hot-queue-pop", """\
        def drain(queue):
            head = queue.pop(0)
            queue.insert(0, head)
            return head
    """, module="repro.net.fixture")
    assert [f.line for f in report.findings] == [2, 3]
    assert all(f.rule_id == "hot-queue-pop" for f in report.findings)


def test_hot_queue_pop_allows_tail_ops_and_foreign_modules():
    clean = run_rule("hot-queue-pop", """\
        def drain(queue, table):
            last = queue.pop()
            removed = table.pop("key")
            queue.insert(2, last)
            return queue.popleft()
    """, module="repro.net.fixture")
    assert clean.findings == []
    # Outside the repro package the idiom is not our business.
    foreign = run_rule("hot-queue-pop", """\
        def drain(queue):
            return queue.pop(0)
    """, module="thirdparty.queue")
    assert foreign.findings == []


def test_hot_queue_pop_suppressed():
    report = run_rule("hot-queue-pop", """\
        def reorder(parts, package):
            parts.insert(0, package)  # repro: noqa[hot-queue-pop]
    """, module="repro.analysis.fixture")
    assert report.findings == []
    assert report.suppressed == 1


# -- set-iteration -----------------------------------------------------------

def test_set_iteration_flags_loops_and_conversions():
    report = run_rule("set-iteration", """\
        members = {"a", "b"}
        def walk():
            for m in members:
                print(m)
            ordered = list(members)
            joined = ",".join(members)
            combos = [m for m in members | {"c"}]
            return ordered, joined, combos
    """, module="repro.fake.walk")
    assert [f.line for f in report.findings] == [3, 5, 6, 7]
    assert all(f.rule_id == "set-iteration" for f in report.findings)


def test_set_iteration_allows_sorted_and_aggregates():
    report = run_rule("set-iteration", """\
        members = {"a", "b"}
        def walk():
            for m in sorted(members):
                print(m)
            return len(members), max(members), "a" in members
    """, module="repro.fake.walk")
    assert report.findings == []


def test_set_iteration_only_in_sim_facing_code():
    source = """\
        def walk():
            for m in {"a", "b"}:
                print(m)
    """
    foreign = run_rule("set-iteration", source, module="thirdparty.mod")
    assert foreign.findings == []
    tooling = run_rule("set-iteration", source,
                       module="repro.analysis.fixture")
    assert tooling.findings == []
    sim_facing = run_rule("set-iteration", source, module="repro.web.fake")
    assert len(sim_facing.findings) == 1


def test_set_iteration_suppressed():
    report = run_rule("set-iteration", """\
        def walk(members: set):
            return list(set(members))  # repro: noqa[set-iteration]
    """, module="repro.fake.walk")
    assert report.findings == []
    assert report.suppressed == 1


# -- stable output ordering ---------------------------------------------------

def test_findings_sorted_regardless_of_input_order():
    """Identical byte output however files and rules are discovered."""
    sources = [
        ModuleInfo.parse("zz.py", "import random\nimport time\n",
                         module="repro.fake.zz"),
        ModuleInfo.parse("aa.py", "import random\n",
                         module="repro.fake.aa"),
    ]
    forward = Linter().lint_sources(sources)
    reverse = Linter().lint_sources(list(reversed(sources)))
    assert forward.render_text() == reverse.render_text()
    keys = [(f.file, f.line, f.rule_id, f.message)
            for f in forward.findings]
    assert keys == sorted(keys)


def test_parse_errors_render_sorted(tmp_path):
    for name in ("zz_bad.py", "aa_bad.py"):
        (tmp_path / name).write_text("def broken(:\n")
    report = lint_paths([str(tmp_path)])
    assert len(report.parse_errors) == 2
    assert report.parse_errors == sorted(report.parse_errors)
    assert "aa_bad.py" in report.parse_errors[0]


# -- catalogue, suppression syntax, report plumbing ---------------------------

def test_catalogue_has_at_least_eight_rules():
    assert len(RULE_REGISTRY) >= 8
    assert set(RULE_REGISTRY) >= {
        "wall-clock", "module-random", "yield-event", "bare-except",
        "broad-except", "mutable-default", "export-drift", "import-cycle",
        "hot-queue-pop", "set-iteration",
    }


def test_bare_noqa_suppresses_every_rule():
    report = run_rule("bare-except", """\
        try:
            risky()
        except:  # repro: noqa
            pass
    """)
    assert report.findings == []
    assert report.suppressed == 1


def test_unrelated_noqa_does_not_suppress():
    report = run_rule("bare-except", """\
        try:
            risky()
        except:  # repro: noqa[wall-clock]
            pass
    """)
    assert len(report.findings) == 1


def test_unknown_rule_id_rejected():
    with pytest.raises(KeyError):
        default_rules(only=["no-such-rule"])


def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError):
        Finding("f.py", 1, "x", "fatal", "boom")


# -- JSON output and CLI -------------------------------------------------------

def test_json_report_schema(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    report = lint_paths([str(bad)])
    payload = json.loads(report.render_json())
    assert set(payload) == {"findings", "files_checked", "suppressed",
                            "parse_errors"}
    assert payload["files_checked"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {"file", "line", "rule_id", "severity", "message"}
    assert finding["rule_id"] == "module-random"
    assert finding["line"] == 1


def test_cli_lint_flags_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "seeded.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out


def test_cli_lint_clean_file_exits_zero(tmp_path, capsys):
    good = tmp_path / "clean.py"
    good.write_text("def f(env):\n    yield env.timeout(1)\n")
    assert main(["lint", str(good)]) == 0


def test_cli_lint_strict_fails_on_warning(tmp_path):
    drifty = tmp_path / "drift.py"
    drifty.write_text('__all__ = ["ghost"]\n')
    assert main(["lint", str(drifty)]) == 0
    assert main(["lint", str(drifty), "--strict"]) == 1


def test_cli_lint_json_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule_id"] == "module-random"


def test_repo_lints_clean_under_strict(capsys):
    """The acceptance gate: the repo passes its own linter."""
    targets = [os.path.join(REPO_ROOT, "src", "repro"),
               os.path.join(REPO_ROOT, "benchmarks"),
               os.path.join(REPO_ROOT, "examples")]
    assert all(os.path.isdir(t) for t in targets)
    assert main(["lint", "--strict", *targets]) == 0
