"""Tests for the TCP implementation (handshake, stream, loss recovery)."""

import pytest

from repro.net import Network, Subnet, TCPStack
from repro.sim import SeedBank, Simulator


def build_pair(sim, **link_kwargs):
    net = Network(sim)
    a = net.add_node("client")
    b = net.add_node("server")
    defaults = dict(bandwidth_bps=10_000_000, delay=0.005)
    defaults.update(link_kwargs)
    net.connect(a, b, Subnet.parse("10.0.0.0/24"), **defaults)
    net.build_routes()
    return net, a, b


def run_transfer(sim, net, client_node, server_node, payload: bytes,
                 mss: int = 1460):
    """Client connects and sends ``payload``; server echoes length."""
    tcp_c = TCPStack(client_node, mss=mss)
    tcp_s = TCPStack(server_node, mss=mss)
    listener = tcp_s.listen(80)
    received = bytearray()
    outcome = {}

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        outcome["server_done_at"] = env.now

    def client(env):
        conn = tcp_c.connect(server_node.primary_address, 80)
        yield conn.established_event
        outcome["established_at"] = env.now
        conn.send(payload)
        outcome["conn"] = conn

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    return received, outcome


def test_three_way_handshake():
    sim = Simulator()
    net, a, b = build_pair(sim)
    received, outcome = run_transfer(sim, net, a, b, b"x")
    sim.run(until=30)
    # SYN + SYN|ACK each take one RTT leg: established after >= 2 x 5 ms.
    assert outcome["established_at"] >= 0.010
    assert bytes(received) == b"x"


def test_small_transfer_integrity():
    sim = Simulator()
    net, a, b = build_pair(sim)
    payload = b"hello mobile commerce" * 10
    received, _ = run_transfer(sim, net, a, b, payload)
    sim.run(until=30)
    assert bytes(received) == payload


def test_large_transfer_segmentation():
    sim = Simulator()
    net, a, b = build_pair(sim)
    payload = bytes(range(256)) * 400  # 102,400 bytes, ~70 segments
    received, outcome = run_transfer(sim, net, a, b, payload)
    sim.run(until=60)
    assert bytes(received) == payload
    conn = outcome["conn"]
    assert conn.stats.get("segments_sent") >= len(payload) // 1460


def test_transfer_survives_loss():
    sim = Simulator()
    stream = SeedBank(3).stream("tcp-loss")
    net, a, b = build_pair(sim, loss_rate=0.05, loss_stream=stream)
    payload = b"Z" * 50_000
    received, outcome = run_transfer(sim, net, a, b, payload)
    sim.run(until=300)
    assert bytes(received) == payload
    conn = outcome["conn"]
    assert conn.stats.get("retransmitted_segments") > 0


def test_fast_retransmit_fires_on_single_drop():
    """One mid-stream drop with plenty of later segments => 3 dupacks."""
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    tcp_s = TCPStack(b)
    listener = tcp_s.listen(80)
    payload = b"Q" * 60_000
    received = bytearray()

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    holder = {}

    def client(env):
        conn = tcp_c.connect(b.primary_address, 80)
        holder["conn"] = conn
        yield conn.established_event
        conn.send(payload)

    # Drop exactly one data segment mid-flight using a one-shot tap on the
    # server node.
    dropped = {"done": False}

    def drop_one(packet, iface):
        seg = packet.payload
        if (not dropped["done"] and packet.proto == "tcp"
                and getattr(seg, "data", b"") and seg.seq > 20_000):
            dropped["done"] = True
            return True  # consume == drop
        return False

    b.rx_taps.append(drop_one)
    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=120)
    assert bytes(received) == payload
    conn = holder["conn"]
    assert conn.stats.get("fast_retransmits") >= 1
    assert conn.stats.get("timeouts") == 0


def test_rto_recovers_from_total_blackout():
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    tcp_s = TCPStack(b)
    listener = tcp_s.listen(80)
    payload = b"R" * 20_000
    received = bytearray()
    holder = {}

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    def client(env):
        conn = tcp_c.connect(b.primary_address, 80)
        holder["conn"] = conn
        yield conn.established_event
        conn.send(payload)

    def blackout(env):
        yield env.timeout(0.02)
        net.links[0].take_down()
        yield env.timeout(2.0)
        net.links[0].bring_up()

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.spawn(blackout(sim))
    sim.run(until=300)
    assert bytes(received) == payload
    assert holder["conn"].stats.get("timeouts") >= 1


def test_connection_close_handshake():
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    tcp_s = TCPStack(b)
    listener = tcp_s.listen(80)
    events = []

    def server(env):
        conn = yield listener.accept()
        chunk = yield conn.recv()
        events.append(("data", chunk))
        eof = yield conn.recv()
        events.append(("eof", eof))
        conn.close()

    def client(env):
        conn = tcp_c.connect(b.primary_address, 80)
        yield conn.established_event
        conn.send(b"bye")
        conn.close()
        yield conn.closed_event
        events.append(("client_closed", env.now))

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=60)
    assert ("data", b"bye") in events
    assert ("eof", b"") in events
    assert any(e[0] == "client_closed" for e in events)


def test_connect_to_closed_port_refused():
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    TCPStack(b)  # no listener
    conn = tcp_c.connect(b.primary_address, 9999)
    sim.run(until=5)
    assert not conn.established_event.triggered
    assert b.stats.get("tcp_conn_refused") >= 1


def test_bidirectional_streams():
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    tcp_s = TCPStack(b)
    listener = tcp_s.listen(80)
    transcript = []

    def server(env):
        conn = yield listener.accept()
        request = yield conn.recv_exactly(7)
        transcript.append(("server_got", request))
        conn.send(b"RESPONSE-BODY")

    def client(env):
        conn = tcp_c.connect(b.primary_address, 80)
        yield conn.established_event
        conn.send(b"GET /pg")
        reply = yield conn.recv_exactly(13)
        transcript.append(("client_got", reply))

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=60)
    assert ("server_got", b"GET /pg") in transcript
    assert ("client_got", b"RESPONSE-BODY") in transcript


def test_two_concurrent_connections_do_not_mix():
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    tcp_s = TCPStack(b)
    listener = tcp_s.listen(80)
    results = {}

    def server(env):
        while True:
            conn = yield listener.accept()
            env.spawn(echo(env, conn))

    def echo(env, conn):
        data = yield conn.recv_exactly(4)
        conn.send(data * 2)

    def client(env, tag):
        conn = tcp_c.connect(b.primary_address, 80)
        yield conn.established_event
        conn.send(tag)
        reply = yield conn.recv_exactly(8)
        results[tag] = reply

    sim.spawn(server(sim))
    sim.spawn(client(sim, b"AAAA"))
    sim.spawn(client(sim, b"BBBB"))
    sim.run(until=60)
    assert results[b"AAAA"] == b"AAAAAAAA"
    assert results[b"BBBB"] == b"BBBBBBBB"


def test_cwnd_grows_during_slow_start():
    sim = Simulator()
    net, a, b = build_pair(sim)
    received, outcome = run_transfer(sim, net, a, b, b"S" * 100_000)
    sim.run(until=60)
    conn = outcome["conn"]
    assert conn.cwnd > 2 * conn.mss  # grew beyond initial window


def test_send_on_closed_connection_rejected():
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    conn = tcp_c.connect(b.primary_address, 80)
    conn.state = "CLOSED"
    with pytest.raises(RuntimeError):
        conn.send(b"nope")


def test_mss_respected():
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a, mss=256)
    tcp_s = TCPStack(b, mss=256)
    listener = tcp_s.listen(80)
    sizes = []

    def watch(packet, iface):
        seg = packet.payload
        if packet.proto == "tcp" and getattr(seg, "data", b""):
            sizes.append(len(seg.data))
        return False

    b.rx_taps.append(watch)
    received = bytearray()

    def server(env):
        conn = yield listener.accept()
        while len(received) < 10_000:
            chunk = yield conn.recv()
            received.extend(chunk)

    def client(env):
        conn = tcp_c.connect(b.primary_address, 80, mss=256)
        yield conn.established_event
        conn.send(b"m" * 10_000)

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=60)
    assert sizes and max(sizes) <= 256


def test_link_flap_mid_transfer_recovers_with_retransmissions():
    """Repeated short outages mid-transfer: the connection survives each
    flap via RTO + retransmission, the payload arrives intact, and the
    stats counters show the outage happened (timeouts fired, segments
    were retransmitted)."""
    sim = Simulator()
    net, a, b = build_pair(sim)
    tcp_c = TCPStack(a)
    tcp_s = TCPStack(b)
    listener = tcp_s.listen(80)
    payload = b"F" * 60_000
    received = bytearray()
    holder = {}

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    def client(env):
        conn = tcp_c.connect(b.primary_address, 80)
        holder["conn"] = conn
        yield conn.established_event
        conn.send(payload)

    def flapper(env):
        # Two flaps while segments are in flight.
        for start, length in ((0.03, 1.0), (2.5, 0.5)):
            yield env.timeout(max(0.0, start - env.now))
            net.links[0].take_down()
            yield env.timeout(length)
            net.links[0].bring_up()

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.spawn(flapper(sim))
    sim.run(until=240)

    assert bytes(received) == payload
    conn = holder["conn"]
    assert conn.stats.get("timeouts") >= 1, \
        "outage must force at least one RTO"
    assert conn.stats.get("retransmitted_segments") >= 1, \
        "recovery must resend lost segments"
