"""Tests for the three wireless TCP enhancements (paper §5.2).

Topology for all tests::

    fixed host ---(wired: fast, clean)--- base station ---(wireless: lossy)--- mobile
"""

import pytest

from repro.net import Network, Subnet, TCPStack
from repro.net.mobile import HandoffNotifier, SnoopAgent, SplitRelay
from repro.sim import SeedBank, Simulator

WIRED = dict(bandwidth_bps=10_000_000, delay=0.010)


def build_world(sim, wireless_loss=0.0, seed=1):
    net = Network(sim)
    fixed = net.add_node("fixed")
    base = net.add_node("base", forwarding=True)
    mobile = net.add_node("mobile")
    net.connect(fixed, base, Subnet.parse("10.0.1.0/24"), **WIRED)
    stream = SeedBank(seed).stream("wireless") if wireless_loss else None
    net.connect(mobile, base, Subnet.parse("10.0.2.0/24"),
                bandwidth_bps=2_000_000, delay=0.004,
                loss_rate=wireless_loss, loss_stream=stream)
    net.build_routes()
    return net, fixed, base, mobile


def fixed_to_mobile_transfer(sim, fixed, mobile, payload, mss=512,
                             server_port=80):
    """Fixed host sends ``payload`` to the mobile over one connection."""
    tcp_f = TCPStack(fixed, mss=mss)
    tcp_m = TCPStack(mobile, mss=mss)
    listener = tcp_m.listen(server_port)
    received = bytearray()
    out = {"received": received}

    def mobile_side(env):
        conn = yield listener.accept()
        out["mobile_conn"] = conn
        while len(received) < len(payload):
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        out["done_at"] = env.now

    def fixed_side(env):
        conn = tcp_f.connect(mobile.primary_address, server_port, mss=mss)
        out["fixed_conn"] = conn
        yield conn.established_event
        conn.send(payload)

    sim.spawn(mobile_side(sim))
    sim.spawn(fixed_side(sim))
    return out


# ------------------------------------------------------------------ snoop
def test_snoop_shields_fixed_sender_from_wireless_loss():
    payload = b"S" * 60_000
    # Baseline: plain TCP over 8% wireless loss.
    sim1 = Simulator()
    net1, fixed1, base1, mobile1 = build_world(sim1, wireless_loss=0.08)
    out1 = fixed_to_mobile_transfer(sim1, fixed1, mobile1, payload)
    sim1.run(until=600)
    assert bytes(out1["received"]) == payload

    # Snoop agent on the base station, same seed.
    sim2 = Simulator()
    net2, fixed2, base2, mobile2 = build_world(sim2, wireless_loss=0.08)
    snoop = SnoopAgent(base2, {mobile2.primary_address})
    out2 = fixed_to_mobile_transfer(sim2, fixed2, mobile2, payload)
    sim2.run(until=600)
    assert bytes(out2["received"]) == payload

    assert snoop.stats.get("local_retransmissions") > 0
    assert snoop.stats.get("suppressed_dupacks") > 0
    # The fixed sender recovers less itself: snoop repairs losses locally.
    retrans_plain = out1["fixed_conn"].stats.get("retransmitted_segments")
    retrans_snoop = out2["fixed_conn"].stats.get("retransmitted_segments")
    assert retrans_snoop < retrans_plain
    loss_events_plain = (out1["fixed_conn"].stats.get("fast_retransmits")
                         + out1["fixed_conn"].stats.get("timeouts"))
    loss_events_snoop = (out2["fixed_conn"].stats.get("fast_retransmits")
                         + out2["fixed_conn"].stats.get("timeouts"))
    assert loss_events_snoop <= loss_events_plain
    # And the transfer is not slower.
    assert out2["done_at"] <= out1["done_at"] * 1.25


def test_snoop_transparent_on_clean_link():
    payload = b"C" * 30_000
    sim = Simulator()
    net, fixed, base, mobile = build_world(sim, wireless_loss=0.0)
    snoop = SnoopAgent(base, {mobile.primary_address})
    out = fixed_to_mobile_transfer(sim, fixed, mobile, payload)
    sim.run(until=120)
    assert bytes(out["received"]) == payload
    assert snoop.stats.get("local_retransmissions") == 0


def test_snoop_cache_cleaned_by_new_acks():
    payload = b"K" * 20_000
    sim = Simulator()
    net, fixed, base, mobile = build_world(sim)
    snoop = SnoopAgent(base, {mobile.primary_address})
    out = fixed_to_mobile_transfer(sim, fixed, mobile, payload)
    sim.run(until=120)
    assert bytes(out["received"]) == payload
    total_cached = sum(len(f.cache) for f in snoop.flows.values())
    assert total_cached == 0  # everything acknowledged and purged


def test_snoop_ignores_non_mobile_flows():
    payload = b"N" * 10_000
    sim = Simulator()
    net, fixed, base, mobile = build_world(sim)
    snoop = SnoopAgent(base, set())  # knows about no mobiles
    out = fixed_to_mobile_transfer(sim, fixed, mobile, payload)
    sim.run(until=120)
    assert bytes(out["received"]) == payload
    assert snoop.stats.get("cached_segments") == 0


# ------------------------------------------------------------------ split
def test_split_relay_end_to_end():
    sim = Simulator()
    net, fixed, base, mobile = build_world(sim)
    tcp_f = TCPStack(fixed)
    server_listener = tcp_f.listen(80)
    relay = SplitRelay(base, listen_port=8080,
                       target_address=fixed.primary_address, target_port=80)
    payload = b"HTTP/1.0 200 OK\r\n\r\n" + b"B" * 30_000
    received = bytearray()

    def origin_server(env):
        conn = yield server_listener.accept()
        request = yield conn.recv_exactly(3)
        assert request == b"GET"
        conn.send(payload)

    def mobile_client(env):
        tcp_m = TCPStack(mobile, mss=512)
        conn = tcp_m.connect(base.primary_address, 8080, mss=512)
        yield conn.established_event
        conn.send(b"GET")
        while len(received) < len(payload):
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    sim.spawn(origin_server(sim))
    sim.spawn(mobile_client(sim))
    sim.run(until=300)
    assert bytes(received) == payload
    assert relay.stats.get("sessions") == 1
    assert relay.stats.get("bytes_down") == len(payload)


def test_split_isolates_wired_sender_from_wireless_loss():
    payload = b"W" * 50_000

    def run(with_loss_seed):
        sim = Simulator()
        net, fixed, base, mobile = build_world(
            sim, wireless_loss=0.08, seed=with_loss_seed)
        tcp_f = TCPStack(fixed)
        listener = tcp_f.listen(80)
        SplitRelay(base, 8080, fixed.primary_address, 80)
        received = bytearray()
        conns = {}

        def origin(env):
            conn = yield listener.accept()
            conns["wired"] = conn
            _ = yield conn.recv_exactly(3)
            conn.send(payload)

        def client(env):
            tcp_m = TCPStack(mobile, mss=512)
            conn = tcp_m.connect(base.primary_address, 8080, mss=512)
            yield conn.established_event
            conn.send(b"GET")
            while len(received) < len(payload):
                chunk = yield conn.recv()
                if chunk == b"":
                    break
                received.extend(chunk)

        sim.spawn(origin(sim))
        sim.spawn(client(sim))
        sim.run(until=600)
        return received, conns

    received, conns = run(5)
    assert bytes(received) == payload
    wired = conns["wired"]
    # The wired half never saw the wireless losses.
    assert wired.stats.get("timeouts") == 0
    assert wired.stats.get("fast_retransmits") == 0


def test_split_sessions_are_independent():
    sim = Simulator()
    net, fixed, base, mobile = build_world(sim)
    tcp_f = TCPStack(fixed)
    listener = tcp_f.listen(80)
    relay = SplitRelay(base, 8080, fixed.primary_address, 80)
    tcp_m = TCPStack(mobile, mss=512)
    replies = {}

    def origin(env):
        while True:
            conn = yield listener.accept()
            env.spawn(echo(env, conn))

    def echo(env, conn):
        tag = yield conn.recv_exactly(1)
        conn.send(tag * 5)

    def client(env, tag):
        conn = tcp_m.connect(base.primary_address, 8080, mss=512)
        yield conn.established_event
        conn.send(tag)
        reply = yield conn.recv_exactly(5)
        replies[tag] = reply

    sim.spawn(origin(sim))
    sim.spawn(client(sim, b"a"))
    sim.spawn(client(sim, b"b"))
    sim.run(until=120)
    assert replies[b"a"] == b"aaaaa"
    assert replies[b"b"] == b"bbbbb"
    assert relay.stats.get("sessions") == 2


# ----------------------------------------------------------------- freeze
def test_handoff_notifier_triggers_fast_resume():
    """After a blackout handoff, signalling beats waiting for the RTO."""

    def run(signal: bool):
        sim = Simulator()
        net, fixed, base, mobile = build_world(sim)
        payload = b"F" * 40_000
        out = fixed_to_mobile_transfer(sim, fixed, mobile, payload)
        notifier = HandoffNotifier()
        wireless = net.links[1]

        def handoff(env):
            yield env.timeout(0.3)
            wireless.take_down()
            yield env.timeout(1.5)  # long enough for RTO backoff
            wireless.bring_up()
            if signal and "mobile_conn" in out:
                notifier.track(out["mobile_conn"])
                notifier.handoff_complete()

        sim.spawn(handoff(sim))
        sim.run(until=600)
        assert bytes(out["received"]) == payload
        return out["done_at"]

    t_signal = run(signal=True)
    t_plain = run(signal=False)
    assert t_signal < t_plain


def test_notifier_forgets_closed_connections():
    sim = Simulator()
    net, fixed, base, mobile = build_world(sim)
    out = fixed_to_mobile_transfer(sim, fixed, mobile, b"x" * 100)
    sim.run(until=60)
    conn = out["mobile_conn"]
    conn.state = "CLOSED"
    notifier = HandoffNotifier()
    notifier.track(conn)
    notifier.handoff_complete()
    assert notifier.stats.get("signals_sent") == 0


def test_notifier_track_idempotent():
    notifier = HandoffNotifier()

    class FakeConn:
        state = "ESTABLISHED"
        calls = 0

        def signal_handoff_complete(self):
            FakeConn.calls += 1

    conn = FakeConn()
    notifier.track(conn)
    notifier.track(conn)
    notifier.handoff_complete()
    assert FakeConn.calls == 1
