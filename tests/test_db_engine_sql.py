"""Tests for the storage engine, SQL parser and query executor."""

import pytest
from hypothesis import given, strategies as st

from repro.db import (
    Column,
    Database,
    INTEGER,
    IntegrityError,
    REAL,
    SchemaError,
    SQLSyntaxError,
    TEXT,
    execute,
    parse,
)
from repro.db.query import QueryError
from repro.db.sql import Comparison, Insert, Literal, Param, Select


def sample_db():
    db = Database()
    execute(db, "CREATE TABLE items (id INTEGER PRIMARY KEY, "
                "name TEXT NOT NULL, price REAL, stock INTEGER)")
    execute(db, "INSERT INTO items (id, name, price, stock) VALUES "
                "(1, 'phone', 199.0, 10), (2, 'case', 9.5, 100), "
                "(3, 'charger', 25.0, 0)")
    return db


# ----------------------------------------------------------------- engine
def test_create_and_insert():
    db = sample_db()
    assert len(db.table("items")) == 3


def test_duplicate_table_rejected():
    db = sample_db()
    with pytest.raises(SchemaError):
        execute(db, "CREATE TABLE items (id INTEGER)")
    execute(db, "CREATE TABLE IF NOT EXISTS items (id INTEGER)")  # no error


def test_primary_key_uniqueness():
    db = sample_db()
    with pytest.raises(IntegrityError):
        execute(db, "INSERT INTO items (id, name) VALUES (1, 'dup')")


def test_not_null_enforced():
    db = sample_db()
    with pytest.raises(IntegrityError):
        execute(db, "INSERT INTO items (id, price) VALUES (9, 1.0)")


def test_type_coercion_and_rejection():
    db = Database()
    execute(db, "CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
    execute(db, "INSERT INTO t (a, b, c) VALUES (5, 5, 'x')")
    row = next(iter(execute(db, "SELECT * FROM t")))
    assert isinstance(row["b"], float)
    with pytest.raises(IntegrityError):
        execute(db, "INSERT INTO t (a, b, c) VALUES ('notanumber', 1.0, 'x')")


def test_unknown_column_rejected():
    db = sample_db()
    with pytest.raises(SchemaError):
        execute(db, "INSERT INTO items (id, bogus) VALUES (9, 1)")
    with pytest.raises(SchemaError):
        execute(db, "UPDATE items SET bogus = 1")


def test_unknown_table_rejected():
    db = Database()
    with pytest.raises(SchemaError):
        execute(db, "SELECT * FROM ghosts")


# ----------------------------------------------------------------- parser
def test_parse_select_structure():
    stmt = parse("SELECT id, name FROM items WHERE price > 10 "
                 "ORDER BY price DESC LIMIT 5")
    assert isinstance(stmt, Select)
    assert stmt.table == "items"
    assert [c.name for c in stmt.columns] == ["id", "name"]
    assert stmt.order_by.descending
    assert stmt.limit == 5


def test_parse_handles_quoted_strings():
    stmt = parse("INSERT INTO t (a) VALUES ('it''s here')")
    assert isinstance(stmt, Insert)
    assert stmt.rows[0][0] == Literal("it's here")


def test_parse_params_numbered_in_order():
    stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
    comparisons = stmt.where.items
    assert comparisons[0].right == Param(0)
    assert comparisons[1].right == Param(1)


def test_parse_negative_numbers():
    stmt = parse("INSERT INTO t (a) VALUES (-5)")
    assert stmt.rows[0][0] == Literal(-5)


@pytest.mark.parametrize("bad", [
    "",
    "SELEKT * FROM t",
    "SELECT * FROM",
    "INSERT INTO t VALUES (1)",
    "SELECT * FROM t WHERE",
    "CREATE TABLE t (a WIBBLE)",
    "INSERT INTO t (a, b) VALUES (1)",
    "SELECT * FROM t; DROP TABLE t",
    "SELECT * FROM t WHERE a = 'unterminated",
])
def test_parse_rejects_malformed(bad):
    with pytest.raises(SQLSyntaxError):
        parse(bad)


def test_parse_parenthesised_boolean_logic():
    stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND NOT c = 3")
    assert stmt.where.op == "AND"


# --------------------------------------------------------------- executor
def test_select_where_and_order():
    db = sample_db()
    result = execute(db, "SELECT name FROM items WHERE price < 100 "
                         "ORDER BY price")
    assert [r["name"] for r in result] == ["case", "charger"]


def test_select_star_returns_all_columns():
    db = sample_db()
    rows = list(execute(db, "SELECT * FROM items WHERE id = 2"))
    assert rows[0] == {"id": 2, "name": "case", "price": 9.5, "stock": 100}


def test_select_with_params():
    db = sample_db()
    result = execute(db, "SELECT name FROM items WHERE id = ?", (3,))
    assert result.rows == [{"name": "charger"}]


def test_param_count_mismatch():
    db = sample_db()
    with pytest.raises(QueryError):
        execute(db, "SELECT * FROM items WHERE id = ?")


def test_update_and_rowcount():
    db = sample_db()
    result = execute(db, "UPDATE items SET stock = 5 WHERE stock = 0")
    assert result.rowcount == 1
    check = execute(db, "SELECT stock FROM items WHERE id = 3")
    assert check.rows == [{"stock": 5}]


def test_delete_and_rowcount():
    db = sample_db()
    result = execute(db, "DELETE FROM items WHERE price > 20")
    assert result.rowcount == 2
    assert len(db.table("items")) == 1


def test_pk_lookup_uses_index():
    db = sample_db()
    result = execute(db, "SELECT * FROM items WHERE id = 1")
    assert result.access_path == "index(items.id)"


def test_secondary_index_used_after_create_index():
    db = sample_db()
    before = execute(db, "SELECT * FROM items WHERE name = 'case'")
    assert before.access_path == "scan(items)"
    execute(db, "CREATE INDEX ON items (name)")
    after = execute(db, "SELECT * FROM items WHERE name = 'case'")
    assert after.access_path == "index(items.name)"
    assert after.rows == before.rows


def test_index_not_used_under_or():
    db = sample_db()
    result = execute(db, "SELECT * FROM items WHERE id = 1 OR price < 10")
    assert result.access_path == "scan(items)"
    assert len(result) == 2


def test_index_stays_consistent_after_update_delete():
    db = sample_db()
    execute(db, "CREATE INDEX ON items (stock)")
    execute(db, "UPDATE items SET stock = 77 WHERE id = 2")
    assert execute(db, "SELECT id FROM items WHERE stock = 77").rows == \
        [{"id": 2}]
    assert execute(db, "SELECT id FROM items WHERE stock = 100").rows == []
    execute(db, "DELETE FROM items WHERE id = 2")
    assert execute(db, "SELECT id FROM items WHERE stock = 77").rows == []


def test_join_two_tables():
    db = sample_db()
    execute(db, "CREATE TABLE orders (oid INTEGER PRIMARY KEY, "
                "item_id INTEGER, qty INTEGER)")
    execute(db, "INSERT INTO orders (oid, item_id, qty) VALUES "
                "(100, 1, 2), (101, 3, 1), (102, 1, 5)")
    result = execute(
        db,
        "SELECT oid, name FROM orders JOIN items ON orders.item_id = items.id "
        "WHERE items.name = 'phone' ORDER BY oid"
    )
    assert result.rows == [{"oid": 100, "name": "phone"},
                           {"oid": 102, "name": "phone"}]
    assert "index-join(items.id)" in result.access_path


def test_join_without_index_still_works():
    db = sample_db()
    execute(db, "CREATE TABLE tags (label TEXT, item_name TEXT)")
    execute(db, "INSERT INTO tags (label, item_name) VALUES "
                "('sale', 'case'), ('new', 'phone')")
    result = execute(
        db,
        "SELECT label FROM items JOIN tags ON tags.item_name = items.name "
        "ORDER BY label"
    )
    assert [r["label"] for r in result] == ["new", "sale"]
    assert "nested-loop(tags)" in result.access_path


def test_null_comparisons():
    db = Database()
    execute(db, "CREATE TABLE t (a INTEGER, b TEXT)")
    execute(db, "INSERT INTO t (a, b) VALUES (1, NULL), (2, 'x')")
    assert len(execute(db, "SELECT * FROM t WHERE b = NULL")) == 1
    assert len(execute(db, "SELECT * FROM t WHERE b != NULL")) == 1
    assert len(execute(db, "SELECT * FROM t WHERE b > 'a'")) == 1


def test_order_by_with_nulls_sorts_last():
    db = Database()
    execute(db, "CREATE TABLE t (a INTEGER)")
    execute(db, "INSERT INTO t (a) VALUES (3), (NULL), (1)")
    result = execute(db, "SELECT a FROM t ORDER BY a")
    assert [r["a"] for r in result] == [1, 3, None]


def test_incomparable_types_raise():
    db = Database()
    execute(db, "CREATE TABLE t (a INTEGER, b TEXT)")
    execute(db, "INSERT INTO t (a, b) VALUES (1, 'x')")
    with pytest.raises(QueryError):
        execute(db, "SELECT * FROM t WHERE a > 'text'")


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**6),
              st.text(alphabet=st.characters(
                  blacklist_characters="'\\", blacklist_categories=("Cs",)),
                  max_size=20)),
    max_size=30, unique_by=lambda t: t[0]))
def test_roundtrip_insert_select_property(rows):
    """Everything inserted with params comes back byte-identical."""
    db = Database()
    execute(db, "CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    for key, value in rows:
        execute(db, "INSERT INTO t (k, v) VALUES (?, ?)", (key, value))
    result = execute(db, "SELECT * FROM t ORDER BY k")
    assert [(r["k"], r["v"]) for r in result] == sorted(rows)


@given(st.integers(min_value=-10**9, max_value=10**9))
def test_parse_literal_integers_property(value):
    stmt = parse(f"INSERT INTO t (a) VALUES ({value})")
    assert stmt.rows[0][0] == Literal(value)


# ------------------------------------------------------------- arithmetic
def test_arithmetic_in_set_clause_atomic_decrement():
    db = sample_db()
    result = execute(db, "UPDATE items SET stock = stock - ? "
                         "WHERE id = ? AND stock >= ?", (4, 1, 4))
    assert result.rowcount == 1
    assert execute(db, "SELECT stock FROM items WHERE id = 1"
                   ).rows[0]["stock"] == 6


def test_arithmetic_guard_prevents_overdraw():
    db = sample_db()
    result = execute(db, "UPDATE items SET stock = stock - 1 "
                         "WHERE id = 3 AND stock > 0")
    assert result.rowcount == 0  # charger stock is 0
    assert execute(db, "SELECT stock FROM items WHERE id = 3"
                   ).rows[0]["stock"] == 0


def test_arithmetic_in_where_and_select():
    db = sample_db()
    rows = execute(db, "SELECT name FROM items WHERE price * 2 >= 50 "
                       "ORDER BY name").rows
    assert [r["name"] for r in rows] == ["charger", "phone"]
    rows = execute(db, "SELECT * FROM items WHERE stock = 99 + 1").rows
    assert rows[0]["name"] == "case"


def test_arithmetic_precedence():
    db = Database()
    execute(db, "CREATE TABLE t (a INTEGER)")
    execute(db, "INSERT INTO t (a) VALUES (10)")
    # 2 + 3 * 4 = 14, not 20.
    assert execute(db, "SELECT * FROM t WHERE a = 2 + 3 * 4 - 4").rowcount \
        == 1


def test_arithmetic_with_null_yields_no_match():
    db = Database()
    execute(db, "CREATE TABLE t (a INTEGER, b INTEGER)")
    execute(db, "INSERT INTO t (a, b) VALUES (1, NULL)")
    assert execute(db, "SELECT * FROM t WHERE b + 1 = 2").rowcount == 0


def test_arithmetic_type_error():
    db = Database()
    execute(db, "CREATE TABLE t (a INTEGER, b TEXT)")
    execute(db, "INSERT INTO t (a, b) VALUES (1, 'x')")
    with pytest.raises(QueryError):
        execute(db, "SELECT * FROM t WHERE b - 1 = 0")
