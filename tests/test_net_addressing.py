"""Tests for IP addressing, subnets and allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.net import AddressAllocator, IPAddress, Subnet


def test_parse_and_render_round_trip():
    addr = IPAddress.parse("192.168.1.10")
    assert str(addr) == "192.168.1.10"
    assert addr.value == (192 << 24) | (168 << 16) | (1 << 8) | 10


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"])
def test_parse_rejects_malformed(bad):
    with pytest.raises(ValueError):
        IPAddress.parse(bad)


def test_address_range_enforced():
    with pytest.raises(ValueError):
        IPAddress(-1)
    with pytest.raises(ValueError):
        IPAddress(2**32)


def test_addresses_are_ordered_and_hashable():
    a = IPAddress.parse("10.0.0.1")
    b = IPAddress.parse("10.0.0.2")
    assert a < b
    assert len({a, b, IPAddress.parse("10.0.0.1")}) == 2


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_parse_str_round_trip_property(value):
    addr = IPAddress(value)
    assert IPAddress.parse(str(addr)) == addr


def test_subnet_contains():
    net = Subnet.parse("10.1.0.0/16")
    assert net.contains(IPAddress.parse("10.1.255.255"))
    assert not net.contains(IPAddress.parse("10.2.0.0"))


def test_subnet_rejects_host_bits():
    with pytest.raises(ValueError):
        Subnet(IPAddress.parse("10.1.0.1"), 16)


def test_subnet_rejects_bad_prefix():
    with pytest.raises(ValueError):
        Subnet(IPAddress.parse("10.0.0.0"), 33)


def test_subnet_parse_requires_prefix():
    with pytest.raises(ValueError):
        Subnet.parse("10.0.0.0")


def test_subnet_hosts_skips_network_and_broadcast():
    net = Subnet.parse("192.168.0.0/30")
    hosts = list(net.hosts())
    assert [str(h) for h in hosts] == ["192.168.0.1", "192.168.0.2"]


def test_subnet_slash_31_uses_both():
    net = Subnet.parse("192.168.0.0/31")
    assert len(list(net.hosts())) == 2


def test_zero_prefix_contains_everything():
    net = Subnet.parse("0.0.0.0/0")
    assert net.contains(IPAddress.parse("255.255.255.255"))
    assert net.mask == 0


def test_allocator_unique_addresses():
    alloc = AddressAllocator(Subnet.parse("10.0.0.0/29"))
    seen = {alloc.allocate() for _ in range(6)}
    assert len(seen) == 6
    with pytest.raises(RuntimeError):
        alloc.allocate()


def test_allocator_reserve_and_release():
    net = Subnet.parse("10.0.0.0/30")
    alloc = AddressAllocator(net)
    first = IPAddress.parse("10.0.0.1")
    alloc.reserve(first)
    assert alloc.allocate() == IPAddress.parse("10.0.0.2")
    with pytest.raises(ValueError):
        alloc.reserve(IPAddress.parse("192.168.0.1"))


@given(st.integers(min_value=0, max_value=32))
def test_subnet_size_property(prefix):
    base = IPAddress(0)
    net = Subnet(base, prefix)
    assert net.size == 2 ** (32 - prefix)
    assert net.contains(IPAddress(net.size - 1))
