"""Unit tests for repro.resilience: retry, breaker, shedding, failover."""

import pytest

from repro.core import MCSystemBuilder, TransactionEngine
from repro.middleware.base import MiddlewareResponse, MiddlewareSession
from repro.net import Network, Subnet
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RequestTimeout,
    ResilienceConfig,
    ResilientSession,
    RetryPolicy,
)
from repro.sim import SeedBank, Simulator
from repro.web import WebServer
from repro.web.http import HTTPResponse
from repro.web.client import HTTPClient


# ------------------------------------------------------------- RetryPolicy
def test_retry_backoff_exponential_and_capped():
    policy = RetryPolicy(max_attempts=5, base_delay=0.5, multiplier=2.0,
                         max_delay=3.0, jitter=0.0)
    assert policy.backoff(1) == 0.5
    assert policy.backoff(2) == 1.0
    assert policy.backoff(3) == 2.0
    assert policy.backoff(4) == 3.0  # capped
    assert policy.backoff(5) == 3.0


def test_retry_jitter_is_seeded_and_bounded():
    a = RetryPolicy(jitter=0.2, stream=SeedBank(1).stream("j"))
    b = RetryPolicy(jitter=0.2, stream=SeedBank(1).stream("j"))
    delays_a = [a.backoff(n) for n in range(1, 6)]
    delays_b = [b.backoff(n) for n in range(1, 6)]
    assert delays_a == delays_b  # same seed, same jitter
    for n, delay in enumerate(delays_a, start=1):
        base = min(a.max_delay, a.base_delay * a.multiplier ** (n - 1))
        assert base * 0.8 <= delay <= base * 1.2


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_retryable_statuses():
    policy = RetryPolicy()
    assert policy.retryable_status(503)
    assert policy.retryable_status(502)
    assert policy.retryable_status(504)
    assert not policy.retryable_status(404)
    assert not policy.retryable_status(200)


# ------------------------------------------------------------- breaker
def test_breaker_trips_after_threshold_and_recovers():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=3, recovery_time=5.0)
    log = []

    def drive(env):
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        log.append(("state-after-failures", breaker.state))
        assert not breaker.allow()          # open: rejected
        with pytest.raises(CircuitOpenError):
            breaker.check()
        assert breaker.retry_after > 0
        yield env.timeout(5.0)
        assert breaker.allow()              # half-open probe admitted
        log.append(("state-half-open", breaker.state))
        breaker.record_success()
        log.append(("state-closed", breaker.state))
        assert breaker.allow()

    sim.spawn(drive(sim))
    sim.run(until=10)
    assert ("state-after-failures", CircuitBreaker.OPEN) in log
    assert ("state-half-open", CircuitBreaker.HALF_OPEN) in log
    assert ("state-closed", CircuitBreaker.CLOSED) in log
    assert breaker.stats.get("trips") == 1
    assert breaker.stats.get("rejections") >= 1
    assert breaker.stats.get("closes") == 1


def test_breaker_half_open_failure_reopens():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=1, recovery_time=2.0,
                             half_open_max=1)

    def drive(env):
        breaker.record_failure()            # trips immediately
        assert breaker.state == CircuitBreaker.OPEN
        yield env.timeout(2.0)
        assert breaker.allow()              # half-open probe
        assert not breaker.allow()          # probe budget spent
        breaker.record_failure()            # probe failed
        assert breaker.state == CircuitBreaker.OPEN

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert breaker.stats.get("trips") == 2


# ------------------------------------------------------------- shedding
def _web_pair(sim, workers=1):
    net = Network(sim)
    host = net.add_node("host")
    client_node = net.add_node("client")
    net.connect(host, client_node, Subnet.parse("10.0.0.0/24"), delay=0.001)
    net.build_routes()
    server = WebServer(host, workers=workers)
    return server, HTTPClient(client_node), host


def test_load_shedding_returns_503_with_retry_after():
    sim = Simulator()
    server, client, host = _web_pair(sim, workers=1)
    server.enable_load_shedding(backlog=0, retry_after=2.5)

    def slow(ctx):
        yield sim.timeout(0.5)
        return HTTPResponse.ok("done", "text/plain")

    server.mount("/slow", slow)
    statuses = []

    def fetch(env):
        response = yield client.get(host.primary_address, "/slow")
        statuses.append((response.status,
                         response.headers.get("retry-after")))

    for _ in range(4):
        sim.spawn(fetch(sim))
    sim.run(until=30)
    assert len(statuses) == 4
    shed = [s for s in statuses if s[0] == 503]
    served = [s for s in statuses if s[0] == 200]
    assert shed and served, statuses
    assert all(retry == "2.5" for _, retry in shed)
    assert server.stats.get("shed_requests") == len(shed)


def test_no_shedding_by_default():
    sim = Simulator()
    server, client, host = _web_pair(sim, workers=1)

    def slow(ctx):
        yield sim.timeout(0.5)
        return HTTPResponse.ok("done", "text/plain")

    server.mount("/slow", slow)
    statuses = []

    def fetch(env):
        response = yield client.get(host.primary_address, "/slow")
        statuses.append(response.status)

    for _ in range(4):
        sim.spawn(fetch(sim))
    sim.run(until=60)
    assert statuses == [200, 200, 200, 200]


# ------------------------------------------------------------- failover
class _ScriptedSession(MiddlewareSession):
    """Session whose get() follows a script of 'ok' / exception items."""

    def __init__(self, sim, script):
        self.sim = sim
        self.script = list(script)
        self.calls = 0

    def get(self, url, trace=None, timeout=None):
        self.calls += 1
        event = self.sim.event()
        action = self.script.pop(0) if self.script else "ok"
        if action == "ok":
            event.succeed(MiddlewareResponse(200, "text/plain", b"ok"))
        else:
            event.fail(action)
        return event

    def post(self, url, form, trace=None, timeout=None):
        return self.get(url, trace=trace, timeout=timeout)

    def close(self):
        pass


def test_resilient_session_fails_over_and_sticks():
    sim = Simulator()
    primary = _ScriptedSession(sim, [ConnectionError("down"),
                                     ConnectionError("still down")])
    standby = _ScriptedSession(sim, ["ok", "ok", "ok"])
    session = ResilientSession([primary, standby])
    responses = []

    def drive(env):
        first = yield session.get("http://h/x")
        second = yield session.get("http://h/x")
        responses.extend([first, second])

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert [r.status for r in responses] == [200, 200]
    assert session.stats.get("failovers") == 1
    assert session.stats.get("route_switches") == 1
    # Sticky: the second request went straight to the standby.
    assert primary.calls == 1
    assert standby.calls == 2
    assert session.active_route is standby


def test_resilient_session_exhaustion_fails_with_last_error():
    sim = Simulator()
    a = _ScriptedSession(sim, [ConnectionError("a down")])
    b = _ScriptedSession(sim, [RequestTimeout("b timed out")])
    session = ResilientSession([a, b])
    captured = {}

    def drive(env):
        try:
            yield session.get("http://h/x")
        except (ConnectionError, RequestTimeout) as exc:
            captured["error"] = exc

    sim.spawn(drive(sim))
    sim.run(until=5)
    assert isinstance(captured["error"], RequestTimeout)
    assert session.stats.get("exhausted") == 1


# ------------------------------------------------------ engine integration
def test_request_timeout_produces_clear_transaction_error():
    from repro.apps import CommerceApp

    system = MCSystemBuilder(seed=5).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    handle = system.add_station("Toshiba E740")
    # Deadline far below the network RTT: every attempt must time out,
    # and without a retry policy the flow fails immediately.
    engine = TransactionEngine(system, request_timeout=0.0001)
    done = engine.run_flow(handle, shop.browse_and_buy(account="ann"))
    system.run(until=120)
    record = done.value
    assert not record.ok
    assert "Timeout" in record.error, record.error


def test_engine_retry_recovers_from_transient_503(monkeypatch):
    """A scripted session that sheds once then succeeds: the retry
    policy absorbs the 503 and the flow completes."""
    sim = Simulator()
    session = _ScriptedSession(sim, ["ok"])
    session.script = []  # replaced below with status-script behaviour

    class SheddingSession(_ScriptedSession):
        def get(self, url, trace=None, timeout=None):
            self.calls += 1
            event = self.sim.event()
            if self.calls == 1:
                event.succeed(MiddlewareResponse(
                    503, "text/plain", b"overloaded",
                    meta={"retry_after": 0.5}))
            else:
                event.succeed(MiddlewareResponse(200, "text/plain", b"ok"))
            return event

    shedding = SheddingSession(sim, [])

    class FakeSystem:
        def __init__(self):
            self.sim = sim

        def url(self, path):
            return f"http://host{path}"

    class FakeHandle:
        def __init__(self):
            self.session = shedding
            self.station = None
            self.node = None

    engine = TransactionEngine(
        FakeSystem(),
        retry=RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0))

    def flow(ctx):
        response = yield from ctx.get("/x")
        return response.status

    done = engine.run_flow(FakeHandle(), flow)
    sim.run(until=30)
    record = done.value
    assert record.ok
    assert record.result == 200
    assert record.retries == 1
    assert shedding.calls == 2
    # The Retry-After hint (0.5) dominated the base backoff (0.1).
    assert record.finished_at >= 0.5


def test_builder_without_resilience_has_no_policies():
    system = MCSystemBuilder(seed=2).build()
    assert system.resilience is None
    assert system.retry_policy is None
    assert system.standby_gateway is None
    assert system.gateway is not None
    handle = system.add_station("Toshiba E740")
    assert not isinstance(handle.session, ResilientSession)


def test_builder_with_resilience_wires_everything():
    config = ResilienceConfig()
    system = MCSystemBuilder(seed=2, resilience=config).build()
    assert system.resilience is config
    assert system.retry_policy is not None
    assert system.standby_gateway is not None
    assert system.gateway.breaker is not None
    assert system.host.web_server._shed_backlog == config.shed_backlog
    handle = system.add_station("Toshiba E740")
    assert isinstance(handle.session, ResilientSession)
    # primary gateway session, standby session, direct fallback
    assert len(handle.session.routes) == 3
