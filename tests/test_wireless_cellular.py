"""Tests for cellular networks: switching techniques, generations, handoff."""

import pytest

from repro.net import IPAddress, Network, Subnet, TCPStack, install_echo_responder, ping
from repro.sim import Simulator
from repro.wireless import (
    CallBlockedError,
    CellularNetwork,
    DataNotSupportedError,
    Mobile,
    Position,
    cellular_standard,
)


def build_cell_world(sim, standard_name, n_cells=2, cell_spacing=4000.0):
    net = Network(sim)
    core = net.add_node("core", forwarding=True)
    server = net.add_node("server")
    net.connect(core, server, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=100_000_000, delay=0.005)
    cellnet = CellularNetwork(net, core, cellular_standard(standard_name))
    for i in range(n_cells):
        cellnet.add_base_station(f"bs{i}", Position(i * cell_spacing, 0))
    net.build_routes()
    return net, core, server, cellnet


def add_subscriber(net, index=0):
    sub = net.add_node(f"phone{index}")
    sub.assign_address(IPAddress.parse(f"10.200.0.{10 + index}"))
    return sub


def test_1g_refuses_data_sessions():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "AMPS")
    sub = add_subscriber(net)
    with pytest.raises(DataNotSupportedError):
        cellnet.attach(sub, Mobile(Position(0, 0)))


def test_1g_still_carries_voice():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "AMPS")
    bs = cellnet.base_stations[0]
    result = bs.place_voice_call(duration=60.0)
    sim.run()
    assert result.value is True
    assert bs.stats.get("calls_carried") == 1


def test_circuit_cell_blocks_when_full():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GSM")
    bs = cellnet.base_stations[0]
    capacity = bs.standard.voice_channels_per_cell
    results = [bs.place_voice_call(duration=100.0)
               for _ in range(capacity + 5)]
    sim.run(until=50)
    carried = sum(1 for r in results if r.triggered is False or
                  (r.triggered and r.value is True))
    blocked = bs.stats.get("calls_blocked")
    assert blocked == 5
    assert bs.stats.get("calls_carried") == capacity


def test_gsm_data_session_reaches_server():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GSM")
    sub = add_subscriber(net)
    cellnet.attach(sub, Mobile(Position(100, 0)))
    install_echo_responder(server)
    result = ping(sim, sub, server.primary_address, timeout=5.0)
    sim.run(until=10)
    assert result.value is not None
    # Cellular latency is real: two 50 ms air legs dominate.
    assert result.value.rtt >= 0.2


def test_circuit_data_consumes_a_voice_channel():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GSM")
    bs = cellnet.base_stations[0]
    sub = add_subscriber(net)
    attachment = cellnet.attach(sub, Mobile(Position(0, 0)))
    assert bs.channels.in_use == 1
    attachment.detach()
    assert bs.channels.in_use == 0


def test_circuit_attach_blocked_when_cell_full():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GSM")
    bs = cellnet.base_stations[0]
    for _ in range(bs.standard.voice_channels_per_cell):
        bs.place_voice_call(duration=1000.0)
    sim.run(until=1)  # let calls seize their channels
    sub = add_subscriber(net)
    with pytest.raises(CallBlockedError):
        cellnet.attach(sub, Mobile(Position(0, 0)))


def test_packet_attach_never_blocks():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GPRS")
    subs = []
    for i in range(10):
        sub = add_subscriber(net, i)
        cellnet.attach(sub, Mobile(Position(0, 0)))
        subs.append(sub)
    assert len(cellnet.attachments) == 10


def test_out_of_coverage_refused():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GPRS")
    sub = add_subscriber(net)
    with pytest.raises(ConnectionError):
        cellnet.attach(sub, Mobile(Position(100_000, 0)))


def transfer_throughput(sim, net, server, sub, size=20_000, mss=512,
                        until=3000):
    tcp_srv = getattr(server, "_tcp_stack", None) or TCPStack(server)
    tcp_sub = TCPStack(sub, mss=mss)
    listener = tcp_srv.listen(8000 + hash(sub.name) % 1000)
    port = listener.port
    received = bytearray()
    done = {}

    def srv(env):
        conn = yield listener.accept()
        conn.send(b"T" * size)

    def cli(env):
        conn = tcp_sub.connect(server.primary_address, port, mss=mss)
        yield conn.established_event
        start = env.now
        while len(received) < size:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        done["bps"] = size * 8 / (env.now - start)

    sim.spawn(srv(sim))
    sim.spawn(cli(sim))
    sim.run(until=until)
    assert len(received) == size
    return done["bps"]


def test_generation_throughput_ordering():
    """3G > 2.5G > 2G — the shape of Table 5's data-rate column."""
    measured = {}
    for name, size in [("GSM", 6_000), ("GPRS", 40_000),
                       ("WCDMA", 200_000)]:
        sim = Simulator()
        net, core, server, cellnet = build_cell_world(sim, name)
        sub = add_subscriber(net)
        cellnet.attach(sub, Mobile(Position(0, 0)))
        measured[name] = transfer_throughput(sim, net, server, sub,
                                             size=size)
    assert measured["GSM"] < measured["GPRS"] < measured["WCDMA"]
    assert measured["GSM"] < 9_600
    assert measured["WCDMA"] > 300_000


def test_packet_cell_shares_capacity():
    """Two concurrent GPRS users each get roughly half the cell rate."""

    def run(n_users):
        sim = Simulator()
        net, core, server, cellnet = build_cell_world(sim, "GPRS")
        tcp_srv = TCPStack(server)
        rates = []
        size = 30_000

        def srv_loop(env, listener):
            while True:
                conn = yield listener.accept()
                conn.send(b"P" * size)

        listener = tcp_srv.listen(8000)
        sim.spawn(srv_loop(sim, listener))

        def client(env, sub):
            tcp_sub = TCPStack(sub, mss=512)
            conn = tcp_sub.connect(server.primary_address, 8000, mss=512)
            yield conn.established_event
            start = env.now
            got = 0
            while got < size:
                chunk = yield conn.recv()
                if chunk == b"":
                    break
                got += len(chunk)
            rates.append(size * 8 / (env.now - start))

        for i in range(n_users):
            sub = add_subscriber(net, i)
            cellnet.attach(sub, Mobile(Position(0, 0)))
            sim.spawn(client(sim, sub))
        sim.run(until=3000)
        assert len(rates) == n_users
        return sum(rates) / len(rates)

    solo = run(1)
    shared = run(2)
    assert shared < 0.75 * solo  # sharing the cell really costs capacity


def test_handoff_between_cells():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GPRS", n_cells=2)
    sub = add_subscriber(net)
    mobile = Mobile(Position(0, 0))
    attachment = cellnet.attach(sub, mobile)
    install_echo_responder(server)
    results = {}

    def scenario(env):
        r1 = yield ping(sim, sub, server.primary_address, timeout=5.0)
        results["before"] = r1
        # Drive to the second cell.
        mobile.move_to(Position(4000, 0))
        done = attachment.handoff_to(cellnet.base_stations[1])
        yield done
        r2 = yield ping(sim, sub, server.primary_address, timeout=5.0)
        results["after"] = r2

    sim.spawn(scenario(sim))
    sim.run(until=60)
    assert results["before"] is not None
    assert results["after"] is not None
    assert attachment.station is cellnet.base_stations[1]
    assert attachment.stats.get("handoffs") == 1


def test_auto_handoff_follows_movement():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(
        sim, "GPRS", n_cells=2, cell_spacing=4000.0)
    sub = add_subscriber(net)
    mobile = Mobile(Position(0, 0))
    attachment = cellnet.attach(sub, mobile)
    cellnet.enable_auto_handoff(attachment)

    def drive(env):
        yield env.timeout(1)
        mobile.move_to(Position(3500, 0))  # nearer to bs1

    sim.spawn(drive(sim))
    sim.run(until=30)
    assert attachment.station is cellnet.base_stations[1]


def test_best_station_picks_nearest_covering():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(
        sim, "GPRS", n_cells=3, cell_spacing=4000.0)
    assert cellnet.best_station(Position(100, 0)) is cellnet.base_stations[0]
    assert cellnet.best_station(Position(4100, 0)) is cellnet.base_stations[1]
    assert cellnet.best_station(Position(50_000, 0)) is None


def test_qos_unknown_class_rejected():
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "WCDMA")
    sub = add_subscriber(net)
    with pytest.raises(ValueError, match="QoS"):
        cellnet.attach(sub, Mobile(Position(0, 0)), qos_class="warp")


def test_qos_conversational_beats_background_on_3g():
    """Under cell contention, the high-QoS subscriber finishes first."""

    def run(priority_class):
        sim = Simulator()
        net, core, server, cellnet = build_cell_world(sim, "WCDMA")
        from repro.net import TCPStack
        tcp_srv = TCPStack(server)
        listener = tcp_srv.listen(8000)
        size = 120_000
        finish = {}

        def srv_loop(env):
            while True:
                conn = yield listener.accept()
                conn.send(b"Q" * size)

        sim.spawn(srv_loop(sim))

        def client(env, sub, tag):
            tcp_sub = TCPStack(sub, mss=512)
            conn = tcp_sub.connect(server.primary_address, 8000, mss=512)
            yield conn.established_event
            got = 0
            while got < size:
                chunk = yield conn.recv()
                if chunk == b"":
                    break
                got += len(chunk)
            finish[tag] = env.now

        # The subject subscriber plus three background competitors.
        subject = add_subscriber(net, 0)
        cellnet.attach(subject, Mobile(Position(0, 0)),
                       qos_class=priority_class)
        sim.spawn(client(sim, subject, "subject"))
        for index in range(1, 4):
            sub = add_subscriber(net, index)
            cellnet.attach(sub, Mobile(Position(0, 0)),
                           qos_class="background")
            sim.spawn(client(sim, sub, f"bg{index}"))
        sim.run(until=3_000)
        assert len(finish) == 4
        return finish

    privileged = run("conversational")
    flat = run("background")
    # With QoS the subject beats every background transfer decisively;
    # without it the subject is indistinguishable from the pack.
    assert privileged["subject"] < min(
        v for k, v in privileged.items() if k != "subject") * 0.8
    spread = max(flat.values()) - min(flat.values())
    assert flat["subject"] > min(flat.values()) - spread  # in the pack


def test_qos_ignored_on_2g_cells():
    """GPRS (2.5G) has no QoS scheduler — classes change nothing."""
    sim = Simulator()
    net, core, server, cellnet = build_cell_world(sim, "GPRS")
    sub = add_subscriber(net)
    attachment = cellnet.attach(sub, Mobile(Position(0, 0)),
                                qos_class="conversational")
    from repro.sim import PriorityResource
    assert not isinstance(cellnet.base_stations[0].shared_airtime,
                          PriorityResource)
    assert attachment.qos_class == "conversational"  # recorded, inert
