"""Tests for the mobile stations component: hardware, OS, devices, browser."""

import pytest
from hypothesis import given, strategies as st

from repro.devices import (
    Battery,
    BatteryDeadError,
    CPU,
    EmbeddedDatabase,
    Memory,
    Microbrowser,
    OS_PROFILES,
    OutOfMemoryError,
    PALM_OS,
    POCKET_PC,
    SYMBIAN_OS,
    TABLE2_DEVICES,
    TaskLimitError,
    TaskTable,
    UnsupportedContentError,
    build_station,
    device_spec,
)
from repro.net import IPAddress
from repro.sim import Simulator


def make_station(sim, device="Toshiba E740", addr="10.0.0.50"):
    return build_station(sim, device, IPAddress.parse(addr))


# ------------------------------------------------------------------- CPU
def test_cpu_time_scales_inversely_with_clock():
    sim = Simulator()
    slow = CPU(sim, mhz=33)
    fast = CPU(sim, mhz=400)
    cycles = 1e6
    assert slow.seconds_for(cycles) > 10 * fast.seconds_for(cycles)


def test_cpu_overhead_factor_applies():
    sim = Simulator()
    lean = CPU(sim, mhz=100, overhead_factor=1.0)
    heavy = CPU(sim, mhz=100, overhead_factor=1.5)
    assert heavy.seconds_for(1e6) == pytest.approx(1.5 * lean.seconds_for(1e6))


def test_cpu_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        CPU(sim, mhz=0)
    with pytest.raises(ValueError):
        CPU(sim, mhz=100, overhead_factor=0.5)
    with pytest.raises(ValueError):
        CPU(sim, mhz=100).seconds_for(-1)


# ---------------------------------------------------------------- Memory
def test_memory_allocation_and_oom():
    mem = Memory(ram_kb=100, rom_kb=10)
    mem.allocate("app", 60)
    assert mem.free_kb == 40
    with pytest.raises(OutOfMemoryError):
        mem.allocate("big", 41)
    assert mem.free("app") == 60
    assert mem.free_kb == 100
    assert mem.free("missing") == 0


def test_memory_rejects_nonpositive():
    mem = Memory(ram_kb=10, rom_kb=0)
    with pytest.raises(ValueError):
        mem.allocate("x", 0)
    with pytest.raises(ValueError):
        Memory(ram_kb=0, rom_kb=0)


@given(st.lists(st.integers(min_value=1, max_value=30), max_size=20))
def test_memory_accounting_invariant(sizes):
    mem = Memory(ram_kb=1000, rom_kb=0)
    allocated = []
    for i, kb in enumerate(sizes):
        try:
            mem.allocate(f"t{i}", kb)
            allocated.append((f"t{i}", kb))
        except OutOfMemoryError:
            pass
    assert mem.used_kb == sum(kb for _, kb in allocated)
    for tag, _ in allocated:
        mem.free(tag)
    assert mem.used_kb == 0


# --------------------------------------------------------------- Battery
def test_battery_drains_and_dies():
    battery = Battery(capacity=10.0)
    battery.drain("cpu", 10.0)  # 0.2/s -> 2 units
    assert battery.level == pytest.approx(0.8)
    battery.drain("radio_tx", 16.0)  # 0.5/s -> 8 units
    assert battery.is_dead
    with pytest.raises(BatteryDeadError):
        battery.require()
    battery.recharge()
    assert battery.level == 1.0


def test_battery_efficiency_doubles_life():
    palm = Battery(capacity=10.0, efficiency=2.0)
    rival = Battery(capacity=10.0, efficiency=1.0)
    palm.drain("cpu", 20.0)
    rival.drain("cpu", 20.0)
    # Same activity consumes half the charge on the efficient platform.
    assert (1 - palm.level) == pytest.approx(0.5 * (1 - rival.level))


def test_battery_unknown_activity():
    with pytest.raises(ValueError):
        Battery().drain("warp_drive", 1.0)


# --------------------------------------------------------------------- OS
def test_three_major_os_profiles_present():
    assert set(OS_PROFILES) == {"Palm OS", "Pocket PC", "Symbian OS"}


def test_palm_is_single_tasking():
    table = TaskTable(PALM_OS)
    table.start("browser")
    with pytest.raises(TaskLimitError):
        table.start("mail")
    table.finish("browser")
    table.start("mail")


def test_preemptive_os_multitasks():
    for profile in (POCKET_PC, SYMBIAN_OS):
        table = TaskTable(profile)
        for i in range(5):
            table.start(f"task{i}")
        assert len(table) == 5


def test_palm_battery_advantage_encoded():
    assert PALM_OS.battery_efficiency == pytest.approx(
        2.0 * POCKET_PC.battery_efficiency)


# ---------------------------------------------------------------- devices
def test_table2_has_all_five_rows():
    assert set(TABLE2_DEVICES) == {
        "Compaq iPAQ H3870",
        "Nokia 9290 Communicator",
        "Palm i705",
        "SONY Clie PEG-NR70V",
        "Toshiba E740",
    }


def test_table2_specs_match_paper():
    ipaq = device_spec("Compaq iPAQ H3870")
    assert ipaq.cpu_mhz == 206 and ipaq.ram_mb == 64 and ipaq.rom_mb == 32
    assert ipaq.os_name == "Pocket PC"
    i705 = device_spec("Palm i705")
    assert i705.cpu_mhz == 33 and i705.ram_mb == 8 and i705.rom_mb == 4
    assert i705.os_name == "Palm OS"
    e740 = device_spec("Toshiba E740")
    assert e740.cpu_mhz == 400
    nokia = device_spec("Nokia 9290 Communicator")
    assert "confidential" in nokia.note


def test_unknown_device_helpful_error():
    with pytest.raises(KeyError, match="known"):
        device_spec("iPhone 15")


def test_station_charges_compute_to_cpu_and_battery():
    sim = Simulator()
    station = make_station(sim)
    level_before = station.battery.level
    done = station.compute(4e8)  # 1 s at 400 MHz (x OS overhead)
    sim.run()
    assert done.processed
    assert sim.now == pytest.approx(1.35, rel=0.01)  # PocketPC overhead 1.35
    assert station.battery.level < level_before


def test_station_os_memory_footprint_claimed():
    sim = Simulator()
    station = make_station(sim, device="Palm i705")
    assert station.memory.usage().get("os") == PALM_OS.footprint_kb


def test_station_single_tasking_enforced():
    sim = Simulator()
    station = make_station(sim, device="Palm i705")
    station.compute(1e7, task="render")
    with pytest.raises(TaskLimitError):
        station.compute(1e7, task="mail")
    sim.run()
    # After completion the slot frees up.
    station.compute(1e7, task="mail")
    sim.run()


# ---------------------------------------------------------------- browser
def test_render_speed_ordering_follows_cpu():
    def render_time(device):
        sim = Simulator()
        station = make_station(sim, device=device)
        browser = Microbrowser(station)
        page = b"<wml><card><p>" + b"Buy now! " * 200 + b"</p></card></wml>"
        result = browser.render(page, "text/vnd.wap.wml")
        sim.run()
        return result.value.render_seconds

    t_palm = render_time("Palm i705")
    t_clie = render_time("SONY Clie PEG-NR70V")
    t_e740 = render_time("Toshiba E740")
    assert t_palm > t_clie > t_e740


def test_render_wraps_to_screen_width():
    sim = Simulator()
    station = make_station(sim, device="Palm i705")
    browser = Microbrowser(station)
    body = b"<p>" + b"word " * 100 + b"</p>"
    result = browser.render(body, "text/vnd.wap.wml")
    sim.run()
    page = result.value
    width = station.spec.screen.chars_per_line
    assert all(len(line) <= width for line in page.lines)
    assert page.lines  # something was rendered


def test_binary_wmlc_renders_faster_than_wml():
    sim = Simulator()
    station = make_station(sim, device="Palm i705")
    browser = Microbrowser(station)
    body = b"x" * 2000
    r1 = browser.render(body, "text/vnd.wap.wml")
    sim.run()
    t_wml = r1.value.render_seconds
    r2 = browser.render(body, "application/vnd.wap.wmlc")
    sim.run()
    t_wmlc = r2.value.render_seconds
    assert t_wmlc < t_wml


def test_unsupported_content_rejected():
    sim = Simulator()
    station = make_station(sim)
    browser = Microbrowser(station, accepted_types={"text/vnd.wap.wml"})
    with pytest.raises(UnsupportedContentError):
        browser.render(b"<html></html>", "text/html")


def test_render_memory_freed_after_render():
    sim = Simulator()
    station = make_station(sim, device="Palm i705")
    browser = Microbrowser(station)
    used_before = station.memory.used_kb
    result = browser.render(b"m" * 50_000, "text/vnd.wap.wml")
    sim.run()
    assert result.processed
    assert station.memory.used_kb == used_before


def test_markup_entities_unescaped():
    sim = Simulator()
    station = make_station(sim)
    browser = Microbrowser(station)
    result = browser.render(b"<p>fish &amp; chips</p>", "text/vnd.wap.wml")
    sim.run()
    assert "fish & chips" in result.value.visible_text


# ----------------------------------------------------------- embedded db
def test_embedded_db_crud():
    sim = Simulator()
    station = make_station(sim)
    db = EmbeddedDatabase(station)
    db.put("item:1", {"name": "widget", "qty": 5})
    db.put("item:2", {"name": "gadget", "qty": 2})
    assert db.get("item:1") == {"name": "widget", "qty": 5}
    assert len(db) == 2
    assert db.delete("item:1")
    assert db.get("item:1") is None
    assert not db.delete("item:1")
    assert db.keys() == ["item:2"]


def test_embedded_db_charges_device_memory():
    sim = Simulator()
    station = make_station(sim, device="Palm i705")
    db = EmbeddedDatabase(station)
    before = station.memory.used_kb
    for i in range(200):
        db.put(f"rec:{i}", {"payload": "y" * 100})
    assert station.memory.used_kb > before


def test_embedded_db_quota_enforced():
    sim = Simulator()
    station = make_station(sim)
    db = EmbeddedDatabase(station, quota_kb=2)
    with pytest.raises(OutOfMemoryError):
        for i in range(100):
            db.put(f"rec:{i}", {"blob": "z" * 200})


def test_sync_delta_round_trip():
    sim = Simulator()
    station = make_station(sim)
    db = EmbeddedDatabase(station)
    db.put("a", {"v": 1})
    db.put("b", {"v": 2})
    checkpoint = db.version
    db.put("c", {"v": 3})
    db.delete("a")
    delta = db.changes_since(checkpoint)
    keys = {r.key for r in delta.records}
    assert keys == {"a", "c"}
    assert any(r.deleted for r in delta.records if r.key == "a")


def test_sync_apply_remote_last_writer_wins():
    sim = Simulator()
    s1 = make_station(sim, addr="10.0.0.51")
    db = EmbeddedDatabase(s1)
    db.put("x", {"v": "local"})
    from repro.devices import Record, SyncDelta
    stale = SyncDelta(records=[Record("x", {"v": "stale"}, version=0)])
    assert db.apply_remote(stale) == 0
    assert db.get("x") == {"v": "local"}
    fresh = SyncDelta(records=[Record("x", {"v": "fresh"}, version=999)])
    assert db.apply_remote(fresh) == 1
    assert db.get("x") == {"v": "fresh"}
