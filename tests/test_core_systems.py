"""Integration tests: built EC/MC systems, transactions, requirements."""

import pytest

from repro.apps import ALL_CATEGORIES, CommerceApp
from repro.core import (
    ECSystemBuilder,
    MCSystemBuilder,
    TransactionEngine,
    check_requirements,
)
from repro.core.model import EC_FLOW_CHAIN, MC_FLOW_CHAIN


def build_mc(**kwargs):
    defaults = dict(middleware="WAP", bearer=("cellular", "GPRS"))
    defaults.update(kwargs)
    system = MCSystemBuilder(**defaults).build()
    app = CommerceApp()
    system.mount_application(app)
    system.host.payment.open_account("ann", 1_000_000)
    return system, app


def run_one_purchase(system, app, handle):
    engine = TransactionEngine(system)
    done = engine.run_flow(handle, app.browse_and_buy(account="ann"))
    system.run(until=system.sim.now + 300)
    assert done.triggered
    return engine, done.value


def test_mc_system_validates_against_figure2():
    system, app = build_mc()
    system.add_station("Palm i705")
    report = system.model.validate_mc()
    assert report.valid, report.violations
    assert system.model.flow_path_exists(MC_FLOW_CHAIN)


def test_ec_system_validates_against_figure1():
    system = ECSystemBuilder().build()
    app = CommerceApp()
    system.mount_application(app)
    system.add_client()
    report = system.model.validate_ec()
    assert report.valid, report.violations
    assert system.model.flow_path_exists(EC_FLOW_CHAIN)


def test_mc_purchase_over_wap_gprs():
    system, app = build_mc()
    handle = system.add_station("Toshiba E740")
    engine, record = run_one_purchase(system, app, handle)
    assert record.ok, record.error
    assert record.requests == 3
    assert record.render_seconds > 0


def test_mc_purchase_over_imode_wlan():
    system, app = build_mc(middleware="i-mode", bearer=("wlan", "802.11b"))
    handle = system.add_station("Nokia 9290 Communicator")
    engine, record = run_one_purchase(system, app, handle)
    assert record.ok, record.error


def test_ec_purchase_from_desktop():
    system = ECSystemBuilder().build()
    app = CommerceApp()
    system.mount_application(app)
    system.host.payment.open_account("ann", 1_000_000)
    client = system.add_client()
    engine = TransactionEngine(system)
    done = engine.run_flow(client, app.browse_and_buy(account="ann"))
    system.run(until=60)
    record = done.value
    assert record.ok, record.error
    # Desktops have no microbrowser: no device render cost.
    assert record.render_seconds == 0


def test_purchase_decrements_stock_and_charges_account():
    system, app = build_mc()
    handle = system.add_station("Toshiba E740")
    engine, record = run_one_purchase(system, app, handle)
    assert record.ok
    from repro.db import execute
    rows = execute(system.host.db_server.database,
                   "SELECT stock FROM shop_items WHERE id = 1").rows
    assert rows[0]["stock"] == 9
    assert system.host.payment.balance("ann") == 1_000_000 - 19_900


def test_declined_payment_fails_transaction():
    system, app = build_mc()
    system.host.payment.accounts["ann"] = 10  # not enough for anything
    handle = system.add_station("Toshiba E740")
    engine, record = run_one_purchase(system, app, handle)
    assert not record.ok
    assert "purchase failed" in record.error


def test_slower_device_slower_transaction():
    def latency(device):
        system, app = build_mc()
        handle = system.add_station(device)
        _, record = run_one_purchase(system, app, handle)
        assert record.ok
        return record.render_seconds

    assert latency("Palm i705") > latency("Toshiba E740")


def test_cellular_2g_slower_than_3g():
    def latency(bearer):
        system, app = build_mc(bearer=bearer)
        handle = system.add_station("Toshiba E740")
        _, record = run_one_purchase(system, app, handle)
        assert record.ok, record.error
        return record.latency

    assert latency(("cellular", "GSM")) > latency(("cellular", "WCDMA"))


def test_engine_aggregates():
    system, app = build_mc()
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)
    e1 = engine.run_flow(handle, app.browse_and_buy(account="ann"))
    system.run(until=300)
    e2 = engine.run_flow(handle, app.browse_and_buy(item_id=2,
                                                    account="ann"))
    system.run(until=600)
    assert engine.success_rate() == 1.0
    assert len(engine.latencies()) == 2


def test_all_eight_categories_mount_and_run():
    system, _ = build_mc(bearer=("cellular", "WCDMA"))
    apps = {}
    for name, cls in ALL_CATEGORIES.items():
        if name == "commerce":
            continue  # mounted by build_mc
        app = cls()
        system.mount_application(app)
        apps[name] = app
    handle = system.add_station("Compaq iPAQ H3870")
    engine = TransactionEngine(system)
    flows = [
        apps["education"].attend_class(),
        apps["erp"].manage_resources(),
        apps["entertainment"].buy_and_download(),
        apps["healthcare"].rounds(),
        apps["inventory"].driver_rounds(),
        apps["traffic"].navigate(),
        apps["travel"].book_trip(),
    ]
    records = []

    def runner(env):
        for flow in flows:
            record = yield engine.run_flow(handle, flow)
            records.append(record)

    system.sim.spawn(runner(system.sim))
    system.run(until=900)
    assert len(records) == 7
    failed = [(r.flow_name, r.error) for r in records if not r.ok]
    assert not failed, failed
    mounted = {app.category for app in system.applications}
    assert mounted == set(ALL_CATEGORIES)


def test_requirements_report():
    system, app = build_mc()
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)
    done = engine.run_flow(
        handle, app.browse_and_buy(account="ann", user="ann"))
    system.run(until=300)
    assert done.value.ok

    interop = {("Toshiba E740", "WAP", "GPRS"): True}
    outcomes = {"wap-gprs": {"status": 200}, "imode-wlan": {"status": 200}}
    report = check_requirements(
        system, engine,
        interop_matrix=interop,
        independence_outcomes=outcomes,
        expected_categories={"commerce"},
    )
    assert report.all_satisfied, report.summary()
    assert "PASS" in report.summary()


def test_requirements_fail_without_evidence():
    system, app = build_mc()
    engine = TransactionEngine(system)
    report = check_requirements(system, engine)
    assert not report.result(1).satisfied  # no transactions ran
    assert not report.result(4).satisfied  # no matrix supplied
    assert not report.result(5).satisfied  # no outcomes supplied


def test_builder_rejects_bad_config():
    with pytest.raises(ValueError):
        MCSystemBuilder(middleware="carrier-pigeon")
    with pytest.raises(ValueError):
        MCSystemBuilder(bearer=("quantum", "entanglement"))


def test_program_data_independence_outcome_equality():
    """The same flow yields the same business outcome on two stacks."""
    outcomes = {}
    for label, middleware, bearer in [
        ("wap-gprs", "WAP", ("cellular", "GPRS")),
        ("imode-wlan", "i-mode", ("wlan", "802.11g")),
    ]:
        system, app = build_mc(middleware=middleware, bearer=bearer)
        handle = system.add_station("Toshiba E740")
        _, record = run_one_purchase(system, app, handle)
        assert record.ok, (label, record.error)
        outcomes[label] = record.result
    assert outcomes["wap-gprs"] == outcomes["imode-wlan"]
