"""Tests for mobile middleware: WML/WMLC, cHTML, adaptation, WAP, i-mode."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.middleware import (
    IModeCenter,
    IModeSession,
    MiddlewareResponse,
    WAPGateway,
    WAPSession,
    WMLCard,
    WMLDocument,
    WMLError,
    WML_CONTENT_TYPE,
    WMLC_CONTENT_TYPE,
    CHTML_CONTENT_TYPE,
    decode_wmlc,
    encode_wmlc,
    html_to_wml,
    is_compact,
    parse_wml,
    personalize,
    split_url,
    strip_tags,
    to_chtml,
)
from repro.net import NameRegistry, Network, Subnet
from repro.sim import Simulator
from repro.web import WebServer


SAMPLE_HTML = """<html><head><title>Mobile Shop</title></head>
<body><h1>Catalog</h1>
<p>Welcome to the mobile commerce catalog. We sell phones and more.</p>
<script>evil();</script>
<table><tr><td>ignored layout</td></tr></table>
<a href="/item?id=1">Phone</a>
<a href="/item?id=2">Case</a>
</body></html>"""


# ------------------------------------------------------------------- WML
def sample_deck():
    return WMLDocument(cards=[
        WMLCard("home", "Shop", ["Welcome & enjoy"],
                [("/buy", "Buy now"), ("#c1", "More")]),
        WMLCard("c1", "Page 2", ["Second card"], []),
    ])


def test_wml_xml_round_trip():
    deck = sample_deck()
    parsed = parse_wml(deck.to_xml())
    assert len(parsed.cards) == 2
    assert parsed.card("home").title == "Shop"
    assert parsed.card("home").paragraphs == ["Welcome & enjoy"]
    assert parsed.card("home").links == [("/buy", "Buy now"), ("#c1", "More")]


def test_wmlc_round_trip_and_compression():
    deck = sample_deck()
    blob = encode_wmlc(deck)
    decoded = decode_wmlc(blob)
    assert decoded == deck
    assert len(blob) < deck.text_size  # binary beats verbose XML


def test_wmlc_rejects_garbage():
    with pytest.raises(WMLError):
        decode_wmlc(b"NOTWMLC....")
    with pytest.raises(WMLError):
        decode_wmlc(b"WMLC\x01\x02\x00\x05abc")  # truncated


def test_parse_wml_rejects_non_wml():
    with pytest.raises(WMLError):
        parse_wml("<html><body>nope</body></html>")


@given(st.lists(st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=50),
    min_size=1, max_size=5))
@settings(max_examples=30)
def test_wmlc_round_trip_property(paragraphs):
    deck = WMLDocument(cards=[WMLCard("c0", "t", list(paragraphs), [])])
    assert decode_wmlc(encode_wmlc(deck)) == deck


# ------------------------------------------------------------------ cHTML
def test_to_chtml_strips_disallowed():
    compact = to_chtml(SAMPLE_HTML)
    assert "<table>" not in compact
    assert "evil()" not in compact
    assert "<script" not in compact
    assert "ignored layout" in compact  # content survives, tags go
    assert '<a href="/item?id=1">' in compact
    assert is_compact(compact)


def test_is_compact_detects_violations():
    assert is_compact("<p>fine</p>")
    assert not is_compact("<table><tr><td>x</td></tr></table>")
    assert not is_compact("<p>unterminated <")


# -------------------------------------------------------------- adaptation
def test_strip_tags_and_entities():
    assert strip_tags("<p>fish &amp; chips</p>") == "fish & chips"
    assert strip_tags("<script>bad()</script><p>ok</p>") == "ok"


def test_html_to_wml_title_and_links():
    deck = html_to_wml(SAMPLE_HTML)
    assert deck.cards[0].title == "Mobile Shop"
    last = deck.cards[-1]
    assert ("/item?id=1", "Phone") in last.links
    assert ("/item?id=2", "Case") in last.links


def test_html_to_wml_splits_long_pages_into_cards():
    long_html = "<html><title>Long</title><body><p>" + \
        "word " * 600 + "</p></body></html>"
    deck = html_to_wml(long_html, card_limit=400)
    assert len(deck.cards) > 3
    for card in deck.cards[:-1]:
        assert any(href.startswith("#") for href, _ in card.links)


def test_personalize_substitutes_profile():
    html = "<p>Hello [[name]], your tier is [[tier]]</p>"
    out = personalize(html, {"name": "Ann", "tier": "gold"})
    assert out == "<p>Hello Ann, your tier is gold</p>"
    out = personalize(html, None)
    assert "[[name]]" in out


def test_personalize_applies_rules():
    def shout(html, profile):
        return html.upper()

    assert personalize("<p>hi</p>", {}, rules=[shout]) == "<P>HI</P>"


def test_split_url():
    assert split_url("http://shop.example.com/cat?x=1") == \
        ("shop.example.com", "/cat?x=1")
    assert split_url("http://shop.example.com") == ("shop.example.com", "/")
    with pytest.raises(ValueError):
        split_url("ftp://shop.example.com/x")
    with pytest.raises(ValueError):
        split_url("/relative/only")


# --------------------------------------------------------- WAP + i-mode
def middleware_world():
    """Origin web server + gateway/centre host + phone, all wired."""
    sim = Simulator()
    net = Network(sim)
    origin = net.add_node("origin")
    gateway_node = net.add_node("gateway", forwarding=True)
    phone = net.add_node("phone")
    net.connect(origin, gateway_node, Subnet.parse("10.0.1.0/24"),
                delay=0.005)
    net.connect(gateway_node, phone, Subnet.parse("10.0.2.0/24"),
                bandwidth_bps=100_000, delay=0.05)  # slow wireless-ish hop
    net.build_routes()

    registry = NameRegistry()
    registry.register("shop.example.com", origin.primary_address)
    server = WebServer(origin)
    server.add_page("/", SAMPLE_HTML)
    server.add_page("/wml",
                    sample_deck().to_xml(), content_type=WML_CONTENT_TYPE)
    return sim, net, origin, gateway_node, phone, registry, server


def run_get(sim, session, url):
    box = {}

    def go(env):
        response = yield session.get(url)
        box["response"] = response

    sim.spawn(go(sim))
    sim.run(until=sim.now + 120)
    return box["response"]


def test_wap_gateway_translates_html_to_wmlc():
    sim, net, origin, gw, phone, registry, server = middleware_world()
    WAPGateway(gw, registry)
    session = WAPSession(phone, gw.primary_address)
    response = run_get(sim, session, "http://shop.example.com/")
    assert response.ok
    assert response.content_type == WMLC_CONTENT_TYPE
    deck = decode_wmlc(response.body)
    assert deck.cards[0].title == "Mobile Shop"
    assert response.meta["translated"]
    assert response.meta["delivered_bytes"] < response.meta["origin_bytes"]


def test_wap_gateway_text_mode():
    sim, net, origin, gw, phone, registry, server = middleware_world()
    WAPGateway(gw, registry)
    session = WAPSession(phone, gw.primary_address,
                         accept=WML_CONTENT_TYPE)
    response = run_get(sim, session, "http://shop.example.com/")
    assert response.content_type == WML_CONTENT_TYPE
    deck = parse_wml(response.body.decode())
    assert deck.cards


def test_wap_gateway_passes_wml_through():
    sim, net, origin, gw, phone, registry, server = middleware_world()
    gateway = WAPGateway(gw, registry)
    session = WAPSession(phone, gw.primary_address)
    response = run_get(sim, session, "http://shop.example.com/wml")
    assert response.content_type == WMLC_CONTENT_TYPE
    assert gateway.stats.get("translations") == 0  # already WML
    assert gateway.stats.get("wmlc_encodings") == 1


def test_wap_gateway_unresolvable_host_502():
    sim, net, origin, gw, phone, registry, server = middleware_world()
    WAPGateway(gw, registry)
    session = WAPSession(phone, gw.primary_address)
    response = run_get(sim, session, "http://nowhere.example.com/")
    assert response.status == 502


def test_wap_session_reused_across_requests():
    sim, net, origin, gw, phone, registry, server = middleware_world()
    WAPGateway(gw, registry)
    session = WAPSession(phone, gw.primary_address)
    run_get(sim, session, "http://shop.example.com/")
    run_get(sim, session, "http://shop.example.com/wml")
    assert session.stats.get("session_establishments") == 1
    assert session.stats.get("requests") == 2


def test_imode_adapts_html_to_chtml():
    sim, net, origin, center_node, phone, registry, server = \
        middleware_world()
    center = IModeCenter(center_node, registry)
    session = IModeSession(phone, center_node.primary_address)
    response = run_get(sim, session, "http://shop.example.com/")
    assert response.ok
    assert response.content_type == CHTML_CONTENT_TYPE
    text = response.body.decode()
    assert is_compact(text)
    assert "Catalog" in text
    assert center.stats.get("adaptations") == 1


def test_imode_always_on_single_connection():
    sim, net, origin, center_node, phone, registry, server = \
        middleware_world()
    IModeCenter(center_node, registry)
    session = IModeSession(phone, center_node.primary_address)
    for _ in range(3):
        run_get(sim, session, "http://shop.example.com/")
    assert session.stats.get("session_establishments") == 1
    assert session.stats.get("requests") == 3


def test_imode_unresolvable_host_502():
    sim, net, origin, center_node, phone, registry, server = \
        middleware_world()
    IModeCenter(center_node, registry)
    session = IModeSession(phone, center_node.primary_address)
    response = run_get(sim, session, "http://missing.example.com/")
    assert response.status == 502


def test_sessions_are_interchangeable():
    """Requirement 5: the same client code works over either middleware."""
    def shop_flow(session_factory):
        sim, net, origin, mid_node, phone, registry, server = \
            middleware_world()
        if session_factory == "wap":
            WAPGateway(mid_node, registry)
            session = WAPSession(phone, mid_node.primary_address)
        else:
            IModeCenter(mid_node, registry)
            session = IModeSession(phone, mid_node.primary_address)
        response = run_get(sim, session, "http://shop.example.com/")
        return response

    for flavour in ("wap", "imode"):
        response = shop_flow(flavour)
        assert isinstance(response, MiddlewareResponse)
        assert response.ok
        assert response.body  # content delivered either way


def test_wap_gateway_negotiates_native_wml_from_origin():
    """An origin with both HTML and WML variants serves WML to the
    gateway (Apache content negotiation), skipping transcoding."""
    sim, net, origin, gw, phone, registry, server = middleware_world()
    server.add_page("/both", SAMPLE_HTML, "text/html")
    server.add_page("/both", sample_deck().to_xml(), WML_CONTENT_TYPE)
    gateway = WAPGateway(gw, registry)
    session = WAPSession(phone, gw.primary_address)
    response = run_get(sim, session, "http://shop.example.com/both")
    assert response.ok
    assert response.content_type == WMLC_CONTENT_TYPE
    # Served natively: the gateway encoded but never translated.
    assert gateway.stats.get("translations") == 0
    assert gateway.stats.get("wmlc_encodings") == 1


def test_wap_gateway_cache_serves_repeats():
    """Gateway caching spares the origin and the translation CPU."""
    sim, net, origin, gw, phone, registry, server = middleware_world()
    gateway = WAPGateway(gw, registry, cache_ttl=600.0)
    session = WAPSession(phone, gw.primary_address)
    first = run_get(sim, session, "http://shop.example.com/")
    second = run_get(sim, session, "http://shop.example.com/")
    assert first.ok and second.ok
    assert second.body == first.body
    assert not first.meta.get("cache_hit")
    assert second.meta.get("cache_hit")
    assert gateway.stats.get("translations") == 1  # only the first fetch
    assert gateway.stats.get("cache_hits") == 1
    # The origin web server saw exactly one request for the page.
    assert server.stats.get("requests") == 1


def test_wap_gateway_cache_expires():
    sim, net, origin, gw, phone, registry, server = middleware_world()
    gateway = WAPGateway(gw, registry, cache_ttl=1.0)
    session = WAPSession(phone, gw.primary_address)
    run_get(sim, session, "http://shop.example.com/")

    def wait(env):
        yield env.timeout(5.0)

    sim.spawn(wait(sim))
    sim.run(until=sim.now + 10)
    stale = run_get(sim, session, "http://shop.example.com/")
    assert stale.ok
    assert not stale.meta.get("cache_hit")
    assert gateway.stats.get("translations") == 2


def test_wap_gateway_cache_disabled_by_default():
    sim, net, origin, gw, phone, registry, server = middleware_world()
    gateway = WAPGateway(gw, registry)
    session = WAPSession(phone, gw.primary_address)
    run_get(sim, session, "http://shop.example.com/")
    run_get(sim, session, "http://shop.example.com/")
    assert gateway.stats.get("cache_hits") == 0
    assert gateway.stats.get("translations") == 2
