"""Tests for the component taxonomy, system-model graph and validation."""

import pytest

from repro.core import (
    Component,
    ComponentKind,
    EDGE_ASSOCIATION,
    EDGE_DATA_FLOW,
    SystemModel,
    render_flow_chain,
    render_structure,
)
from repro.core.model import EC_FLOW_CHAIN, MC_FLOW_CHAIN


def minimal_mc_model():
    model = SystemModel("test-mc")
    for kind, name in [
        (ComponentKind.USERS, "users"),
        (ComponentKind.MOBILE_STATIONS, "stations"),
        (ComponentKind.MOBILE_MIDDLEWARE, "gateway"),
        (ComponentKind.WIRELESS_NETWORKS, "wlan"),
        (ComponentKind.WIRED_NETWORKS, "internet"),
        (ComponentKind.HOST_COMPUTERS, "host-computers"),
        (ComponentKind.WEB_SERVERS, "web"),
        (ComponentKind.DATABASE_SERVERS, "db"),
        (ComponentKind.APPLICATION_PROGRAMS, "programs"),
        (ComponentKind.APPLICATIONS, "app:shop"),
    ]:
        model.add(Component(kind, name))
    model.connect("users", "stations", EDGE_DATA_FLOW)
    model.connect("stations", "wlan", EDGE_DATA_FLOW)
    model.connect("wlan", "internet", EDGE_DATA_FLOW)
    model.connect("internet", "host-computers", EDGE_DATA_FLOW)
    model.connect("app:shop", "host-computers", EDGE_ASSOCIATION)
    return model


def test_component_kind_validated():
    with pytest.raises(ValueError):
        Component("flying_cars", "x")


def test_duplicate_component_rejected():
    model = SystemModel()
    model.add(Component(ComponentKind.USERS, "users"))
    with pytest.raises(ValueError):
        model.add(Component(ComponentKind.USERS, "users"))


def test_edge_requires_known_components():
    model = SystemModel()
    model.add(Component(ComponentKind.USERS, "users"))
    with pytest.raises(KeyError):
        model.connect("users", "ghost")


def test_edge_kind_validated():
    model = minimal_mc_model()
    with pytest.raises(ValueError):
        model.connect("users", "stations", "teleport")


def test_valid_mc_model_passes():
    report = minimal_mc_model().validate_mc()
    assert report.valid, report.violations


def test_missing_component_detected():
    model = minimal_mc_model()
    model._components.pop("wlan")
    model._edges = [e for e in model._edges
                    if "wlan" not in (e.source, e.target)]
    report = model.validate_mc()
    assert not report.valid
    assert any("wireless_networks" in v for v in report.violations)


def test_broken_flow_chain_detected():
    model = minimal_mc_model()
    model._edges = [e for e in model._edges
                    if not (e.source == "wlan" and e.target == "internet")]
    report = model.validate_mc()
    assert any("data/control-flow path" in v for v in report.violations)


def test_middleware_is_optional_in_mc():
    model = minimal_mc_model()
    model._components.pop("gateway")
    model._edges = [e for e in model._edges
                    if "gateway" not in (e.source, e.target)]
    report = model.validate_mc()
    assert report.valid, report.violations


def test_application_must_reach_host():
    model = minimal_mc_model()
    model._edges = [e for e in model._edges if e.source != "app:shop"]
    report = model.validate_mc()
    assert any("app:shop" in v for v in report.violations)


def test_ec_validation_rejects_wireless():
    model = SystemModel("test-ec")
    for kind, name in [
        (ComponentKind.USERS, "users"),
        (ComponentKind.CLIENT_COMPUTERS, "desktops"),
        (ComponentKind.WIRED_NETWORKS, "internet"),
        (ComponentKind.HOST_COMPUTERS, "host-computers"),
        (ComponentKind.WEB_SERVERS, "web"),
        (ComponentKind.DATABASE_SERVERS, "db"),
        (ComponentKind.APPLICATION_PROGRAMS, "programs"),
        (ComponentKind.APPLICATIONS, "app:shop"),
    ]:
        model.add(Component(kind, name))
    model.connect("users", "desktops", EDGE_DATA_FLOW)
    model.connect("desktops", "internet", EDGE_DATA_FLOW)
    model.connect("internet", "host-computers", EDGE_DATA_FLOW)
    assert model.validate_ec().valid

    model.add(Component(ComponentKind.WIRELESS_NETWORKS, "rogue-wlan"))
    report = model.validate_ec()
    assert any("wireless" in v for v in report.violations)


def test_neighbours_and_flow_path():
    model = minimal_mc_model()
    assert set(model.neighbours("stations", EDGE_DATA_FLOW)) == \
        {"users", "wlan"}
    assert model.flow_path_exists(MC_FLOW_CHAIN)
    assert not model.flow_path_exists(EC_FLOW_CHAIN)


def test_render_structure_mentions_everything():
    model = minimal_mc_model()
    text = render_structure(model, title="MC system")
    assert "MC system" in text
    for name in ("users", "stations", "wlan", "internet", "host-computers"):
        assert name in text
    # Optional components render in parentheses.
    model.component("gateway").optional = True
    text = render_structure(model)
    assert "( gateway )" in text


def test_render_flow_chain():
    model = minimal_mc_model()
    line = render_flow_chain(model, MC_FLOW_CHAIN)
    assert line.startswith("users")
    assert "host-computers" in line
    assert "<==>" in line
