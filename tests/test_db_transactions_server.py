"""Tests for transactions (locking, rollback) and the TCP database server."""

import pytest

from repro.db import (
    Database,
    DatabaseClient,
    DatabaseServer,
    DeadlockError,
    TransactionError,
    TransactionManager,
    execute,
)
from repro.net import Network, Subnet
from repro.sim import Simulator


def make_manager():
    sim = Simulator()
    db = Database()
    execute(db, "CREATE TABLE accounts (id INTEGER PRIMARY KEY, "
                "balance INTEGER NOT NULL)")
    execute(db, "INSERT INTO accounts (id, balance) VALUES (1, 100), (2, 50)")
    return sim, db, TransactionManager(sim, db)


def run_txn(sim, generator):
    outcome = {}

    def wrapper(env):
        try:
            result = yield from generator(env)
            outcome["result"] = result
        except (DeadlockError, TransactionError) as exc:
            outcome["error"] = exc

    sim.spawn(wrapper(sim))
    sim.run(until=60)
    return outcome


# ------------------------------------------------------------ transactions
def test_commit_makes_changes_durable():
    sim, db, mgr = make_manager()

    def work(env):
        txn = mgr.begin()
        yield txn.execute("UPDATE accounts SET balance = 80 WHERE id = 1")
        txn.commit()
        return None

    run_txn(sim, work)
    assert execute(db, "SELECT balance FROM accounts WHERE id = 1").rows == \
        [{"balance": 80}]
    assert mgr.committed == 1


def test_rollback_restores_before_image():
    sim, db, mgr = make_manager()

    def work(env):
        txn = mgr.begin()
        yield txn.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        yield txn.execute("DELETE FROM accounts WHERE id = 2")
        txn.rollback()
        return None

    run_txn(sim, work)
    rows = execute(db, "SELECT * FROM accounts ORDER BY id").rows
    assert rows == [{"id": 1, "balance": 100}, {"id": 2, "balance": 50}]
    assert mgr.aborted == 1


def test_rollback_restores_pk_index():
    sim, db, mgr = make_manager()

    def work(env):
        txn = mgr.begin()
        yield txn.execute("DELETE FROM accounts WHERE id = 1")
        txn.rollback()
        return None

    run_txn(sim, work)
    # PK index must be restored: a lookup and a duplicate-insert both work.
    assert execute(db, "SELECT * FROM accounts WHERE id = 1").rowcount == 1
    from repro.db import IntegrityError
    with pytest.raises(IntegrityError):
        execute(db, "INSERT INTO accounts (id, balance) VALUES (1, 1)")


def test_write_blocks_concurrent_write():
    sim, db, mgr = make_manager()
    order = []

    def writer(env, tag, hold):
        txn = mgr.begin()
        yield txn.execute(
            "UPDATE accounts SET balance = balance WHERE id = 1")
        order.append((tag, "locked", env.now))
        yield env.timeout(hold)
        txn.commit()
        order.append((tag, "done", env.now))

    sim.spawn(writer(sim, "first", 2.0))
    sim.spawn(writer(sim, "second", 0.1))
    sim.run(until=60)
    locked = [(tag, t) for tag, what, t in order if what == "locked"]
    assert locked[0][0] == "first"
    assert locked[1][0] == "second"
    assert locked[1][1] >= 2.0  # waited for the first commit


def test_readers_share():
    sim, db, mgr = make_manager()
    times = []

    def reader(env, tag):
        txn = mgr.begin()
        yield txn.execute("SELECT * FROM accounts")
        times.append((tag, env.now))
        yield env.timeout(1.0)
        txn.commit()

    sim.spawn(reader(sim, "r1"))
    sim.spawn(reader(sim, "r2"))
    sim.run(until=30)
    assert all(t == times[0][1] for _, t in times)  # no serialization


def test_lock_timeout_raises_deadlock_error():
    sim, db, mgr = make_manager()
    mgr.lock_timeout = 1.0
    errors = []

    def holder(env):
        txn = mgr.begin()
        yield txn.execute("UPDATE accounts SET balance = 1 WHERE id = 1")
        yield env.timeout(10.0)  # hold the lock past the victim's timeout
        txn.commit()

    def victim(env):
        yield env.timeout(0.1)
        txn = mgr.begin()
        try:
            yield txn.execute("UPDATE accounts SET balance = 2 WHERE id = 1")
        except DeadlockError as exc:
            errors.append(exc)

    sim.spawn(holder(sim))
    sim.spawn(victim(sim))
    sim.run(until=60)
    assert len(errors) == 1


def test_finished_transaction_rejects_use():
    sim, db, mgr = make_manager()

    def work(env):
        txn = mgr.begin()
        yield txn.execute("SELECT * FROM accounts")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.execute("SELECT * FROM accounts")
        with pytest.raises(TransactionError):
            txn.commit()
        txn.rollback()  # no-op after commit
        return None

    outcome = run_txn(sim, work)
    assert "error" not in outcome


# ----------------------------------------------------------------- server
def server_world():
    sim = Simulator()
    net = Network(sim)
    host = net.add_node("dbhost")
    client_node = net.add_node("appserver")
    net.connect(host, client_node, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=100_000_000, delay=0.001)
    net.build_routes()
    server = DatabaseServer(host)
    execute(server.database,
            "CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT)")
    execute(server.database,
            "INSERT INTO products (id, name) VALUES (1, 'phone')")
    client = DatabaseClient(client_node, host.primary_address)
    return sim, server, client


def test_server_query_round_trip():
    sim, server, client = server_world()
    replies = []

    def app(env):
        yield client.connect()
        reply = yield client.query("SELECT * FROM products WHERE id = ?",
                                   (1,))
        replies.append(reply)

    sim.spawn(app(sim))
    sim.run(until=30)
    assert replies[0]["ok"]
    assert replies[0]["rows"] == [{"id": 1, "name": "phone"}]
    assert replies[0]["access_path"] == "index(products.id)"


def test_server_reports_errors():
    sim, server, client = server_world()
    replies = []

    def app(env):
        yield client.connect()
        reply = yield client.query("SELECT * FROM nonexistent")
        replies.append(reply)

    sim.spawn(app(sim))
    sim.run(until=30)
    assert not replies[0]["ok"]
    assert "nonexistent" in replies[0]["error"]
    assert server.stats.get("errors") == 1


def test_server_transaction_commit_and_rollback():
    sim, server, client = server_world()
    results = {}

    def app(env):
        yield client.connect()
        yield client.begin()
        yield client.query("INSERT INTO products (id, name) VALUES (2, 'case')")
        yield client.rollback()
        check = yield client.query("SELECT * FROM products")
        results["after_rollback"] = check["rowcount"]

        yield client.begin()
        yield client.query("INSERT INTO products (id, name) VALUES (3, 'cord')")
        yield client.commit()
        check = yield client.query("SELECT * FROM products")
        results["after_commit"] = check["rowcount"]

    sim.spawn(app(sim))
    sim.run(until=60)
    assert results["after_rollback"] == 1
    assert results["after_commit"] == 2


def test_server_connection_close_rolls_back():
    sim, server, client = server_world()

    def app(env):
        yield client.connect()
        yield client.begin()
        yield client.query("INSERT INTO products (id, name) VALUES (9, 'x')")
        client.close()

    sim.spawn(app(sim))
    sim.run(until=30)
    assert execute(server.database, "SELECT * FROM products").rowcount == 1


def test_two_clients_isolated_sessions():
    sim = Simulator()
    net = Network(sim)
    host = net.add_node("dbhost")
    c1 = net.add_node("app1")
    c2 = net.add_node("app2")
    net.connect(host, c1, Subnet.parse("10.0.1.0/24"), delay=0.001)
    net.connect(host, c2, Subnet.parse("10.0.2.0/24"), delay=0.001)
    net.build_routes()
    server = DatabaseServer(host)
    execute(server.database,
            "CREATE TABLE counters (id INTEGER PRIMARY KEY, n INTEGER)")
    execute(server.database,
            "INSERT INTO counters (id, n) VALUES (1, 0)")
    done = []

    def bump(env, node):
        client = DatabaseClient(node, host.primary_address)
        yield client.connect()
        for _ in range(5):
            reply = yield client.query(
                "SELECT n FROM counters WHERE id = 1")
            n = reply["rows"][0]["n"]
            yield client.query(
                "UPDATE counters SET n = ? WHERE id = 1", (n + 1,))
        done.append(node.name)

    sim.spawn(bump(sim, c1))
    sim.spawn(bump(sim, c2))
    sim.run(until=120)
    assert sorted(done) == ["app1", "app2"]
    final = execute(server.database,
                    "SELECT n FROM counters WHERE id = 1").rows[0]["n"]
    assert final >= 5  # lost updates possible in autocommit; sessions ran
