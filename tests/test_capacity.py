"""Capacity engineering tests (DESIGN.md §13): gateway batching,
composed admission control, RAN backpressure and honest goodput
accounting — the machinery that removes the 500-user overload cliff."""

import dataclasses

import pytest

from repro.core import MCSystemBuilder
from repro.middleware.base import BatchConfig, RequestBatcher, frame_reply
from repro.perf import bench_resilience, check_capacity_curve, run_bench
from repro.resilience import ResilienceConfig
from repro.sim import SeedBank, Simulator
from repro.wireless.cellular import BaseStation, CellularNetwork
from repro.wireless.mobility import Position
from repro.wireless.standards import cellular_standard
from repro.net import Network


# ---------------------------------------------------------- BatchConfig
def test_batch_config_validation():
    with pytest.raises(ValueError):
        BatchConfig(window=-0.1)
    with pytest.raises(ValueError):
        BatchConfig(max_batch=0)
    with pytest.raises(ValueError):
        BatchConfig(watermark=-1)
    with pytest.raises(ValueError):
        BatchConfig(retry_floor=-1.0)
    with pytest.raises(ValueError):
        BatchConfig(jitter=1.0)
    with pytest.raises(ValueError):
        BatchConfig(per_item_cost=-0.5)
    with pytest.raises(ValueError):
        BatchConfig(reserve_factor=0.5)
    with pytest.raises(ValueError):
        BatchConfig(pressure_threshold=-1)


def test_batch_config_drain_gap_scales_with_reserve_factor():
    cfg = BatchConfig(window=0.4, max_batch=4)
    assert cfg.drain_gap == pytest.approx(0.1)
    spaced = BatchConfig(window=0.4, max_batch=4, reserve_factor=5.0)
    assert spaced.drain_gap == pytest.approx(0.5)


# -------------------------------------------------------- RequestBatcher
def _make_batcher(sim, config, handler=None, stream=None, pressure=None):
    if handler is None:
        def handler(request, parent=None):
            if False:
                yield
            return frame_reply(200, "ok")
    return RequestBatcher(sim, config, handler, frame_reply,
                          stream=stream, pressure=pressure)


def test_batcher_paces_flushes_by_window_and_max_batch():
    sim = Simulator()
    served = []

    def handler(request, parent=None):
        if False:
            yield
        served.append((sim.now, request))
        return frame_reply(200, "ok")

    batcher = _make_batcher(
        sim, BatchConfig(window=1.0, max_batch=2), handler=handler)
    replies = [batcher.submit(f"req-{n}") for n in range(6)]
    sim.run(until=10)
    assert all(reply.value["status"] == 200 for reply in replies)
    # 6 requests, 2 per flush, one flush per second: t=0, 1, 2.
    flush_times = sorted({when for when, _ in served})
    assert flush_times == [0.0, 1.0, 2.0]
    assert batcher.stats.get("batches") == 3
    assert batcher.stats.get("batched_requests") == 6


def test_batcher_per_item_cost_is_pipelined_within_a_flush():
    sim = Simulator()
    served = []

    def handler(request, parent=None):
        if False:
            yield
        served.append(sim.now)
        return frame_reply(200, "ok")

    batcher = _make_batcher(
        sim, BatchConfig(window=0.0, max_batch=4, per_item_cost=0.01),
        handler=handler)
    for n in range(4):
        batcher.submit(n)
    sim.run(until=1)
    # Each item starts one per-item cost after the previous — never two
    # handlers in the same kernel batch, where their dispatch order
    # would be observable (the commutativity sanitizer flags that).
    assert served == [pytest.approx(0.01 * (n + 1)) for n in range(4)]
    assert batcher.stats.get("batches") == 1


def test_batcher_watermark_sheds_with_growing_reservation_hints():
    sim = Simulator()
    # A huge window means nothing drains during the test.
    cfg = BatchConfig(window=100.0, max_batch=2, watermark=1,
                      retry_floor=1.0, jitter=0.0, reserve_factor=4.0)
    batcher = _make_batcher(sim, cfg)

    admitted = batcher.submit("first")
    sheds = [batcher.submit(f"excess-{n}") for n in range(3)]
    # Shed replies settle synchronously; the admitted one waits.
    assert not admitted.triggered
    hints = []
    for reply in sheds:
        assert reply.triggered
        assert reply.value["status"] == 503
        hints.append(reply.value["meta"]["retry_after"])
    # Virtual-FIFO reservations: floor first, then one drain_gap apart
    # (reserve_factor over-spaces the returns).
    gap = cfg.drain_gap
    assert hints[0] == pytest.approx(1.0)
    assert hints[1] == pytest.approx(1.0 + gap)
    assert hints[2] == pytest.approx(1.0 + 2 * gap)
    assert batcher.stats.get("admission_sheds") == 3


def test_batcher_shed_jitter_is_seeded_and_bounded():
    def hints_for(seed):
        sim = Simulator()
        cfg = BatchConfig(window=100.0, max_batch=1, watermark=1,
                          retry_floor=1.0, jitter=0.2)
        batcher = _make_batcher(sim, cfg,
                                stream=SeedBank(seed).stream("adm"))
        batcher.submit("fills the queue")
        return [batcher.submit(n).value["meta"]["retry_after"]
                for n in range(4)]

    assert hints_for(3) == hints_for(3)  # same seed, same spread
    cfg = BatchConfig(window=100.0, max_batch=1, watermark=1,
                      retry_floor=1.0, jitter=0.2)
    base = 1.0
    for hint in hints_for(3):
        assert base * 0.8 <= hint <= base * 1.2
        base += cfg.drain_gap


def test_batcher_pressure_gate_sheds_on_upstream_congestion():
    sim = Simulator()
    backlog = {"value": 0}
    cfg = BatchConfig(window=100.0, max_batch=2, retry_floor=0.5,
                      jitter=0.0, pressure_threshold=3)
    batcher = _make_batcher(sim, cfg,
                            pressure=lambda: backlog["value"])

    calm = batcher.submit("radio quiet")
    assert not calm.triggered  # queued for service, not shed

    backlog["value"] = 3  # radio hits the threshold
    shed = batcher.submit("radio congested")
    assert shed.triggered
    assert shed.value["status"] == 503
    assert b"air interface" in shed.value["body"]
    assert shed.value["meta"]["retry_after"] >= 0.5
    assert batcher.stats.get("pressure_sheds") == 1
    assert batcher.stats.get("admission_sheds") == 0


def test_batcher_pressure_gate_off_without_threshold_or_probe():
    sim = Simulator()
    # Probe says "congested" but the threshold is 0: everything queues.
    batcher = _make_batcher(sim, BatchConfig(window=100.0),
                            pressure=lambda: 10_000)
    assert not batcher.submit("x").triggered
    # Threshold set but no probe wired (e.g. WLAN bearer): no gate.
    ungated = _make_batcher(
        sim, BatchConfig(window=100.0, pressure_threshold=1))
    assert not ungated.submit("y").triggered


# -------------------------------------------------- RAN backpressure probe
def _gprs_cell():
    sim = Simulator()
    network = Network(sim)
    core = network.add_node("ggsn", forwarding=True)
    cellnet = CellularNetwork(network, core, cellular_standard("GPRS"))
    return sim, cellnet.add_base_station("cell-0", Position(0.0, 0.0))


def test_air_backlog_counts_airtime_waiters():
    sim, station = _gprs_cell()
    assert station.air_backlog() == 0
    granted = station.shared_airtime.request()
    assert granted.triggered
    assert station.air_backlog() == 0  # a holder is not a waiter
    station.shared_airtime.request()
    station.shared_airtime.request()
    assert station.air_backlog() == 2
    station.shared_airtime.release(granted)
    assert station.air_backlog() == 1


def test_air_backlog_zero_for_circuit_switched_cells():
    sim = Simulator()
    network = Network(sim)
    core = network.add_node("msc", forwarding=True)
    cellnet = CellularNetwork(network, core, cellular_standard("GSM"))
    station = cellnet.add_base_station("cell-0", Position(0.0, 0.0))
    assert station.shared_airtime is None
    assert station.air_backlog() == 0


# ------------------------------------------------------- builder wiring
def test_standby_ports_derive_from_primary_not_hardcoded():
    config = ResilienceConfig()
    system = MCSystemBuilder(seed=2, resilience=config,
                             middleware_port=7777).build()
    assert system.gateway.port == 7777
    assert system.standby_gateway.port == 7777 + config.standby_port_offset
    primary = system.registry.lookup_service("middleware")
    standby = system.registry.lookup_service("middleware-standby")
    assert primary.port == system.gateway.port
    assert standby.port == system.standby_gateway.port


def test_standby_port_offset_is_configurable():
    config = ResilienceConfig(standby_port_offset=25)
    system = MCSystemBuilder(seed=2, resilience=config).build()
    assert (system.standby_gateway.port
            == system.gateway.port + 25)


def test_builder_wires_air_pressure_probe_for_cellular_only():
    config = ResilienceConfig(gateway_batching=True,
                              air_pressure_threshold=4,
                              standby_gateway=False,
                              direct_fallback=False)
    cellular = MCSystemBuilder(seed=2, resilience=config,
                               bearer=("cellular", "GPRS")).build()
    assert cellular.gateway.batcher is not None
    assert cellular.gateway.batcher.pressure is not None
    assert cellular.gateway.batcher.pressure() == 0  # idle radio
    wlan = MCSystemBuilder(seed=2, resilience=config,
                           bearer=("wlan", "802.11b")).build()
    assert wlan.gateway.batcher.pressure is None


# --------------------------------------------------- capacity curve check
def test_check_capacity_curve_accepts_monotone_goodput():
    points = [
        {"users": 50, "admitted": 200, "goodput_tps": 0.8},
        {"users": 150, "admitted": 500, "goodput_tps": 2.1},
        {"users": 300, "admitted": 700, "goodput_tps": 2.0},  # within 5%
    ]
    verdict = check_capacity_curve(points)
    assert verdict["monotone"] is True
    assert verdict["regressions"] == []


def test_check_capacity_curve_flags_the_overload_cliff():
    points = [
        {"users": 50, "admitted": 200, "goodput_tps": 0.8},
        {"users": 500, "admitted": 2000, "goodput_tps": 0.05},  # cliff
    ]
    verdict = check_capacity_curve(points)
    assert verdict["monotone"] is False
    assert verdict["regressions"][0]["users"] == 500
    assert verdict["regressions"][0]["previous_best"] == 0.8


# ------------------------------------------------------- bench integration
SMALL = dict(users=5, seed=11, transactions_per_user=2, horizon=90.0,
             trace=False)


def _passthrough_batching(**overrides):
    """Batching on, but shaped to add zero virtual delay and no sheds."""
    return ResilienceConfig(
        gateway_batching=True, batch_window=0.0, batch_max=8,
        batch_item_cost=0.0, admission_watermark=0,
        standby_gateway=False, direct_fallback=False, **overrides)


def test_batching_is_transparent_on_the_untraced_wire():
    """A zero-delay batcher must not change what the wire carries."""
    batched = run_bench(resilience=_passthrough_batching(), **SMALL)
    unbatched = run_bench(
        resilience=dataclasses.replace(_passthrough_batching(),
                                       gateway_batching=False),
        **SMALL)
    det_a = dict(batched["deterministic"])
    det_b = dict(unbatched["deterministic"])
    # The batcher runs its own flush processes (different kernel event
    # totals) and reports its own counters; everything the *clients*
    # can observe — counts, latencies, retries — must be identical.
    for key in ("kernel_events", "gateway_admission"):
        det_a.pop(key), det_b.pop(key)
    assert det_a == det_b
    admission = batched["deterministic"]["gateway_admission"]
    assert admission["batched_requests"] == det_a["completed"] * 3
    assert admission["sheds"] == 0


def test_accounting_reports_offered_vs_admitted_vs_succeeded():
    report = run_bench(resilience=bench_resilience(), **SMALL)
    det = report["deterministic"]
    assert det["offered"] == SMALL["users"] * SMALL["transactions_per_user"]
    assert det["started"] <= det["offered"]
    assert det["admitted"] == det["started"] - det["rejected"]
    assert det["succeeded"] <= det["completed"] <= det["started"]
    assert det["success_vs_offered"] == pytest.approx(
        det["succeeded"] / det["offered"])


def test_deprecated_success_rate_is_gone_from_bench_output():
    """success_rate divided by *completed*, so a gateway that strands
    most of the offered load could still report near-perfect success.
    The field is now removed outright from the bench deterministic
    section; success_vs_offered is the honest replacement and must
    still expose the stranded work."""
    throttled = dataclasses.replace(
        bench_resilience(), batch_window=2.0, batch_max=1,
        admission_watermark=0, air_pressure_threshold=0)
    report = run_bench(users=5, seed=11, transactions_per_user=4,
                       horizon=40.0, trace=False, resilience=throttled)
    det = report["deterministic"]
    assert "success_rate" not in det
    assert det["completed"] < det["offered"]
    assert det["success_vs_offered"] < det["succeeded"] / det["completed"]


def test_saturation_serves_admitted_work_and_sheds_the_excess():
    """Overload behaviour after the fix: admitted transactions succeed
    (>= 90%) while the excess is shed with 503 + Retry-After instead of
    collapsing the cell."""
    report = run_bench(users=120, seed=7, transactions_per_user=4,
                       horizon=120.0, trace=False,
                       resilience=bench_resilience())
    det = report["deterministic"]
    admission = det["gateway_admission"]
    assert admission["sheds"] > 0  # the excess was turned away
    assert det["succeeded"] > 0
    # Work the gateway admitted (started minus shed-by-design) succeeds.
    assert det["succeeded"] / det["admitted"] >= 0.9
    # The shed excess is visible to clients as 503s, not timeouts.
    assert det["shed_503s"] > 0
