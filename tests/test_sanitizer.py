"""Tests for the dynamic commutativity sanitizer: tracked containers,
batch hazard detection, flip replay, and the scenario driver."""

import json

import pytest

from repro.analysis.races import (
    AccessRecorder,
    BatchSanitizer,
    FlipDirective,
    TrackedDict,
    TrackedList,
    install_sanitizer,
)
from repro.analysis.races.runner import run_sanitize
from repro.analysis.races.sanitizer import first_divergence, state_hash
from repro.sim import Simulator


# -- tracked containers ------------------------------------------------------

def test_tracked_dict_behaves_like_dict():
    recorder = AccessRecorder()
    tracked = TrackedDict({"a": 1}, recorder, "t")
    tracked["b"] = 2
    assert tracked == {"a": 1, "b": 2}
    assert tracked.get("a") == 1
    assert "a" in tracked
    assert sorted(tracked) == ["a", "b"]
    assert tracked.pop("b") == 2
    assert json.dumps(tracked) == '{"a": 1}'


def test_tracked_dict_records_only_inside_events():
    recorder = AccessRecorder()
    tracked = TrackedDict({}, recorder, "t")
    tracked["ambient"] = 1          # no current event: not recorded
    assert recorder.writes == {}
    recorder.begin_event(0)
    tracked["k"] = 2
    value = tracked.get("k")
    assert value == 2
    assert ("t", "k") in recorder.writes[0]
    assert ("t", "k") in recorder.reads[0]


def test_tracked_list_records_wildcard_writes():
    recorder = AccessRecorder()
    tracked = TrackedList([1], recorder, "l")
    recorder.begin_event(3)
    tracked.append(2)
    assert ("l", "*") in recorder.writes[3]
    assert list(tracked) == [1, 2]


# -- batch hazard detection --------------------------------------------------

def _run_pair(order=("alice", "bob"), flip=None, record=True):
    """Two processes race on one dict key in a same-timestamp batch."""
    recorder = AccessRecorder() if record else None
    sanitizer = BatchSanitizer(recorder, flip=flip)
    sim = Simulator()
    install_sanitizer(sim, sanitizer)
    shared = TrackedDict({"winner": None, "hits": 0},
                         recorder or AccessRecorder(), "shared")

    def contender(name):
        def loop(env):
            yield env.timeout(2.0)
            shared["winner"] = name
            shared["hits"] = shared["hits"] + 1
        return loop

    for name in order:
        sim.spawn(contender(name)(sim), name=name)
    sim.run()
    sanitizer.finalize()
    return sanitizer, dict(shared)


def test_same_batch_write_write_is_flagged():
    sanitizer, state = _run_pair()
    assert state["winner"] == "bob"          # last writer wins
    assert state["hits"] == 2
    assert len(sanitizer.hazards) == 1
    hazard = sanitizer.hazards[0]
    assert hazard["time"] == 2.0
    states = {key["state"] for key in hazard["keys"]}
    assert "shared['winner']" in states
    kinds = {key["kind"] for key in hazard["keys"]}
    assert "write/write" in kinds
    assert len(hazard["flip_seqs"]) == 2


def test_disjoint_keys_are_not_a_hazard():
    recorder = AccessRecorder()
    sanitizer = BatchSanitizer(recorder)
    sim = Simulator()
    install_sanitizer(sim, sanitizer)
    shared = TrackedDict({}, recorder, "shared")

    def writer(key):
        def loop(env):
            yield env.timeout(1.0)
            shared[key] = True
        return loop

    sim.spawn(writer("a")(sim), name="a")
    sim.spawn(writer("b")(sim), name="b")
    sim.run()
    sanitizer.finalize()
    assert sanitizer.hazards == []


def test_read_read_is_not_a_hazard():
    recorder = AccessRecorder()
    sanitizer = BatchSanitizer(recorder)
    sim = Simulator()
    install_sanitizer(sim, sanitizer)
    shared = TrackedDict({"k": 1}, recorder, "shared")

    def reader(env):
        yield env.timeout(1.0)
        value = shared["k"]
        return value

    sim.spawn(reader(sim), name="r1")
    sim.spawn(reader(sim), name="r2")
    sim.run()
    sanitizer.finalize()
    assert sanitizer.hazards == []


def test_flip_directive_transposes_the_pair():
    baseline_sanitizer, baseline = _run_pair()
    seq_a, seq_b = baseline_sanitizer.hazards[0]["flip_seqs"]
    ordinal = baseline_sanitizer.hazards[0]["batch"]
    flip = FlipDirective(ordinal, seq_a, seq_b, mode="pair")
    _, flipped = _run_pair(flip=flip, record=False)
    assert flip.applied
    assert flipped["winner"] == "alice"      # order reversed
    assert flipped["hits"] == baseline["hits"] == 2


def test_flip_directive_batch_mode_reverses():
    baseline_sanitizer, baseline = _run_pair()
    ordinal = baseline_sanitizer.hazards[0]["batch"]
    flip = FlipDirective(ordinal, mode="batch")
    _, flipped = _run_pair(flip=flip, record=False)
    assert flip.applied
    assert flipped["winner"] == "alice"


def test_sanitizer_off_has_no_kernel_effect():
    # Two identical runs, sanitizer installed on one only: same state.
    _, with_sanitizer = _run_pair()
    sim = Simulator()
    shared = {"winner": None, "hits": 0}

    def contender(name):
        def loop(env):
            yield env.timeout(2.0)
            shared["winner"] = name
            shared["hits"] = shared["hits"] + 1
        return loop

    for name in ("alice", "bob"):
        sim.spawn(contender(name)(sim), name=name)
    sim.run()
    assert shared == with_sanitizer


# -- the scenario driver -----------------------------------------------------

def test_planted_race_is_confirmed_with_diff():
    report = run_sanitize("planted-race")
    assert report["verdict"] == "FAIL"
    assert report["confirmed_races"] == 1
    assert report["hazards_found"] == 1
    confirmation = report["confirmations"][0]
    assert confirmation["verdict"] == "CONFIRMED"
    assert confirmation["baseline_hash"] != confirmation["flipped_hash"]
    diff = confirmation["diff"]
    assert diff is not None and "winner" in diff["baseline"]
    states = {key["state"] for key in report["hazards"][0]["keys"]}
    assert "planted.shared['winner']" in states


def test_planted_race_batch_flip_also_confirms():
    report = run_sanitize("planted-race", flip_mode="batch")
    assert report["confirmed_races"] == 1


def test_bench_scenario_reports_zero_confirmed_races():
    report = run_sanitize("bench", users=10, transactions=2, horizon=60.0)
    assert report["verdict"] == "PASS"
    assert report["confirmed_races"] == 0
    # The run must actually be instrumented and batched.
    assert len(report["instrumented"]) >= 20
    assert report["multi_event_batches"] > 0
    assert report["events"] > 1000


@pytest.mark.parametrize("scenario", ["gateway-outage", "dns-blackout"])
def test_chaos_scenarios_report_zero_confirmed_races(scenario):
    report = run_sanitize(scenario, stations=3, transactions=2,
                          horizon=90.0)
    assert report["verdict"] == "PASS"
    assert report["confirmed_races"] == 0
    assert report["multi_event_batches"] > 0


def test_unknown_scenario_raises():
    with pytest.raises(ValueError):
        run_sanitize("no-such-scenario")
    with pytest.raises(ValueError):
        run_sanitize("bench", flip_mode="sideways")


def test_instrumented_bench_is_byte_identical_to_plain():
    # The tracked containers must not change any deterministic output.
    from repro.analysis.races.sanitizer import (
        instrument_system,
        null_recorder,
    )
    from repro.perf.loadgen import run_bench

    kwargs = dict(users=5, seed=7, transactions_per_user=2,
                  horizon=60.0, trace=False)
    plain = run_bench(**kwargs)

    def post_build(system, engine):
        instrument_system(system, null_recorder(), engine)

    instrumented = run_bench(post_build=post_build, **kwargs)
    assert json.dumps(plain["deterministic"], sort_keys=True) == \
        json.dumps(instrumented["deterministic"], sort_keys=True)


# -- helpers -----------------------------------------------------------------

def test_state_hash_and_first_divergence():
    a = '{\n  "x": 1,\n  "y": 2\n}'
    b = '{\n  "x": 1,\n  "y": 3\n}'
    assert state_hash(a) != state_hash(b)
    assert first_divergence(a, a) is None
    diff = first_divergence(a, b)
    assert diff["line"] == 3
    assert "2" in diff["baseline"] and "3" in diff["flipped"]


# -- CLI ---------------------------------------------------------------------

def test_cli_sanitize_planted_race(capsys):
    from repro.__main__ import main

    assert main(["sanitize", "planted-race"]) == 1
    out = capsys.readouterr().out
    assert "CONFIRMED" in out
    assert "FAIL" in out


def test_cli_sanitize_writes_json(tmp_path, capsys):
    from repro.__main__ import main

    out_path = tmp_path / "sanitize.json"
    assert main(["sanitize", "planted-race",
                 "--json", str(out_path)]) == 1
    report = json.loads(out_path.read_text())
    assert report["confirmed_races"] == 1
    assert report["confirmations"][0]["verdict"] == "CONFIRMED"


def test_cli_races_strict_on(tmp_path, capsys):
    from repro.__main__ import main

    matrix_path = tmp_path / "matrix.json"
    code = main(["races", "src/repro",
                 "--strict-on", "src/repro/faults",
                 "src/repro/resilience", "src/repro/sim",
                 "--json", str(matrix_path)])
    assert code == 0
    artifact = json.loads(matrix_path.read_text())
    assert artifact["cross_process_keys"] > 50
    assert artifact["processes"]
    out = capsys.readouterr().out
    assert "shared-state" in out
