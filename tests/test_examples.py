"""Smoke tests: every example script runs to completion and reports success.

Examples are documentation that executes; these tests keep them honest.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    out = run_example("quickstart", capsys)
    assert "Figure 2 validation: OK" in out
    assert "outcome: OK" in out
    assert "account balance now $801.00" in out


def test_mobile_shop_example(capsys):
    out = run_example("mobile_shop", capsys)
    assert out.count("success rate: 100%") == 2
    assert "the application code never changed" in out


def test_inventory_dispatch_example(capsys):
    out = run_example("inventory_dispatch", capsys)
    assert "Cell handoffs during the run: 1" in out
    assert "Dispatcher: OK" in out
    assert "dispatched" in out


def test_roaming_handoff_example(capsys):
    out = run_example("roaming_handoff", capsys)
    assert "download complete" in out
    assert "registered via foreign agent (accepted=True)" in out
    assert "snoop hides" in out


def test_offline_sync_example(capsys):
    out = run_example("offline_sync", capsys)
    assert "pulled 2 assignments" in out
    assert "failed cleanly" in out
    assert "pushed 3 records" in out
    assert "corroded valve" in out
