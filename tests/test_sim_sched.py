"""Tests for repro.sim.sched: the pluggable scheduler abstraction, the
calendar queue's edge cases, and heap-vs-calendar equivalence."""

# Seeded local Random instances only — never the module-level RNG.
import random  # repro: noqa[module-random] seeded property-test streams

import pytest

from repro.sim import (
    CalendarScheduler,
    HeapScheduler,
    SCHEDULERS,
    Simulator,
    make_scheduler,
    scheduler_override,
)


class FakeEvent:
    __slots__ = ("_cancelled",)

    def __init__(self):
        self._cancelled = False


def drain(sched):
    """Every live entry, in dispatch order."""
    order = []
    while True:
        batch = sched.pop_batch(None)
        if not batch:
            return order
        order.extend(batch)


# ------------------------------------------------------------- registry
def test_registry_and_factory():
    assert set(SCHEDULERS) == {"heap", "calendar"}
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    assert isinstance(make_scheduler("calendar"), CalendarScheduler)
    with pytest.raises(ValueError):
        make_scheduler("splay")


def test_scheduler_override_restores_default():
    with scheduler_override("heap"):
        assert Simulator().scheduler_name == "heap"
    assert Simulator().scheduler_name == "calendar"


def test_calendar_rejects_bad_geometry():
    with pytest.raises(ValueError):
        CalendarScheduler(buckets=48)
    with pytest.raises(ValueError):
        CalendarScheduler(width=0.0)


# ----------------------------------------------- same-timestamp ordering
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_same_timestamp_batch_is_seq_ordered(name):
    sched = make_scheduler(name)
    # One timestamp, pushed out of seq order through both entry points.
    sched.push(5.0, 1, 30, FakeEvent())
    sched.push(5.0, 1, 10, FakeEvent())
    sched.push(5.0, 1, 20, FakeEvent())
    batch = sched.pop_batch(None)
    assert [entry[2] for entry in batch] == [10, 20, 30]


def test_same_timestamp_across_bucket_boundary():
    """Entries at one instant must dispatch together even when the
    timestamp sits exactly on a bucket-width boundary and neighbours
    land one day apart."""
    sched = CalendarScheduler(buckets=64, width=0.05)
    boundary = 0.05 * 7  # exactly day 7's left edge
    events = [FakeEvent() for _ in range(6)]
    sched.push(boundary, 1, 2, events[0])
    sched.push(boundary - 1e-9, 1, 1, events[1])   # previous day
    sched.push(boundary, 1, 3, events[2])
    sched.push(boundary + 0.05, 1, 4, events[3])   # next day
    first = sched.pop_batch(None)
    assert [entry[2] for entry in first] == [1]
    second = sched.pop_batch(None)
    assert [entry[2] for entry in second] == [2, 3]
    third = sched.pop_batch(None)
    assert [entry[2] for entry in third] == [4]


# -------------------------------------------------- tombstones / cancels
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_mass_timeout_cancellation(name):
    """Cancel hundreds of pending timeouts; none may fire and the live
    count must reflect only survivors."""
    with scheduler_override(name):
        sim = Simulator()
    fired = []
    timers = []
    for index in range(400):
        timer = sim.timeout(1.0 + index * 0.01)
        timer.callbacks.append(lambda ev, i=index: fired.append(i))
        timers.append(timer)
    keep = [timer for index, timer in enumerate(timers) if index % 50 == 0]
    for index, timer in enumerate(timers):
        if index % 50:
            timer.cancel()
    assert sim.queue_depth() == len(keep)
    sim.run()
    assert fired == [0, 50, 100, 150, 200, 250, 300, 350]
    assert sim.queue_depth() == 0


def test_peek_skips_cancelled_head():
    sched = CalendarScheduler()
    dead = FakeEvent()
    sched.push(1.0, 1, 1, dead)
    sched.push(2.0, 1, 2, FakeEvent())
    dead._cancelled = True
    sched.tombstones += 1
    assert sched.peek_time() == 2.0
    assert sched.live_count() == 1


# ------------------------------------------------------- wheel geometry
def test_bucket_resize_mid_run_preserves_order():
    """Push enough to force doubling, drain enough to force halving;
    dispatch order must stay the total (time, priority, seq) order."""
    sched = CalendarScheduler(buckets=64, width=0.05)
    rng = random.Random(11)
    entries = []
    for seq in range(1000):  # 1000 > 2*64 forces growth
        entry = (rng.uniform(0.0, 30.0), 1, seq, FakeEvent())
        entries.append(entry)
        sched.push(*entry)
    assert sched._nb > 64
    got = drain(sched)
    assert [e[:3] for e in got] == [e[:3] for e in sorted(entries)]
    assert sched._nb < 1024  # drained: halved back down


def test_empty_wheel_peek_and_pop():
    sched = CalendarScheduler()
    assert sched.peek_time() == float("inf")
    assert sched.pop_batch(None) == []
    assert sched.pop_one() is None
    assert len(sched) == 0 and sched.live_count() == 0
    # A sparse far-future population after the empties must still work.
    sched.push(1e6, 1, 1, FakeEvent())
    assert sched.peek_time() == 1e6


def test_until_excludes_later_entries():
    sched = CalendarScheduler()
    sched.push(5.0, 1, 1, FakeEvent())
    assert sched.pop_batch(4.0) == []
    assert sched.pop_batch(5.0)[0][2] == 1


# --------------------------------------------------------- equivalence
def test_heap_calendar_equivalence_property():
    """Random push/pop/cancel interleavings give byte-identical
    dispatch sequences on both schedulers."""
    for seed in range(5):
        rng = random.Random(seed)
        heap, cal = HeapScheduler(), CalendarScheduler()
        seq = 0
        now = 0.0
        pending = []
        heap_order, cal_order = [], []
        for _ in range(120):
            action = rng.random()
            if action < 0.55:
                seq += 1
                delay = rng.choice([0.0, rng.uniform(0.0, 0.2),
                                    rng.uniform(0.0, 50.0)])
                priority = 0 if rng.random() < 0.05 else 1
                ev_h, ev_c = FakeEvent(), FakeEvent()
                if delay == 0.0 and priority == 1:
                    heap.push_now(now, seq, ev_h)
                    cal.push_now(now, seq, ev_c)
                else:
                    heap.push(now + delay, priority, seq, ev_h)
                    cal.push(now + delay, priority, seq, ev_c)
                pending.append((ev_h, ev_c))
            elif action < 0.65 and pending:
                ev_h, ev_c = pending.pop(rng.randrange(len(pending)))
                ev_h._cancelled = ev_c._cancelled = True
                heap.tombstones += 1
                cal.tombstones += 1
            else:
                bh = heap.pop_batch(None)
                bc = cal.pop_batch(None)
                assert [e[:3] for e in bh] == [e[:3] for e in bc]
                if bh:
                    now = bh[0][0]
                    popped = {id(e[3]) for e in bh}
                    pending = [pair for pair in pending
                               if id(pair[0]) not in popped]
                heap_order.extend(e[:3] for e in bh)
                cal_order.extend(e[:3] for e in bc)
        heap_order.extend(e[:3] for e in drain(heap))
        cal_order.extend(e[:3] for e in drain(cal))
        assert heap_order == cal_order
        assert heap.live_count() == cal.live_count() == 0


def test_kernel_results_identical_across_schedulers():
    """A small end-to-end simulation gives the same trace either way."""
    def pinger(env, log):
        for index in range(5):
            yield env.timeout(0.3 + index * 0.1)
            log.append((round(env.now, 6), index))

    traces = {}
    for name in sorted(SCHEDULERS):
        with scheduler_override(name):
            sim = Simulator()
        log = []
        sim.spawn(pinger(sim, log), name="ping")
        sim.run(until=10.0)
        traces[name] = log
    assert traces["heap"] == traces["calendar"]
