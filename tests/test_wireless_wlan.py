"""Tests for WLAN infrastructure and ad hoc modes."""

import pytest

from repro.net import IPAddress, Network, Subnet, TCPStack, install_echo_responder, ping
from repro.sim import SeedBank, Simulator
from repro.wireless import (
    AccessPoint,
    AdHocNetwork,
    ChannelModel,
    Mobile,
    Position,
    wlan_standard,
)


def build_wlan_world(sim, standard_name="802.11b", station_at=(10, 0),
                     fading_seed=None):
    net = Network(sim)
    server = net.add_node("server")
    ap_router = net.add_node("ap", forwarding=True)
    net.connect(server, ap_router, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=100_000_000, delay=0.002)

    fading = (SeedBank(fading_seed).stream("fade")
              if fading_seed is not None else None)
    channel = ChannelModel(fading_stream=fading)
    ap = AccessPoint(ap_router, Position(0, 0),
                     wlan_standard(standard_name), channel,
                     wireless_subnet=Subnet.parse("10.0.1.0/24"))
    net.build_routes()

    station = net.add_node("station")
    station.assign_address(IPAddress.parse("10.0.1.100"))
    station_mobile = Mobile(Position(*station_at))
    return net, server, ap, station, station_mobile


def test_associate_and_reach_wired_host():
    sim = Simulator()
    net, server, ap, station, mobile = build_wlan_world(sim)
    ap.associate(station, mobile)
    install_echo_responder(server)
    result = ping(sim, station, server.primary_address)
    sim.run(until=10)
    assert result.value is not None


def test_out_of_range_association_refused():
    sim = Simulator()
    net, server, ap, station, mobile = build_wlan_world(
        sim, station_at=(500, 0))
    with pytest.raises(ConnectionError):
        ap.associate(station, mobile)


def test_throughput_higher_near_ap_than_at_edge():
    def goodput(distance):
        sim = Simulator()
        net, server, ap, station, mobile = build_wlan_world(
            sim, standard_name="802.11b", station_at=(distance, 0))
        ap.associate(station, mobile)
        tcp_srv = TCPStack(server)
        tcp_sta = TCPStack(station, mss=1460)
        listener = tcp_srv.listen(80)
        payload = b"D" * 200_000
        received = bytearray()
        done = {}

        def srv(env):
            conn = yield listener.accept()
            conn.send(payload)

        def sta(env):
            conn = tcp_sta.connect(server.primary_address, 80)
            yield conn.established_event
            while len(received) < len(payload):
                chunk = yield conn.recv()
                if chunk == b"":
                    break
                received.extend(chunk)
            done["t"] = env.now

        sim.spawn(srv(sim))
        sim.spawn(sta(sim))
        sim.run(until=600)
        assert bytes(received) == payload
        return len(payload) * 8 / done["t"]

    near = goodput(5)     # 11 Mbps rung
    far = goodput(95)     # 1 Mbps rung
    assert near > 3 * far


def test_station_moving_out_of_range_breaks_link():
    sim = Simulator()
    net, server, ap, station, mobile = build_wlan_world(sim)
    ap.associate(station, mobile)
    install_echo_responder(server)

    first = ping(sim, station, server.primary_address, timeout=2.0)
    sim.run(until=3)
    assert first.value is not None

    mobile.move_to(Position(5000, 0))  # way out of range
    second = ping(sim, station, server.primary_address, timeout=2.0)
    sim.run(until=10)
    assert second.value is None
    assert ap.associations[0].link.stats.get("no_signal_drops") >= 1


def test_dissociate_cleans_up():
    sim = Simulator()
    net, server, ap, station, mobile = build_wlan_world(sim)
    assoc = ap.associate(station, mobile)
    assoc.dissociate()
    assert not ap.associations
    assert ap.router.routing_table.lookup(station.primary_address) is None \
        or not ap.router.routing_table.lookup(
            station.primary_address).subnet.prefix_len == 32
    assoc.dissociate()  # idempotent


def test_roam_between_two_aps():
    sim = Simulator()
    net = Network(sim)
    server = net.add_node("server")
    ap1_router = net.add_node("ap1", forwarding=True)
    ap2_router = net.add_node("ap2", forwarding=True)
    net.connect(server, ap1_router, Subnet.parse("10.0.1.0/24"), delay=0.002)
    net.connect(server, ap2_router, Subnet.parse("10.0.2.0/24"), delay=0.002)
    channel = ChannelModel()
    std = wlan_standard("802.11b")
    ap1 = AccessPoint(ap1_router, Position(0, 0), std, channel,
                      wireless_subnet=Subnet.parse("10.0.9.0/24"))
    ap2 = AccessPoint(ap2_router, Position(150, 0), std, channel)
    net.build_routes()

    station = net.add_node("station")
    station.assign_address(IPAddress.parse("10.0.9.100"))
    mobile = Mobile(Position(10, 0))
    install_echo_responder(server)

    assoc1 = ap1.associate(station, mobile)
    r1 = ping(sim, station, server.primary_address, timeout=2.0)
    sim.run(until=3)

    # Walk toward AP2 and re-associate.
    mobile.move_to(Position(140, 0))
    assoc1.dissociate()
    ap2.associate(station, mobile)
    r2 = ping(sim, station, server.primary_address, timeout=2.0)
    sim.run(until=10)

    assert r1.value is not None
    assert ap2.associations and not ap1.associations


def test_adhoc_two_stations_exchange_data():
    """Paper: 'mobile devices can form a wireless ad hoc network among
    themselves and ... perform business transactions'."""
    sim = Simulator()
    net = Network(sim)
    channel = ChannelModel()
    adhoc = AdHocNetwork(sim, wlan_standard("802.11b"), channel)

    a = net.add_node("pda-a")
    a.assign_address(IPAddress.parse("192.168.0.1"))
    b = net.add_node("pda-b")
    b.assign_address(IPAddress.parse("192.168.0.2"))
    ma, mb = Mobile(Position(0, 0)), Mobile(Position(20, 0))
    adhoc.connect(a, ma, b, mb)

    tcp_a = TCPStack(a, mss=512)
    tcp_b = TCPStack(b, mss=512)
    listener = tcp_b.listen(9000)
    got = {}

    def seller(env):
        conn = yield listener.accept()
        order = yield conn.recv_exactly(9)
        got["order"] = order
        conn.send(b"CONFIRMED")

    def buyer(env):
        conn = tcp_a.connect(b.primary_address, 9000, mss=512)
        yield conn.established_event
        conn.send(b"BUY-1-ABC")
        reply = yield conn.recv_exactly(9)
        got["reply"] = reply

    sim.spawn(seller(sim))
    sim.spawn(buyer(sim))
    sim.run(until=60)
    assert got["order"] == b"BUY-1-ABC"
    assert got["reply"] == b"CONFIRMED"


def test_adhoc_out_of_range_refused():
    sim = Simulator()
    net = Network(sim)
    channel = ChannelModel()
    adhoc = AdHocNetwork(sim, wlan_standard("Bluetooth"), channel)
    a = net.add_node("a")
    a.assign_address(IPAddress.parse("192.168.0.1"))
    b = net.add_node("b")
    b.assign_address(IPAddress.parse("192.168.0.2"))
    with pytest.raises(ConnectionError):
        adhoc.connect(a, Mobile(Position(0, 0)), b, Mobile(Position(50, 0)))


def test_half_duplex_airtime_shared():
    """Two simultaneous flows over one radio link cannot exceed the medium
    rate: with half-duplex airtime the combined finish time is ~2x one flow's."""
    sim = Simulator()
    net, server, ap, station, mobile = build_wlan_world(
        sim, standard_name="Bluetooth", station_at=(2, 0))
    assoc = ap.associate(station, mobile)
    link = assoc.link
    assert link.airtime is not None and link.airtime.capacity == 1


def test_fading_link_retries_and_recovers():
    sim = Simulator()
    net, server, ap, station, mobile = build_wlan_world(
        sim, standard_name="802.11b", station_at=(85, 0), fading_seed=5)
    ap.associate(station, mobile)
    install_echo_responder(server)
    replies = []

    def pinger(env):
        for _ in range(20):
            reply = yield ping(sim, station, server.primary_address,
                               timeout=2.0)
            replies.append(reply)

    sim.spawn(pinger(sim))
    sim.run(until=120)
    ok = sum(1 for r in replies if r is not None)
    assert ok >= 15  # MAC retries make a marginal link usable


def test_adhoc_mesh_multihop_relay():
    """A -- B -- C chain: A reaches C through B (out of direct range)."""
    sim = Simulator()
    net = Network(sim)
    channel = ChannelModel()
    adhoc = AdHocNetwork(sim, wlan_standard("802.11b"), channel)

    nodes = []
    # 802.11b range is ~100 m; stations 80 m apart: neighbours hear each
    # other, the ends (160 m) do not.
    for index, x in enumerate([0.0, 80.0, 160.0]):
        node = net.add_node(f"pda{index}", forwarding=True)
        node.assign_address(IPAddress.parse(f"192.168.7.{index + 1}"))
        mobile = Mobile(Position(x, 0))
        adhoc.join(node, mobile)
        nodes.append((node, mobile))

    created = adhoc.mesh()
    assert created == 2  # A-B and B-C only; A-C is out of range
    adhoc.compute_multihop_routes()

    a, _ = nodes[0]
    c, _ = nodes[2]
    install_echo_responder(c)
    result = ping(sim, a, c.primary_address, timeout=5.0)
    sim.run(until=20)
    reply = result.value
    assert reply is not None
    assert "pda1" in reply.hops  # the middle station relayed


def test_adhoc_mesh_idempotent():
    sim = Simulator()
    net = Network(sim)
    channel = ChannelModel()
    adhoc = AdHocNetwork(sim, wlan_standard("802.11b"), channel)
    for index in range(2):
        node = net.add_node(f"m{index}")
        node.assign_address(IPAddress.parse(f"192.168.8.{index + 1}"))
        adhoc.join(node, Mobile(Position(index * 10.0, 0)))
    assert adhoc.mesh() == 1
    assert adhoc.mesh() == 0  # already linked


def test_adhoc_business_transaction_over_two_hops():
    """The paper's 'perform business transactions' claim over a relay."""
    sim = Simulator()
    net = Network(sim)
    channel = ChannelModel()
    adhoc = AdHocNetwork(sim, wlan_standard("802.11b"), channel)
    stations = []
    for index, x in enumerate([0.0, 80.0, 160.0]):
        node = net.add_node(f"trader{index}", forwarding=True)
        node.assign_address(IPAddress.parse(f"192.168.9.{index + 1}"))
        adhoc.join(node, Mobile(Position(x, 0)))
        stations.append(node)
    adhoc.mesh()
    adhoc.compute_multihop_routes()

    buyer, _, seller = stations
    tcp_b = TCPStack(buyer, mss=512)
    tcp_s = TCPStack(seller, mss=512)
    listener = tcp_s.listen(7000)
    outcome = {}

    def sell(env):
        conn = yield listener.accept()
        order = yield conn.recv_exactly(10)
        conn.send(b"SOLD:" + order)

    def buy(env):
        conn = tcp_b.connect(seller.primary_address, 7000, mss=512)
        yield conn.established_event
        conn.send(b"ORDER-0042")
        outcome["reply"] = yield conn.recv_exactly(15)

    sim.spawn(sell(sim))
    sim.spawn(buy(sim))
    sim.run(until=60)
    assert outcome["reply"] == b"SOLD:ORDER-0042"
