"""Tests for Mobile IP: registration, tunnelling, roaming transparency."""

import pytest

from repro.net import (
    IPAddress,
    Network,
    Packet,
    Subnet,
    TCPStack,
    install_echo_responder,
    ping,
)
from repro.net.mobile import (
    ForeignAgent,
    HomeAgent,
    MobileIPClient,
    RoamingManager,
)
from repro.sim import Simulator


def build_mobile_world(sim):
    """Internet core with a home network, two foreign networks, a
    correspondent host and a roaming mobile."""
    net = Network(sim)
    core = net.add_node("core", forwarding=True)
    ha_router = net.add_node("ha-router", forwarding=True)
    fa1_router = net.add_node("fa1-router", forwarding=True)
    fa2_router = net.add_node("fa2-router", forwarding=True)
    correspondent = net.add_node("correspondent")

    net.connect(core, ha_router, Subnet.parse("10.1.0.0/24"), delay=0.002)
    net.connect(core, fa1_router, Subnet.parse("10.2.0.0/24"), delay=0.002)
    net.connect(core, fa2_router, Subnet.parse("10.3.0.0/24"), delay=0.002)
    net.connect(core, correspondent, Subnet.parse("10.4.0.0/24"), delay=0.002)

    mobile = net.add_node("mobile")
    home_address = IPAddress.parse("10.1.0.100")

    roaming = RoamingManager(net, mobile, home_address)
    roaming.attach(ha_router)  # starts at home
    net.build_routes()

    ha = HomeAgent(ha_router)
    fa1 = ForeignAgent(fa1_router)
    fa2 = ForeignAgent(fa2_router)
    client = MobileIPClient(mobile, home_address,
                            ha_router.primary_address)
    return net, locals()


def test_reachable_at_home():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    install_echo_responder(w["mobile"])
    result = ping(sim, w["correspondent"], w["home_address"])
    sim.run(until=10)
    assert result.value is not None


def test_unreachable_after_move_without_registration():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    install_echo_responder(w["mobile"])

    def scenario(env):
        yield env.timeout(1)
        w["roaming"].attach(w["fa1_router"])  # move, but never register

    sim.spawn(scenario(sim))
    sim.run(until=2)
    result = ping(sim, w["correspondent"], w["home_address"], timeout=2.0)
    sim.run(until=10)
    assert result.value is None


def test_registration_accepted():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    outcome = {}

    def scenario(env):
        w["roaming"].attach(w["fa1_router"])
        reply = yield w["client"].register_via(w["fa1"].care_of_address)
        outcome["reply"] = reply

    sim.spawn(scenario(sim))
    sim.run(until=10)
    assert outcome["reply"] is not None and outcome["reply"].accepted
    binding = w["ha"].binding_for(w["home_address"])
    assert binding is not None
    assert binding.care_of_address == w["fa1"].care_of_address


def test_tunneled_delivery_after_registration():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    install_echo_responder(w["mobile"])
    results = {}

    def scenario(env):
        w["roaming"].attach(w["fa1_router"])
        yield w["client"].register_via(w["fa1"].care_of_address)
        reply = yield ping(sim, w["correspondent"], w["home_address"],
                           timeout=5.0)
        results["reply"] = reply

    sim.spawn(scenario(sim))
    sim.run(until=30)
    reply = results["reply"]
    assert reply is not None
    assert w["ha_router"].stats.get("mip_tunneled") >= 1
    assert w["fa1_router"].stats.get("mip_decapsulated") >= 1


def test_second_move_updates_binding():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    install_echo_responder(w["mobile"])
    results = {}

    def scenario(env):
        w["roaming"].attach(w["fa1_router"])
        yield w["client"].register_via(w["fa1"].care_of_address)
        w["roaming"].attach(w["fa2_router"])
        w["fa1"].remove_visitor(w["home_address"])
        yield w["client"].register_via(w["fa2"].care_of_address)
        reply = yield ping(sim, w["correspondent"], w["home_address"],
                           timeout=5.0)
        results["reply"] = reply

    sim.spawn(scenario(sim))
    sim.run(until=30)
    assert results["reply"] is not None
    binding = w["ha"].binding_for(w["home_address"])
    assert binding.care_of_address == w["fa2"].care_of_address
    assert w["fa2_router"].stats.get("mip_decapsulated") >= 1


def test_deregistration_restores_home_delivery():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    install_echo_responder(w["mobile"])
    results = {}

    def scenario(env):
        w["roaming"].attach(w["fa1_router"])
        yield w["client"].register_via(w["fa1"].care_of_address)
        # Come home.
        w["roaming"].attach(w["ha_router"])
        yield w["client"].deregister()
        reply = yield ping(sim, w["correspondent"], w["home_address"],
                           timeout=5.0)
        results["reply"] = reply

    sim.spawn(scenario(sim))
    sim.run(until=30)
    assert results["reply"] is not None
    assert w["ha"].binding_for(w["home_address"]) is None


def test_binding_expires_after_lifetime():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    done = {}

    def scenario(env):
        w["roaming"].attach(w["fa1_router"])
        yield w["client"].register_via(w["fa1"].care_of_address,
                                       lifetime=5.0)
        yield env.timeout(10.0)
        done["binding"] = w["ha"].binding_for(w["home_address"])

    sim.spawn(scenario(sim))
    sim.run(until=30)
    assert done["binding"] is None


def test_registration_with_wrong_home_agent_rejected():
    sim = Simulator()
    net, w = build_mobile_world(sim)
    outcome = {}

    def scenario(env):
        # Stay at home (a reply to a rejected request could not be routed
        # to a roamed-but-unregistered mobile) and send a request whose
        # home_agent field names the correspondent.
        from repro.net.mobile.mobileip import RegistrationRequest
        sock = w["client"].udp.bind()
        request = RegistrationRequest(
            home_address=w["home_address"],
            home_agent=w["correspondent"].primary_address,
            care_of_address=w["fa1"].care_of_address,
            lifetime=60.0,
            identification=9999,
        )
        sock.sendto(request, w["ha_router"].primary_address, 434,
                    data_size=32)
        reply = yield sock.recv_with_timeout(3.0)
        outcome["reply"] = reply

    sim.spawn(scenario(sim))
    sim.run(until=10)
    reply = outcome["reply"]
    assert reply is not None and not reply[0].accepted


def test_tcp_connection_survives_handoff():
    """The paper's transparency claim: active TCP connections persist."""
    sim = Simulator()
    net, w = build_mobile_world(sim)
    mobile, correspondent = w["mobile"], w["correspondent"]
    tcp_m = TCPStack(mobile, mss=512)
    tcp_c = TCPStack(correspondent)
    listener = tcp_c.listen(8080)
    received = bytearray()
    total = 40_000

    def server(env):
        conn = yield listener.accept()
        while len(received) < total:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)

    def mobile_app(env):
        # Start at home; register nothing; begin sending.
        conn = tcp_m.connect(correspondent.primary_address, 8080)
        yield conn.established_event
        conn.send(b"M" * total)

    def roam(env):
        yield env.timeout(0.5)
        w["roaming"].attach(w["fa1_router"])
        yield w["client"].register_via(w["fa1"].care_of_address)

    sim.spawn(server(sim))
    sim.spawn(mobile_app(sim))
    sim.spawn(roam(sim))
    sim.run(until=300)
    assert bytes(received) == b"M" * total
