"""Unit tests for repro.faults: plans, injectors, engine, determinism."""

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.faults import (
    FAULT_KINDS,
    FaultEngine,
    FaultPlan,
    FaultSpec,
    INJECTORS,
    links_for,
    radio_links_for,
)
from repro.sim import SeedBank


# ------------------------------------------------------------- the plan
def test_every_kind_has_an_injector():
    assert set(INJECTORS) == set(FAULT_KINDS)


def test_random_plan_is_deterministic():
    plan_a = FaultPlan.random(SeedBank(9).stream("chaos"), horizon=300.0,
                              intensity=0.7)
    plan_b = FaultPlan.random(SeedBank(9).stream("chaos"), horizon=300.0,
                              intensity=0.7)
    assert len(plan_a) > 0
    assert plan_a.to_json() == plan_b.to_json()
    # A different seed gives a different schedule.
    plan_c = FaultPlan.random(SeedBank(10).stream("chaos"), horizon=300.0,
                              intensity=0.7)
    assert plan_a.to_json() != plan_c.to_json()


def test_random_plan_respects_horizon_and_kinds():
    plan = FaultPlan.random(SeedBank(3).stream("chaos"), horizon=200.0,
                            intensity=1.0, kinds=("link_flap",))
    assert len(plan) > 0
    for spec in plan.specs:
        assert spec.kind == "link_flap"
        assert 0 <= spec.at < 200.0
    assert len(FaultPlan.random(SeedBank(3).stream("chaos"), horizon=100.0,
                                intensity=0.0)) == 0


def test_plan_json_roundtrip():
    plan = FaultPlan()
    plan.add("gateway_crash", at=12.0, duration=5.0)
    plan.add("dns_blackout", at=3.0, duration=2.0, target="shop.example")
    plan.add("wireless_loss", at=3.0, duration=8.0, magnitude=0.4)
    restored = FaultPlan.from_json(plan.to_json())
    assert restored.to_json() == plan.to_json()
    # ordered() sorts by start time first.
    assert [s.at for s in restored.ordered()] == [3.0, 3.0, 12.0]


def test_plan_validation_rejects_bad_specs():
    with pytest.raises(ValueError):
        FaultPlan().add("volcano", at=1.0)
    with pytest.raises(ValueError):
        FaultPlan().add("link_flap", at=-1.0)
    with pytest.raises(ValueError):
        FaultPlan().add("link_flap", at=1.0, duration=-2.0)
    with pytest.raises(ValueError):
        FaultSpec.from_dict({"kind": "link_flap", "at": 0.0, "colour": "red"})


# ------------------------------------------------------------- injectors
def _world(seed=4, stations=1):
    system = MCSystemBuilder(seed=seed).build()
    shop = CommerceApp()
    system.mount_application(shop)
    handles = [system.add_station("Nokia 9290 Communicator",
                                  name=f"station-{i}")
               for i in range(stations)]
    return system, shop, handles


def _probe(system, at, fn, out):
    """Record fn() at sim time ``at``."""
    def proc(env):
        yield env.timeout(at)
        out.append((at, fn()))
    system.sim.spawn(proc(system.sim), name=f"probe-{at:g}")


def test_link_flap_downs_links_and_restores():
    system, _, handles = _world()
    plan = FaultPlan()
    plan.add("link_flap", at=5.0, duration=4.0)
    FaultEngine(system, plan).start()
    seen = []
    probe_links = links_for(system)
    assert probe_links
    _probe(system, 7.0, lambda: all(l.is_down for l in probe_links), seen)
    _probe(system, 12.0, lambda: any(l.is_down for l in probe_links), seen)
    system.run(until=20)
    assert seen == [(7.0, True), (12.0, False)]


def test_wireless_loss_window_restores_loss_rate():
    system, _, handles = _world()
    radios = radio_links_for(system)
    assert radios  # cellular bearer exposes per-attachment radio links
    before = [link.loss_rate for link in radios]
    plan = FaultPlan()
    plan.add("wireless_loss", at=2.0, duration=6.0, magnitude=0.5)
    FaultEngine(system, plan).start()
    seen = []
    _probe(system, 4.0, lambda: [l.loss_rate for l in radios], seen)
    system.run(until=15)
    assert seen == [(4.0, [0.5] * len(radios))]
    assert [link.loss_rate for link in radios] == before


def test_gateway_crash_window():
    system, _, handles = _world()
    plan = FaultPlan()
    plan.add("gateway_crash", at=3.0, duration=5.0)
    FaultEngine(system, plan).start()
    seen = []
    _probe(system, 4.0, lambda: system.gateway.is_down, seen)
    _probe(system, 10.0, lambda: system.gateway.is_down, seen)
    system.run(until=15)
    assert seen == [(4.0, True), (10.0, False)]


def test_server_stall_exhausts_worker_pool():
    system, _, handles = _world()
    plan = FaultPlan()
    plan.add("server_stall", at=1.0, duration=4.0)
    FaultEngine(system, plan).start()
    workers = system.host.web_server.workers
    seen = []
    _probe(system, 2.0, lambda: workers.available, seen)
    _probe(system, 8.0, lambda: workers.available, seen)
    system.run(until=15)
    assert seen == [(2.0, 0), (8.0, workers.capacity)]


def test_dns_blackout_hides_then_restores_records():
    system, _, handles = _world()
    names = [name for name in system.registry._records]
    assert names
    saved = {name: system.registry.lookup(name) for name in names}
    plan = FaultPlan()
    plan.add("dns_blackout", at=2.0, duration=3.0)
    FaultEngine(system, plan).start()
    seen = []
    _probe(system, 3.0,
           lambda: [system.registry.lookup(n) for n in names], seen)
    system.run(until=10)
    assert seen == [(3.0, [None] * len(names))]
    for name in names:
        assert system.registry.lookup(name) == saved[name]


def test_battery_drain_is_instant_and_irreversible():
    system, _, handles = _world()
    battery = handles[0].station.battery
    start = battery.charge
    plan = FaultPlan()
    plan.add("battery_drain", at=1.0, magnitude=0.5)
    FaultEngine(system, plan).start()
    system.run(until=5)
    assert battery.charge == pytest.approx(start - 0.5 * battery.capacity)


def test_memory_pressure_allocates_then_frees():
    system, _, handles = _world()
    memory = handles[0].station.memory
    free_before = memory.free_kb
    plan = FaultPlan()
    plan.add("memory_pressure", at=1.0, duration=4.0, magnitude=0.5)
    FaultEngine(system, plan).start()
    seen = []
    _probe(system, 2.0, lambda: memory.free_kb, seen)
    system.run(until=10)
    assert seen[0][1] < free_before
    assert memory.free_kb == free_before


# ------------------------------------------------------------- the engine
def test_engine_counts_injections_and_rejects_double_start():
    system, _, handles = _world()
    plan = FaultPlan()
    plan.add("link_flap", at=1.0, duration=1.0)
    plan.add("dns_blackout", at=2.0, duration=1.0)
    engine = FaultEngine(system, plan).start()
    with pytest.raises(RuntimeError):
        engine.start()
    system.run(until=10)
    assert engine.stats.get("injected") == 2
    assert engine.stats.get("injected_link_flap") == 1
    assert engine.stats.get("injected_dns_blackout") == 1


def _transaction_fingerprint(seed, with_empty_engine):
    system = MCSystemBuilder(seed=seed).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 1_000_000)
    handle = system.add_station("Nokia 9290 Communicator")
    if with_empty_engine:
        FaultEngine(system, FaultPlan()).start()
    engine = TransactionEngine(system)
    records = []

    def shopper(env):
        for _ in range(3):
            done = engine.run_flow(handle,
                                   shop.browse_and_buy(account="ann"))
            record = yield done
            records.append(record)

    system.sim.spawn(shopper(system.sim), name="shopper")
    system.run(until=120)
    return [(r.ok, r.error, r.started_at, r.finished_at, tuple(r.steps),
             r.retries) for r in records]


def test_zero_fault_plan_is_equivalent_to_no_engine():
    """An empty fault plan must not perturb the simulation at all."""
    assert _transaction_fingerprint(21, False) == \
        _transaction_fingerprint(21, True)


# ------------------------------------------- cache correctness under chaos
def test_dns_cache_not_stale_across_blackout():
    """A cached resolver answer must die with the blackout window.

    The resolver caches positive answers under the registry generation;
    ``dns_blackout`` edits the registry (bumping the generation), so a
    mid-window resolve must go back to the wire and learn the truth
    (no record) rather than serve the cached address.
    """
    from repro.net import DNSResolver, DNSServer, Subnet

    system, _, handles = _world()
    name = next(iter(system.registry._records))
    expected = system.registry.lookup(name)
    net = system.network
    client_node = net.add_node("dns-probe-client")
    server_node = net.add_node("dns-probe-server")
    net.connect(client_node, server_node, Subnet.parse("10.99.0.0/24"),
                delay=0.002)
    net.build_routes()
    DNSServer(server_node, system.registry)
    resolver = DNSResolver(client_node, server_node.primary_address,
                           authority=system.registry)

    plan = FaultPlan()
    plan.add("dns_blackout", at=5.0, duration=4.0)
    FaultEngine(system, plan).start()

    answers = []

    def lookup_at(at):
        def proc(env):
            yield env.timeout(at)
            answer = yield resolver.resolve(name)
            answers.append((at, answer))
        system.sim.spawn(proc(system.sim), name=f"dns-probe-{at:g}")

    lookup_at(1.0)   # miss: fills the cache
    lookup_at(2.0)   # hit: served from cache
    lookup_at(6.0)   # mid-blackout: MUST NOT serve the stale entry
    lookup_at(12.0)  # after restore: resolves again
    system.run(until=20)

    assert answers == [(1.0, expected), (2.0, expected),
                       (6.0, None), (12.0, expected)]
    assert resolver.hits == 1  # only the pre-blackout repeat was cached


def test_gateway_crash_flushes_translation_cache():
    """A restarted gateway must not reuse pre-crash translations."""
    system, shop, handles = _world()
    system.host.payment.open_account("ann", 100_000)
    engine = TransactionEngine(system)
    done = engine.run_flow(handles[0],
                           shop.browse_and_buy(account="ann", user="ann"))
    plan = FaultPlan()
    plan.add("gateway_crash", at=60.0, duration=5.0)
    FaultEngine(system, plan).start()
    seen = []
    _probe(system, 59.0, lambda: len(system.gateway._translations) > 0, seen)
    _probe(system, 61.0, lambda: len(system.gateway._translations), seen)
    system.run(until=120)
    assert done.value.ok
    assert seen == [(59.0, True), (61.0, 0)]
