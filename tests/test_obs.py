"""Tests for repro.obs: tracing, metrics, profiling, breakdowns.

Covers the tentpole acceptance properties: spans nest across the full
device -> host transaction, context propagation survives middleware
re-encoding and TCP segmentation, the per-layer breakdown sums exactly
to the root duration, metrics aggregate, and both the tracer and the
kernel profiler are off (and cost nothing) by default.
"""

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.obs import (
    LAYER_ORDER,
    KernelProfiler,
    MetricsRegistry,
    Span,
    TraceContext,
    Tracer,
    format_breakdown,
    install_profiler,
    install_tracer,
    layer_breakdown,
    render_breakdown_table,
    trace_to_dict,
)
from repro.sim import Simulator


def traced_commerce_run(middleware="WAP", bearer=("cellular", "GPRS")):
    system = MCSystemBuilder(middleware=middleware, bearer=bearer).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    handle = system.add_station("Toshiba E740")
    tracer = install_tracer(system.sim)
    engine = TransactionEngine(system)
    done = engine.run_flow(
        handle, shop.browse_and_buy(account="ann", user="ann"))
    system.run(until=600)
    return tracer, done.value


# ------------------------------------------------------------- defaults
def test_tracer_and_profiler_off_by_default():
    sim = Simulator()
    assert sim.tracer is None
    assert sim._profiler is None


def test_untraced_system_records_no_spans():
    system = MCSystemBuilder().build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    handle = system.add_station("Toshiba E740")
    engine = TransactionEngine(system)
    done = engine.run_flow(
        handle, shop.browse_and_buy(account="ann", user="ann"))
    system.run(until=600)
    assert done.value.ok
    assert done.value.trace_id is None
    assert system.sim.tracer is None


def test_tracing_does_not_perturb_measurement():
    # Context rides packets and connections as metadata, never as wire
    # bytes: the traced run's timings equal the untraced run's exactly.
    def run(traced):
        system = MCSystemBuilder().build()
        shop = CommerceApp()
        system.mount_application(shop)
        system.host.payment.open_account("ann", 100_000)
        handle = system.add_station("Toshiba E740")
        if traced:
            install_tracer(system.sim)
        engine = TransactionEngine(system)
        done = engine.run_flow(
            handle, shop.browse_and_buy(account="ann", user="ann"))
        system.run(until=600)
        record = done.value
        return (record.latency, record.requests, record.bytes_received,
                record.ok)

    assert run(False) == run(True)


# ------------------------------------------------- end-to-end span graph
def test_spans_nest_across_full_transaction():
    tracer, record = traced_commerce_run()
    assert record.ok
    spans = tracer.for_trace(record.trace_id)
    by_id = {s.span_id: s for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1
    root = roots[0]
    assert root.layer == "app"
    names = {s.name for s in spans}
    # One span per pipeline stage of the paper's six-component path.
    assert "wsp.request" in names       # device-side middleware client
    assert "wap.gateway" in names       # middleware server
    assert "wap.translate" in names     # middleware re-encoding
    assert "web.handle" in names        # host web server
    assert "web.cgi" in names           # application program
    assert "db.query" in names          # database tier
    assert "device.render" in names     # device-side rendering
    for span in spans:
        assert span.finished
        # Spans may outlive the root (session teardown traffic still
        # carries the context) but none can precede it.
        assert root.start <= span.start
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert span.trace_id == parent.trace_id
            assert parent.start <= span.start
    # Every layer of the pipeline is represented.
    layers = {s.layer for s in spans}
    assert {"app", "middleware", "wireless", "wired", "web",
            "db", "device"} <= layers


@pytest.mark.parametrize("middleware", ["WAP", "i-mode", "Palm"])
def test_context_survives_middleware_reencoding(middleware):
    tracer, record = traced_commerce_run(middleware=middleware)
    assert record.ok
    spans = tracer.for_trace(record.trace_id)
    names = {s.name for s in spans}
    # The request is re-encoded at the middleware hop (WSP frame, HTTP
    # proxying, clipping frame) and the context must survive into the
    # origin server and the database behind it.
    assert "web.handle" in names
    assert "db.query" in names


def test_context_survives_tcp_segmentation():
    tracer, record = traced_commerce_run()
    spans = tracer.for_trace(record.trace_id)
    link_spans = [s for s in spans if s.name.endswith(".tx")]
    # Link-level transmit spans exist in the same trace: the context was
    # recovered from individual TCP segments, after segmentation.
    assert link_spans
    assert {s.layer for s in link_spans} == {"wireless", "wired"}
    for span in link_spans:
        assert span.trace_id == record.trace_id


def test_breakdown_sums_to_root_duration():
    tracer, record = traced_commerce_run()
    breakdown = layer_breakdown(tracer, trace_id=record.trace_id)
    assert sum(breakdown.values()) == pytest.approx(record.latency,
                                                    abs=1e-9)
    assert set(breakdown) <= set(LAYER_ORDER)
    assert all(v >= 0 for v in breakdown.values())


def test_trace_export_is_json_ready():
    import json

    tracer, record = traced_commerce_run()
    payload = trace_to_dict(tracer, trace_id=record.trace_id)
    encoded = json.dumps(payload)  # raises if anything is unencodable
    decoded = json.loads(encoded)
    assert decoded["root"]["name"] == f"txn.{record.flow_name}"
    assert decoded["breakdown_total"] == pytest.approx(record.latency)
    assert len(decoded["spans"]) == len(tracer.for_trace(record.trace_id))


# ----------------------------------------------------- synthetic traces
def make_span(span_id, layer, start, end, parent_id=None, trace_id=1):
    return Span(name=f"s{span_id}", layer=layer, trace_id=trace_id,
                span_id=span_id, parent_id=parent_id, start=start, end=end)


def test_layer_breakdown_deepest_span_wins():
    spans = [
        make_span(1, "app", 0.0, 10.0),
        make_span(2, "middleware", 1.0, 9.0, parent_id=1),
        make_span(3, "wireless", 2.0, 5.0, parent_id=2),
    ]
    breakdown = layer_breakdown(spans)
    assert breakdown == {
        "app": pytest.approx(2.0),          # [0,1) and [9,10)
        "middleware": pytest.approx(5.0),   # [1,2) and [5,9)
        "wireless": pytest.approx(3.0),     # [2,5)
    }
    assert sum(breakdown.values()) == pytest.approx(10.0)


def test_layer_breakdown_ties_go_to_latest_start():
    spans = [
        make_span(1, "app", 0.0, 10.0),
        make_span(2, "web", 0.0, 10.0, parent_id=1),
        make_span(3, "db", 4.0, 10.0, parent_id=1),  # same depth as 2
    ]
    breakdown = layer_breakdown(spans)
    assert breakdown == {"web": pytest.approx(4.0),
                         "db": pytest.approx(6.0)}


def test_layer_breakdown_clips_open_spans():
    spans = [
        make_span(1, "app", 0.0, 6.0),
        make_span(2, "web", 4.0, None, parent_id=1),  # never ended
    ]
    breakdown = layer_breakdown(spans)
    assert breakdown == {"app": pytest.approx(4.0),
                         "web": pytest.approx(2.0)}


def test_layer_breakdown_requires_finished_root():
    with pytest.raises(ValueError):
        layer_breakdown([make_span(1, "app", 0.0, None)])


def test_format_breakdown_distinguishes_wireless_from_wired():
    line = format_breakdown({"wireless": 1.0, "wired": 2.0})
    assert "wls=1.000" in line
    assert "wrd=2.000" in line


def test_render_breakdown_table_has_total():
    table = render_breakdown_table({"web": 1.0, "db": 3.0})
    assert "total" in table
    assert "4.0000" in table
    assert table.index("web") < table.index("db")  # LAYER_ORDER


# ------------------------------------------------------------ the tracer
def test_tracer_ids_are_instance_local():
    sim_a, sim_b = Simulator(), Simulator()
    tracer_a, tracer_b = Tracer(sim_a), Tracer(sim_b)
    span_a = tracer_a.start("one", "app")
    span_b = tracer_b.start("one", "app")
    assert span_a.trace_id == span_b.trace_id
    assert span_a.span_id == span_b.span_id


def test_tracer_max_spans_bound():
    sim = Simulator()
    tracer = Tracer(sim, max_spans=2)
    for _ in range(5):
        tracer.end(tracer.start("s", "app"))
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_trace_context_wire_and_header_round_trip():
    ctx = TraceContext(trace_id=7, span_id=13)
    assert TraceContext.from_wire(ctx.to_wire()) == ctx
    assert TraceContext.from_header(ctx.to_header()) == ctx
    assert TraceContext.from_wire(None) is None
    assert TraceContext.from_header("") is None
    assert TraceContext.from_header("garbage") is None


# ------------------------------------------------------------- metrics
def test_metrics_registry_aggregation():
    registry = MetricsRegistry()
    registry.incr("http", "requests")
    registry.incr("http", "requests", 2)
    assert registry.counter("http").get("requests") == 3
    recorder = registry.latency("rtt")
    recorder.start("a", 0.0)
    recorder.stop("a", 1.0)
    recorder.start("b", 1.0)
    recorder.stop("b", 4.0)
    summary = registry.summary("rtt")
    assert summary.count == 2
    assert summary.mean == pytest.approx(2.0)
    assert registry.summary("unknown") is None
    registry.record("queue", 0.0, 5.0)
    assert registry.counter("http") is registry.counter("http")
    assert registry.names() == ["http", "queue", "rtt"]
    snapshot = registry.snapshot()
    assert snapshot["counters"]["http"]["requests"] == 3
    assert snapshot["latencies"]["rtt"]["count"] == 2
    assert snapshot["series"]["queue"]["count"] == 1


# ------------------------------------------------------------ profiling
def test_profiler_counts_events_and_resumes():
    sim = Simulator()
    profiler = install_profiler(sim)
    assert sim._profiler is profiler

    def worker(env):
        for _ in range(3):
            yield env.timeout(1.0)

    sim.spawn(worker(sim), name="worker")
    sim.run()
    assert profiler.events_processed > 0
    assert profiler.resumes.get("worker") == 4  # bootstrap + 3 timeouts
    summary = profiler.summary()
    assert summary["events_processed"] == profiler.events_processed
    assert ("worker", 4) in profiler.top_resumed()


def test_profiler_off_means_no_bookkeeping():
    sim = Simulator()

    def worker(env):
        yield env.timeout(1.0)

    sim.spawn(worker(sim), name="worker")
    sim.run()
    assert sim._profiler is None  # nothing installed, nothing recorded
