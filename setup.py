"""Setuptools shim.

Kept so `pip install -e .` works in offline/minimal environments that
lack the `wheel` package (pip falls back to the legacy editable install
when no [build-system] table is declared); all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
