"""Performance: the load-generation benchmark and its determinism guards.

``run_bench`` drives a fleet of simulated users through the full mobile
commerce transaction path (device -> gateway middleware -> wired network
-> web server -> database) and reports wall-clock throughput alongside a
fully deterministic summary of what the virtual run computed.
``sweep_bench`` repeats it across user counts to draw the
goodput-vs-offered-load curve.

``determinism_check`` is the guard for the optimization pass: it runs
fixed scenarios with the hot-path caches forced on and forced off and
compares the outputs byte for byte.  ``scheduler_check`` applies the
same discipline to the pluggable kernel scheduler (heap vs calendar
queue).  See :mod:`repro.opt` and :mod:`repro.sim.sched`.
"""

from .baseline import (
    BASELINES,
    PRE_CALENDAR_BASELINE,
    PRE_OPTIMIZATION_BASELINE,
    baseline_for,
    baselines_for,
)
from .determinism import (
    determinism_check,
    fleet_check,
    parallel_check,
    scheduler_check,
)
from .loadgen import (
    bench_deterministic,
    bench_json,
    bench_resilience,
    build_bench_scenario,
    check_capacity_curve,
    run_bench,
    sweep_bench,
)
from .parallel import run_parallel_bench, run_parallel_chaos
from .report import full_bench, report_to_json

__all__ = ["run_bench", "sweep_bench", "bench_json", "bench_resilience",
           "bench_deterministic", "build_bench_scenario",
           "check_capacity_curve", "determinism_check", "fleet_check",
           "parallel_check", "scheduler_check", "run_parallel_bench",
           "run_parallel_chaos", "full_bench", "report_to_json",
           "PRE_OPTIMIZATION_BASELINE", "PRE_CALENDAR_BASELINE",
           "BASELINES", "baseline_for", "baselines_for"]
