"""Performance: the load-generation benchmark and its determinism guard.

``run_bench`` drives a fleet of simulated users through the full mobile
commerce transaction path (device -> gateway middleware -> wired network
-> web server -> database) and reports wall-clock throughput alongside a
fully deterministic summary of what the virtual run computed.

``determinism_check`` is the guard for the optimization pass: it runs
fixed scenarios with the hot-path caches forced on and forced off and
compares the outputs byte for byte.  See :mod:`repro.opt`.
"""

from .baseline import PRE_OPTIMIZATION_BASELINE
from .determinism import determinism_check
from .loadgen import bench_json, run_bench
from .report import full_bench, report_to_json

__all__ = ["run_bench", "bench_json", "determinism_check",
           "full_bench", "report_to_json", "PRE_OPTIMIZATION_BASELINE"]
