"""The recorded pre-optimization baseline for the standard scenario.

The committed ``BENCH_PERF.json`` must show the optimized tree's speedup
against the tree *before* the optimization pass, and that tree can only
be measured by checking it out — so its numbers are recorded here as
data rather than re-measured on every run.  The figures were taken on
the same host, same Python, and the identical 500-user load scenario
(the only harness difference: the pre-optimization harness also
installed the kernel profiler, which was how it counted events).

``python -m repro bench`` embeds this record — and a speedup against it
— whenever the requested scenario matches it exactly; for any other
scenario the report simply omits the comparison instead of implying one.
"""

from __future__ import annotations

__all__ = ["PRE_OPTIMIZATION_BASELINE", "baseline_for"]

PRE_OPTIMIZATION_BASELINE = {
    "commit": "99cd250",
    "users": 500,
    "seed": 7,
    "transactions_per_user": 4,
    "horizon": 240.0,
    "middleware": "WAP",
    "wall_seconds": 39.1791,
    "kernel_events": 1918636,
    "completed": 1514,
    "success_rate": 0.017173,
    "note": (
        "Measured at commit 99cd250 (before the perf pass) on the same "
        "host as the committed BENCH_PERF.json, identical load scenario; "
        "the old harness counted events via the installed kernel "
        "profiler.  Wall-clock figures are host-dependent: re-measure "
        "both sides on one machine before comparing elsewhere."
    ),
}


def baseline_for(users: int, seed: int, transactions_per_user: int,
                 horizon: float) -> dict | None:
    """The recorded baseline, iff it covers exactly this scenario."""
    b = PRE_OPTIMIZATION_BASELINE
    if (users, seed, transactions_per_user, horizon) == (
            b["users"], b["seed"], b["transactions_per_user"], b["horizon"]):
        return dict(b)
    return None
