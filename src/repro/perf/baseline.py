"""Recorded baselines for the standard load scenario.

The committed ``BENCH_PERF.json`` must show the current tree's speedup
against the trees *before* each performance pass, and those trees can
only be measured by checking them out — so their numbers are recorded
here as data rather than re-measured on every run.

Two records so far, one per perf PR:

* ``PRE_OPTIMIZATION_BASELINE`` — before the hot-path cache pass
  (PR 5); its harness counted events via the installed kernel profiler.
* ``PRE_CALENDAR_BASELINE`` — the committed result of the cache pass,
  i.e. the flat-``heapq`` kernel the calendar-queue scheduler replaces;
  copied verbatim from the ``BENCH_PERF.json`` committed at cd5b803.

``python -m repro bench`` embeds each record — and a speedup against it
— whenever the requested scenario matches it exactly; for any other
scenario the report simply omits the comparison instead of implying one.
"""

from __future__ import annotations

__all__ = ["PRE_OPTIMIZATION_BASELINE", "PRE_CALENDAR_BASELINE",
           "BASELINES", "baseline_for", "baselines_for"]

PRE_OPTIMIZATION_BASELINE = {
    "commit": "99cd250",
    "users": 500,
    "seed": 7,
    "transactions_per_user": 4,
    "horizon": 240.0,
    "middleware": "WAP",
    "wall_seconds": 39.1791,
    "kernel_events": 1918636,
    "completed": 1514,
    "success_rate": 0.017173,
    "note": (
        "Measured at commit 99cd250 (before the perf pass) on the same "
        "host as the committed BENCH_PERF.json, identical load scenario; "
        "the old harness counted events via the installed kernel "
        "profiler.  Wall-clock figures are host-dependent: re-measure "
        "both sides on one machine before comparing elsewhere."
    ),
}


PRE_CALENDAR_BASELINE = {
    "commit": "cd5b803",
    "users": 500,
    "seed": 7,
    "transactions_per_user": 4,
    "horizon": 240.0,
    "middleware": "WAP",
    "wall_seconds": 23.4569,
    "events_per_sec": 66071,
    "kernel_events": 1549803,
    "completed": 1514,
    "success_rate": 0.017173,
    "committed_wall_seconds": 21.2459,
    "committed_events_per_sec": 72946,
    "note": (
        "Commit cd5b803 (after the cache pass, before the calendar-queue "
        "scheduler): flat heapq kernel, unbatched dispatch, timer "
        "cancellation by dead-tuple discard.  wall_seconds is the median "
        "of interleaved pre/post runs on the host that recorded the "
        "current BENCH_PERF.json — the only comparison that means "
        "anything; committed_* keeps the figures from the BENCH_PERF.json "
        "committed at cd5b803 (a different, faster host).  Re-measure "
        "both sides on one machine before comparing elsewhere."
    ),
}

#: Every recorded baseline, oldest first.
BASELINES = {
    "pre_optimization": PRE_OPTIMIZATION_BASELINE,
    "pre_calendar": PRE_CALENDAR_BASELINE,
}


def _matches(record: dict, users: int, seed: int,
             transactions_per_user: int, horizon: float) -> bool:
    return (users, seed, transactions_per_user, horizon) == (
        record["users"], record["seed"],
        record["transactions_per_user"], record["horizon"])


def baseline_for(users: int, seed: int, transactions_per_user: int,
                 horizon: float) -> dict | None:
    """The pre-optimization record, iff it covers exactly this scenario."""
    b = PRE_OPTIMIZATION_BASELINE
    if _matches(b, users, seed, transactions_per_user, horizon):
        return dict(b)
    return None


def baselines_for(users: int, seed: int, transactions_per_user: int,
                  horizon: float) -> dict:
    """Every recorded baseline covering exactly this scenario, by name."""
    return {name: dict(record) for name, record in BASELINES.items()
            if _matches(record, users, seed, transactions_per_user, horizon)}
