"""BENCH_PERF assembly: optimized run, A/B guards, sweep, baselines.

``full_bench`` is what ``python -m repro bench`` executes: the load
scenario with the caches on, the same scenario with them forced off, the
caches A/B determinism verdict, the scheduler A/B verdict (heap vs
calendar held to byte-identical deterministic sections), the fleet A/B
verdict (fleet-of-1 vs single gateway, fleet-of-3 repeatability),
optionally the goodput-vs-offered-load sweep, and — when the scenario matches a
recorded one — every matching baseline with a wall-clock speedup against
it.  The result serialises to ``BENCH_PERF.json``.
"""

from __future__ import annotations

import gc
import json
from typing import Iterable, Optional

from ..opt import optimizations_disabled
from .baseline import baselines_for
from .determinism import determinism_check, fleet_check, scheduler_check
from .loadgen import run_bench, sweep_bench

__all__ = ["full_bench", "report_to_json"]


def full_bench(users: int = 50, seed: int = 7,
               transactions_per_user: int = 4,
               horizon: float = 240.0,
               determinism_users: int = 20,
               scheduler: Optional[str] = None,
               sweep: Optional[Iterable[int]] = None,
               fleet: int = 0) -> dict:
    """Run the benchmark both ways and assemble the BENCH_PERF report.

    ``scheduler`` pins the timed runs to one scheduler (None = process
    default); the A/B guards always exercise both regardless.  ``sweep``
    is an optional list of user counts for the goodput-vs-offered-load
    curve.  ``fleet`` > 0 runs the timed scenario (and the sweep)
    against an N-member gateway fleet and adds the fleet A/B guard
    (fleet-of-1 vs single gateway byte-identical; fleet-of-3 repeat
    byte-identical); recorded wall-clock baselines describe the
    single-gateway scenario, so they are skipped.
    """
    # Warm-up pass so neither timed run pays first-touch costs
    # (imports, code objects, allocator growth), then collect between
    # runs so the second is not timed under the first one's garbage.
    run_bench(users=min(users, 20), seed=seed,
              transactions_per_user=transactions_per_user,
              horizon=min(horizon, 60.0), scheduler=scheduler, fleet=fleet)
    gc.collect()
    optimized = run_bench(users=users, seed=seed,
                          transactions_per_user=transactions_per_user,
                          horizon=horizon, scheduler=scheduler, fleet=fleet)
    gc.collect()
    with optimizations_disabled():
        caches_off = run_bench(users=users, seed=seed,
                               transactions_per_user=transactions_per_user,
                               horizon=horizon, scheduler=scheduler,
                               fleet=fleet)
    gc.collect()
    same_results = (
        json.dumps(optimized["deterministic"], sort_keys=True)
        == json.dumps(caches_off["deterministic"], sort_keys=True))
    guard_users = min(users, determinism_users)
    determinism = determinism_check(users=guard_users, seed=seed)
    schedulers = scheduler_check(users=guard_users, seed=seed)
    fleet_guard = fleet_check(users=guard_users, seed=seed)

    off_wall = caches_off["measured"]["wall_seconds"]
    opt_wall = optimized["measured"]["wall_seconds"]
    report = {
        "scenario": {
            "users": users,
            "seed": seed,
            "transactions_per_user": transactions_per_user,
            "horizon": horizon,
            "fleet": fleet,
        },
        "optimized": optimized,
        "caches_off": caches_off,
        "speedup_caches_on_vs_off": (round(off_wall / opt_wall, 3)
                                     if opt_wall > 0 else None),
        "determinism": determinism,
        "scheduler_determinism": schedulers,
        "fleet_determinism": fleet_guard,
        "identical_results_caches_on_vs_off": same_results,
    }
    if sweep is not None:
        report["sweep"] = sweep_bench(sweep, seed=seed,
                                      transactions_per_user=(
                                          transactions_per_user),
                                      horizon=horizon, scheduler=scheduler,
                                      fleet=fleet)
    if fleet == 0:
        for name, baseline in baselines_for(users, seed,
                                            transactions_per_user,
                                            horizon).items():
            report[f"{name}_baseline"] = baseline
            if opt_wall > 0:
                report[f"speedup_vs_{name}"] = round(
                    baseline["wall_seconds"] / opt_wall, 3)
    return report


def report_to_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)
