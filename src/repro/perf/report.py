"""BENCH_PERF assembly: optimized run, caches-off run, determinism.

``full_bench`` is what ``python -m repro bench`` executes: the load
scenario with the caches on, the same scenario with them forced off, the
A/B determinism verdict, and — when the scenario matches the recorded
one — the pre-optimization baseline with a wall-clock speedup against
it.  The result serialises to ``BENCH_PERF.json``.
"""

from __future__ import annotations

import gc
import json

from ..opt import optimizations_disabled
from .baseline import baseline_for
from .determinism import determinism_check
from .loadgen import run_bench

__all__ = ["full_bench", "report_to_json"]


def full_bench(users: int = 50, seed: int = 7,
               transactions_per_user: int = 4,
               horizon: float = 240.0,
               determinism_users: int = 20) -> dict:
    """Run the benchmark both ways and assemble the BENCH_PERF report."""
    # Warm-up pass so neither timed run pays first-touch costs
    # (imports, code objects, allocator growth), then collect between
    # runs so the second is not timed under the first one's garbage.
    run_bench(users=min(users, 20), seed=seed,
              transactions_per_user=transactions_per_user,
              horizon=min(horizon, 60.0))
    gc.collect()
    optimized = run_bench(users=users, seed=seed,
                          transactions_per_user=transactions_per_user,
                          horizon=horizon)
    gc.collect()
    with optimizations_disabled():
        caches_off = run_bench(users=users, seed=seed,
                               transactions_per_user=transactions_per_user,
                               horizon=horizon)
    gc.collect()
    same_results = (
        json.dumps(optimized["deterministic"], sort_keys=True)
        == json.dumps(caches_off["deterministic"], sort_keys=True))
    determinism = determinism_check(users=min(users, determinism_users),
                                    seed=seed)

    off_wall = caches_off["measured"]["wall_seconds"]
    opt_wall = optimized["measured"]["wall_seconds"]
    report = {
        "scenario": {
            "users": users,
            "seed": seed,
            "transactions_per_user": transactions_per_user,
            "horizon": horizon,
        },
        "optimized": optimized,
        "caches_off": caches_off,
        "speedup_caches_on_vs_off": (round(off_wall / opt_wall, 3)
                                     if opt_wall > 0 else None),
        "determinism": determinism,
        "identical_results_caches_on_vs_off": same_results,
    }
    baseline = baseline_for(users, seed, transactions_per_user, horizon)
    if baseline is not None:
        report["pre_optimization_baseline"] = baseline
        if opt_wall > 0:
            report["speedup_vs_pre_optimization"] = round(
                baseline["wall_seconds"] / opt_wall, 3)
    return report


def report_to_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)
