"""BENCH_PERF assembly: optimized run, A/B guards, sweep, baselines.

``full_bench`` is what ``python -m repro bench`` executes: the load
scenario with the caches on, the same scenario with them forced off, the
caches A/B determinism verdict, the scheduler A/B verdict (heap vs
calendar held to byte-identical deterministic sections), the fleet A/B
verdict (fleet-of-1 vs single gateway, fleet-of-3 repeatability),
optionally the goodput-vs-offered-load sweep, and — when the scenario matches a
recorded one — every matching baseline with a wall-clock speedup against
it.  The result serialises to ``BENCH_PERF.json``.
"""

from __future__ import annotations

import gc
import json
from typing import Iterable, Optional

from ..opt import optimizations_disabled
from .baseline import baselines_for
from .determinism import (determinism_check, fleet_check, parallel_check,
                          scheduler_check)
from .loadgen import run_bench, sweep_bench

__all__ = ["full_bench", "report_to_json"]


def full_bench(users: int = 50, seed: int = 7,
               transactions_per_user: int = 4,
               horizon: float = 240.0,
               determinism_users: int = 20,
               scheduler: Optional[str] = None,
               sweep: Optional[Iterable[int]] = None,
               fleet: int = 0,
               workers: int = 0) -> dict:
    """Run the benchmark both ways and assemble the BENCH_PERF report.

    ``scheduler`` pins the timed runs to one scheduler (None = process
    default); the A/B guards always exercise both regardless.  ``sweep``
    is an optional list of user counts for the goodput-vs-offered-load
    curve.  ``fleet`` > 0 runs the timed scenario (and the sweep)
    against an N-member gateway fleet and adds the fleet A/B guard
    (fleet-of-1 vs single gateway byte-identical; fleet-of-3 repeat
    byte-identical); recorded wall-clock baselines describe the
    single-gateway scenario, so they are skipped.  ``workers`` > 0
    runs the timed scenario through the partitioned engine on that
    many processes, byte-compares the full-scale parallel run against
    the same decomposition executed sequentially (lockstep), records
    the speedup, and adds the ``parallel_check`` A/B guard.
    """
    parallel_section = _parallel_bench(users, seed, transactions_per_user,
                                       horizon, scheduler, fleet, workers,
                                       determinism_users) \
        if workers > 0 else None
    # Warm-up pass so neither timed run pays first-touch costs
    # (imports, code objects, allocator growth), then collect between
    # runs so the second is not timed under the first one's garbage.
    run_bench(users=min(users, 20), seed=seed,
              transactions_per_user=transactions_per_user,
              horizon=min(horizon, 60.0), scheduler=scheduler, fleet=fleet)
    gc.collect()
    optimized = run_bench(users=users, seed=seed,
                          transactions_per_user=transactions_per_user,
                          horizon=horizon, scheduler=scheduler, fleet=fleet)
    gc.collect()
    with optimizations_disabled():
        caches_off = run_bench(users=users, seed=seed,
                               transactions_per_user=transactions_per_user,
                               horizon=horizon, scheduler=scheduler,
                               fleet=fleet)
    gc.collect()
    same_results = (
        json.dumps(optimized["deterministic"], sort_keys=True)
        == json.dumps(caches_off["deterministic"], sort_keys=True))
    guard_users = min(users, determinism_users)
    determinism = determinism_check(users=guard_users, seed=seed)
    schedulers = scheduler_check(users=guard_users, seed=seed)
    fleet_guard = fleet_check(users=guard_users, seed=seed)

    off_wall = caches_off["measured"]["wall_seconds"]
    opt_wall = optimized["measured"]["wall_seconds"]
    report = {
        "scenario": {
            "users": users,
            "seed": seed,
            "transactions_per_user": transactions_per_user,
            "horizon": horizon,
            "fleet": fleet,
            "workers": workers,
        },
        "optimized": optimized,
        "caches_off": caches_off,
        "speedup_caches_on_vs_off": (round(off_wall / opt_wall, 3)
                                     if opt_wall > 0 else None),
        "determinism": determinism,
        "scheduler_determinism": schedulers,
        "fleet_determinism": fleet_guard,
        "identical_results_caches_on_vs_off": same_results,
    }
    if parallel_section is not None:
        report["parallel"] = parallel_section
        if parallel_section.get("wall_seconds") and opt_wall > 0:
            report["speedup_parallel_vs_sequential"] = round(
                opt_wall / parallel_section["wall_seconds"], 3)
    if sweep is not None:
        report["sweep"] = sweep_bench(sweep, seed=seed,
                                      transactions_per_user=(
                                          transactions_per_user),
                                      horizon=horizon, scheduler=scheduler,
                                      fleet=fleet)
    if fleet == 0:
        for name, baseline in baselines_for(users, seed,
                                            transactions_per_user,
                                            horizon).items():
            report[f"{name}_baseline"] = baseline
            if opt_wall > 0:
                report[f"speedup_vs_{name}"] = round(
                    baseline["wall_seconds"] / opt_wall, 3)
    return report


def _parallel_bench(users, seed, transactions_per_user, horizon,
                    scheduler, fleet, workers, determinism_users) -> dict:
    """The ``--workers`` section: timed parallel run + equivalence.

    The full-scale scenario runs once on ``workers`` processes and once
    through the lockstep (single-process) execution of the *same*
    decomposition; the two deterministic sections are byte-compared, so
    the headline speedup number is only reported for a run that
    provably computed the sequential answer.  ``parallel_check``
    re-verifies the claim at guard scale across 1/2/4 workers.
    """
    from .parallel import run_parallel_bench

    parallel = run_parallel_bench(
        users=users, seed=seed,
        transactions_per_user=transactions_per_user, horizon=horizon,
        scheduler=scheduler, fleet=fleet, workers=workers)
    if "parallel_fallback" in parallel:
        return {
            "fallback": parallel["parallel_fallback"],
            "workers": workers,
            "guard": parallel_check(users=min(users, 24), seed=seed),
        }
    gc.collect()
    lockstep = run_parallel_bench(
        users=users, seed=seed,
        transactions_per_user=transactions_per_user, horizon=horizon,
        scheduler=scheduler, fleet=fleet, workers=1,
        shards=parallel["deterministic"]["parallel"]["shards"])
    gc.collect()
    identical = (
        json.dumps(parallel["deterministic"], indent=2, sort_keys=True)
        == json.dumps(lockstep["deterministic"], indent=2, sort_keys=True))
    guard = parallel_check(users=min(users, 24), seed=seed)
    wall = parallel["measured"]["wall_seconds"]
    lockstep_wall = lockstep["measured"]["wall_seconds"]
    return {
        "report": parallel,
        "workers": workers,
        "wall_seconds": wall,
        "lockstep_wall_seconds": lockstep_wall,
        "speedup_vs_lockstep": (round(lockstep_wall / wall, 3)
                                if wall > 0 else None),
        "aggregate_events_per_sec": parallel["measured"]["events_per_sec"],
        "identical_parallel_vs_lockstep": identical,
        "guard": guard,
    }


def report_to_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)
