"""A/B determinism guards: hot-path caches, and kernel schedulers.

Every optimization behind :data:`repro.opt.OPTIMIZATIONS` claims to be
*transparent*: toggling it changes host CPU time, never what the
simulation computes.  :func:`determinism_check` holds the claim to
account — it runs fixed scenarios twice, once with every flag forced on
and once forced off, and compares the canonical JSON output byte for
byte.

:func:`scheduler_check` applies the same discipline to the pluggable
event scheduler: the calendar queue claims to reproduce the heap's
``(time, priority, seq)`` total order exactly, so running the same
scenarios under ``--scheduler heap`` and ``--scheduler calendar`` must
produce byte-identical deterministic sections.

Three comparisons cover the surfaces in both guards:

* a chaos run through the ``gateway-outage`` scenario (gateway
  translation caches plus their crash/restart flush),
* a chaos run through ``dns-blackout`` (registry generation churn),
* the benchmark's ``deterministic`` section (the whole transaction
  path, kernel event totals and per-layer trace breakdown included).
"""

from __future__ import annotations

import json

from ..faults.chaos import report_json, run_chaos
from ..opt import OPTIMIZATIONS, optimizations_disabled
from ..sim import SCHEDULERS, scheduler_override
from .loadgen import run_bench

__all__ = ["determinism_check", "fleet_check", "parallel_check",
           "scheduler_check"]


def _bench_bytes(users: int, seed: int, fleet: int = 0) -> str:
    report = run_bench(users=users, seed=seed, horizon=120.0,
                       transactions_per_user=3, fleet=fleet)
    return json.dumps(report["deterministic"], indent=2, sort_keys=True)


def _chaos_bytes(scenario: str, seed: int) -> str:
    return report_json(run_chaos(scenario=scenario, seed=seed,
                                 intensity=0.6, stations=3,
                                 transactions_per_station=4,
                                 horizon=120.0))


def _guard_scenarios(users: int, seed: int) -> dict:
    """The fixed scenarios both guards byte-compare across."""
    return {
        "bench": lambda: _bench_bytes(users, seed),
        "chaos-gateway-outage": lambda: _chaos_bytes("gateway-outage", seed),
        "chaos-dns-blackout": lambda: _chaos_bytes("dns-blackout", seed),
    }


def determinism_check(users: int = 20, seed: int = 7) -> dict:
    """Run the caches-on/off A/B comparison; returns a verdict dict.

    ``identical`` is True only when every scenario produced the same
    bytes with the caches on and off.  The per-check map names any
    offender so a CI failure is self-describing.
    """
    scenarios = _guard_scenarios(users, seed)
    checks: dict[str, bool] = {}
    for name, produce in scenarios.items():
        saved = OPTIMIZATIONS.as_dict()
        try:
            OPTIMIZATIONS.set_all(True)
            optimized = produce()
            with optimizations_disabled():
                baseline = produce()
        finally:
            for flag, value in saved.items():
                setattr(OPTIMIZATIONS, flag, value)
        checks[name] = optimized == baseline
    return {
        "identical": all(checks.values()),
        "checks": checks,
        "users": users,
        "seed": seed,
    }


def fleet_check(users: int = 20, seed: int = 7) -> dict:
    """A/B guard for the gateway-fleet wiring (DESIGN §14).

    Two claims are byte-compared:

    * **fleet-of-1 transparency** — building the middleware tier as a
      one-member fleet behind the balancer produces the same
      deterministic benchmark section as the plain single-gateway
      build (member 0 reuses the legacy port, stream names and breaker
      identity, and the balancer itself schedules no events);
    * **fleet-of-3 reproducibility** — the same seed through a real
      fleet (hash ring, health prober, per-member cells) produces the
      same bytes twice.
    """
    single = _bench_bytes(users, seed)
    fleet_of_one = _bench_bytes(users, seed, fleet=1)
    first = _bench_bytes(users, seed, fleet=3)
    second = _bench_bytes(users, seed, fleet=3)
    checks = {
        "fleet_of_1_vs_single": fleet_of_one == single,
        "fleet_of_3_repeat": first == second,
    }
    return {
        "identical": all(checks.values()),
        "checks": checks,
        "users": users,
        "seed": seed,
    }


def parallel_check(users: int = 24, seed: int = 7,
                   shards: int = 4,
                   workers: tuple = (1, 2, 4)) -> dict:
    """A/B guard for the conservative parallel engine (DESIGN §15).

    One fixed shard decomposition is executed under each worker count
    — ``workers=1`` is the lockstep (sequential-interleave) reference,
    higher counts host the same shards on OS processes — and every
    merged deterministic section is held to byte equality with the
    lockstep one.  The per-shard canonical state hashes must agree
    too, which pins the pre-merge shard states and not just the merged
    totals.  Alongside, the one-shard plan must reproduce the plain
    sequential :func:`run_bench` bytes (the partition itself adds
    nothing at S=1).
    """
    from .parallel import run_parallel_bench

    def produce(count: int) -> tuple:
        report = run_parallel_bench(users=users, seed=seed,
                                    transactions_per_user=3,
                                    horizon=120.0, workers=count,
                                    shards=shards)
        det = report["deterministic"]
        return (json.dumps(det, indent=2, sort_keys=True),
                det["parallel"]["state_hash"])

    reference_bytes, reference_hash = produce(1)
    checks: dict[str, bool] = {}
    for count in workers:
        if count == 1:
            continue
        produced, state_hash = produce(count)
        checks[f"lockstep_vs_workers{count}"] = produced == reference_bytes
        checks[f"state_hash_workers{count}"] = state_hash == reference_hash

    single = run_parallel_bench(users=users, seed=seed,
                                transactions_per_user=3, horizon=120.0,
                                workers=1, shards=1)
    merged = dict(single["deterministic"])
    merged.pop("parallel", None)
    checks["one_shard_vs_sequential"] = (
        json.dumps(merged, indent=2, sort_keys=True)
        == _bench_bytes(users, seed))
    return {
        "identical": all(checks.values()),
        "checks": checks,
        "shards": shards,
        "workers": list(workers),
        "users": users,
        "seed": seed,
    }


def scheduler_check(users: int = 20, seed: int = 7,
                    schedulers: tuple = ("heap", "calendar")) -> dict:
    """Run the scheduler A/B comparison; returns a verdict dict.

    Every scenario runs once under each named scheduler; ``identical``
    is True only when all of them produced byte-identical deterministic
    output.  The reference implementation (``heap``) goes first so a
    mismatch reads as "calendar diverged from heap".
    """
    unknown = [name for name in schedulers if name not in SCHEDULERS]
    if unknown:
        raise ValueError(f"unknown scheduler(s): {unknown}")
    if len(schedulers) < 2:
        raise ValueError("scheduler_check needs at least two schedulers")
    scenarios = _guard_scenarios(users, seed)
    checks: dict[str, bool] = {}
    for name, produce in scenarios.items():
        outputs = []
        for scheduler in schedulers:
            with scheduler_override(scheduler):
                outputs.append(produce())
        checks[name] = all(output == outputs[0] for output in outputs[1:])
    return {
        "identical": all(checks.values()),
        "checks": checks,
        "schedulers": list(schedulers),
        "users": users,
        "seed": seed,
    }
