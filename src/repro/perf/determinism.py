"""The A/B determinism guard for the hot-path caches.

Every optimization behind :data:`repro.opt.OPTIMIZATIONS` claims to be
*transparent*: toggling it changes host CPU time, never what the
simulation computes.  This module holds the claim to account — it runs
fixed scenarios twice, once with every cache forced on and once forced
off, and compares the canonical JSON output byte for byte.

Three comparisons cover the cache surfaces:

* a chaos run through the ``gateway-outage`` scenario (gateway
  translation caches plus their crash/restart flush),
* a chaos run through ``dns-blackout`` (registry generation churn),
* the benchmark's ``deterministic`` section (the whole transaction
  path, kernel event totals and per-layer trace breakdown included).
"""

from __future__ import annotations

import json

from ..faults.chaos import report_json, run_chaos
from ..opt import OPTIMIZATIONS, optimizations_disabled
from .loadgen import run_bench

__all__ = ["determinism_check"]


def _bench_bytes(users: int, seed: int) -> str:
    report = run_bench(users=users, seed=seed, horizon=120.0,
                       transactions_per_user=3)
    return json.dumps(report["deterministic"], indent=2, sort_keys=True)


def _chaos_bytes(scenario: str, seed: int) -> str:
    return report_json(run_chaos(scenario=scenario, seed=seed,
                                 intensity=0.6, stations=3,
                                 transactions_per_station=4,
                                 horizon=120.0))


def determinism_check(users: int = 20, seed: int = 7) -> dict:
    """Run the A/B comparison; returns a verdict dict.

    ``identical`` is True only when every scenario produced the same
    bytes with the caches on and off.  The per-check map names any
    offender so a CI failure is self-describing.
    """
    scenarios = {
        "bench": lambda: _bench_bytes(users, seed),
        "chaos-gateway-outage": lambda: _chaos_bytes("gateway-outage", seed),
        "chaos-dns-blackout": lambda: _chaos_bytes("dns-blackout", seed),
    }
    checks: dict[str, bool] = {}
    for name, produce in scenarios.items():
        saved = OPTIMIZATIONS.as_dict()
        try:
            OPTIMIZATIONS.set_all(True)
            optimized = produce()
            with optimizations_disabled():
                baseline = produce()
        finally:
            for flag, value in saved.items():
                setattr(OPTIMIZATIONS, flag, value)
        checks[name] = optimized == baseline
    return {
        "identical": all(checks.values()),
        "checks": checks,
        "users": users,
        "seed": seed,
    }
