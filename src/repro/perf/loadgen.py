"""Load generator: N concurrent users through the whole stack.

The benchmark reuses the chaos runner's system wiring (builder ->
stations -> :class:`TransactionEngine`) minus the fault plan: every user
is a seeded shopper running ``browse_and_buy`` flows paced across the
horizon.  The kernel's own ``events_processed`` counter supplies event
totals (no profiler in the measured loop — its per-event hook costs
several percent of wall time) and a :class:`~repro.obs.Tracer` records
per-layer spans, so the report can break virtual latency down by layer.

The report has two sections with different guarantees:

* ``deterministic`` — everything derived from the virtual run (counts,
  latency percentiles, per-layer seconds, kernel event totals).  Same
  seed, same bytes; the A/B determinism check compares exactly this
  section with the caches on and off.
* ``measured`` — host wall-clock figures (seconds, events/sec,
  transactions/sec).  Honest but machine-dependent, so excluded from
  byte comparisons.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import time
from contextlib import nullcontext
from typing import Iterable, Optional

from ..apps import CommerceApp
from ..core import MCSystemBuilder, TransactionEngine
from ..faults.chaos import DEFAULT_DEVICE, percentile
from ..fleet import fleet_report
from ..obs import install_tracer, layer_breakdown
from ..opt import OPTIMIZATIONS
from ..resilience import ResilienceConfig
from ..sim import scheduler_override

__all__ = ["run_bench", "sweep_bench", "bench_json", "bench_resilience",
           "check_capacity_curve", "build_bench_scenario",
           "bench_deterministic"]


def bench_resilience() -> ResilienceConfig:
    """The load benchmark's capacity-engineered policy set (DESIGN §13).

    On top of the default resilience knobs this enables gateway-side
    batching (the sustained service rate ``batch_max / batch_window``
    is sized to keep the GPRS cell's shared airtime below saturation)
    and admission control (watermark + virtual-FIFO Retry-After
    reservations), so overload is shed at the cheapest layer instead of
    timing out after burning wireless and middleware budget.
    """
    return ResilienceConfig(
        gateway_batching=True,
        # 4 requests / 0.3s = ~13.3 req/s sustained service, sized so
        # the admitted stream (~620B of shared GPRS airtime per served
        # request) plus shed chatter stays below the cell's 12.5 KB/s.
        # ~18.75 req/s nominal: deliberately above what the radio can
        # sustain, so the binding constraint is the RAN backpressure
        # gate below (which tracks the radio's true capacity) rather
        # than a hardcoded rate that wastes airtime when the cell is
        # quiet.  Empirically the knee: shorter windows push the GPRS
        # cell into queueing (p50 latency jumps 3s -> 30s+).
        batch_window=0.16,
        batch_max=3,
        batch_item_cost=0.001,
        # A shallow watermark sheds the arrival wave BEFORE the radio
        # saturates: a shed cycle costs ~400B of airtime against ~620B
        # plus queueing for a served request, and the parked client
        # stops contending entirely until its reservation matures.
        admission_watermark=12,
        admission_retry_floor=1.0,
        admission_jitter=0.2,
        # Over-space reservations 5x so returning shed clients use a
        # fraction of the service slots, leaving room for fresh
        # arrivals; repeated sheds push the pointer (and the hints)
        # out fast, which is what parks the overload wave.
        admission_reserve_factor=5.0,
        # RAN backpressure: stop admitting whenever ~12 transmitters
        # are already queued for the cell's shared airtime — replies
        # sent into a saturated cell only deepen the collapse.
        air_pressure_threshold=12,
        # Shed clients park on the virtual-FIFO Retry-After hint (which
        # grows with the shed backlog) rather than on their own small
        # exponential backoff; parked devices cost zero airtime.
        retry_attempts=5,
        retry_base_delay=0.5,
        retry_multiplier=2.0,
        retry_max_delay=8.0,
        retry_jitter=0.3,
        # Air-queueing latency under load must not masquerade as a dead
        # route: aborting a slow-but-alive request tears down the WSP
        # session, and the reconnect handshake storm consumes the very
        # airtime whose scarcity caused the slowness.  GPRS-era WAP
        # gateways ran 30-60s deadlines for exactly this reason.
        request_timeout=20.0,
        # Failover routes (standby gateway, direct HTML) cross the SAME
        # saturated cell, so under overload they only triple handshake
        # traffic.  The capacity scenario pins the primary route; the
        # chaos suite exercises failover with its own config.
        standby_gateway=False,
        direct_fallback=False,
    )


def check_capacity_curve(points, tolerance: float = 0.05,
                         events_points=None,
                         events_tolerance: float = 0.25) -> dict:
    """Verify goodput is monotone non-decreasing in admitted load.

    A healthy capacity curve rises with offered load and flattens at
    the knee; a cliff (goodput collapsing as more work is admitted)
    is the overload failure mode this PR removes.  ``tolerance``
    forgives small non-monotonicities from discreteness at low loads.

    ``events_points`` (``{"users", "events_per_sec"}`` per sweep point,
    host-measured) adds a kernel-efficiency check on top of the goodput
    one: the largest point's events/s must stay within
    ``events_tolerance`` of the smallest point's.  Goodput can flatten
    at the knee for capacity reasons while the kernel itself quietly
    gets slower per event as scenarios grow — that regression used to
    be invisible to the sweep.
    """
    ordered = sorted(points, key=lambda p: (p["admitted"], p["users"]))
    best = 0.0
    regressions = []
    for point in ordered:
        goodput = point["goodput_tps"]
        if goodput < best * (1.0 - tolerance):
            regressions.append({
                "users": point["users"],
                "admitted": point["admitted"],
                "goodput_tps": goodput,
                "previous_best": round(best, 6),
            })
        best = max(best, goodput)
    verdict = {"monotone": not regressions, "tolerance": tolerance,
               "regressions": regressions}
    verdict["events_per_sec"] = _check_events_curve(events_points,
                                                    events_tolerance)
    return verdict


def _check_events_curve(events_points, tolerance: float) -> dict:
    """Kernel events/s at the largest point vs the smallest."""
    points = sorted(events_points or [], key=lambda p: p["users"])
    if len(points) < 2:
        return {"checked": False, "ok": True, "tolerance": tolerance}
    smallest, largest = points[0], points[-1]
    floor = smallest["events_per_sec"] * (1.0 - tolerance)
    ratio = (largest["events_per_sec"] / smallest["events_per_sec"]
             if smallest["events_per_sec"] else 0.0)
    return {
        "checked": True,
        "ok": largest["events_per_sec"] >= floor,
        "ratio": round(ratio, 3),
        "tolerance": tolerance,
        "smallest": {"users": smallest["users"],
                     "events_per_sec": smallest["events_per_sec"]},
        "largest": {"users": largest["users"],
                    "events_per_sec": largest["events_per_sec"]},
    }


class _BenchScenario:
    """A fully wired bench scenario, ready to run.

    Produced by :func:`build_bench_scenario`; consumed by
    :func:`run_bench` (which runs it to the horizon in one process) and
    by the parallel shard runner (which advances it window by window
    inside a worker process).  Holding the pieces on one object keeps
    the two execution paths byte-identical by construction: they share
    the wiring *and* the report derivation below.
    """

    __slots__ = ("system", "engine", "shop", "tracer", "handles",
                 "users", "user_offset", "seed", "transactions_per_user",
                 "horizon", "middleware", "bearer", "device", "policies",
                 "resilience")


def build_bench_scenario(users: int = 50, seed: int = 7,
                         transactions_per_user: int = 4,
                         horizon: float = 240.0,
                         middleware: str = "WAP",
                         bearer: tuple = ("cellular", "GPRS"),
                         device: str = DEFAULT_DEVICE,
                         policies: bool = True,
                         trace: bool = True,
                         max_spans: int = 2_000_000,
                         scheduler: Optional[str] = None,
                         resilience: Optional[ResilienceConfig] = None,
                         fleet: int = 0,
                         user_offset: int = 0) -> _BenchScenario:
    """Build and wire the load scenario without running it.

    ``user_offset`` shifts station/account naming (``station-7``,
    ``user7``) so a shard hosting users ``[offset, offset+users)`` uses
    the same global identities the sequential run would.
    """
    if users < 1:
        raise ValueError(f"users must be >= 1, got {users}")
    if transactions_per_user < 1:
        raise ValueError(
            f"transactions_per_user must be >= 1, got {transactions_per_user}")

    if resilience is None:
        resilience = bench_resilience() if policies else None
    if fleet > 0:
        if resilience is None:
            raise ValueError("a gateway fleet requires policies=True")
        resilience = dataclasses.replace(resilience, fleet_size=fleet,
                                         standby_gateway=False)
    builder = MCSystemBuilder(seed=seed, middleware=middleware,
                              bearer=bearer, resilience=resilience)
    context = scheduler_override(scheduler) if scheduler is not None \
        else nullcontext()
    with context:
        system = builder.build()

    shop = CommerceApp(items=[("WAP Phone", 19900, 10_000_000),
                              ("Leather Case", 950, 10_000_000)])
    system.mount_application(shop)
    for index in range(users):
        system.host.payment.open_account(f"user{user_offset + index}",
                                         100_000_000)

    handles = [system.add_station(device,
                                  name=f"station-{user_offset + index}")
               for index in range(users)]
    engine = TransactionEngine(system)

    tracer = install_tracer(system.sim, max_spans=max_spans) if trace \
        else None

    think = system.seeds.stream("bench-think")
    interval = horizon / (transactions_per_user + 1)

    def shopper(handle, account):
        def loop(env):
            yield env.timeout(think.uniform(0.1, 0.9) * interval)
            for _ in range(transactions_per_user):
                started = env.now
                flow = shop.browse_and_buy(item_id=1, account=account)
                yield engine.run_flow(handle, flow)
                elapsed = env.now - started
                pause = max(0.1, interval - elapsed)
                yield env.timeout(pause * think.uniform(0.7, 1.3))
        return loop

    for index, handle in enumerate(handles):
        name = f"user-{user_offset + index}"
        system.sim.spawn(shopper(handle, f"user{user_offset + index}")(
            system.sim), name=name)

    scenario = _BenchScenario()
    scenario.system = system
    scenario.engine = engine
    scenario.shop = shop
    scenario.tracer = tracer
    scenario.handles = handles
    scenario.users = users
    scenario.user_offset = user_offset
    scenario.seed = seed
    scenario.transactions_per_user = transactions_per_user
    scenario.horizon = horizon
    scenario.middleware = middleware
    scenario.bearer = bearer
    scenario.device = device
    scenario.policies = policies
    scenario.resilience = resilience
    return scenario


def run_bench(users: int = 50, seed: int = 7,
              transactions_per_user: int = 4,
              horizon: float = 240.0,
              middleware: str = "WAP",
              bearer: tuple = ("cellular", "GPRS"),
              device: str = DEFAULT_DEVICE,
              policies: bool = True,
              trace: bool = True,
              max_spans: int = 2_000_000,
              scheduler: Optional[str] = None,
              post_build=None,
              resilience: Optional[ResilienceConfig] = None,
              fleet: int = 0) -> dict:
    """Run the load scenario once and return the benchmark report dict.

    ``users`` stations each run ``transactions_per_user`` purchase flows
    spread across ``horizon`` virtual seconds.  The wall-clock section
    measures only the ``system.run`` call — build and reporting time is
    not counted.  ``scheduler`` picks the kernel scheduler for this run
    (None = process default); the choice is recorded outside the
    deterministic section so the A/B guard can byte-compare across it.
    ``post_build(system, engine)``, when given, runs after the scenario
    is fully wired but before the clock starts — the race sanitizer
    uses it to instrument shared state and install its kernel hook.
    ``resilience`` overrides the policy set (tests use it to force
    specific capacity knobs); the default with ``policies=True`` is
    :func:`bench_resilience`.  ``fleet`` > 0 runs the middleware tier
    as an N-member gateway fleet behind the consistent-hash balancer
    (requires policies); a fleet of 1 is the transparency case the
    fleet A/B guard byte-compares against the single-gateway build.
    """
    scenario = build_bench_scenario(
        users=users, seed=seed,
        transactions_per_user=transactions_per_user, horizon=horizon,
        middleware=middleware, bearer=bearer, device=device,
        policies=policies, trace=trace, max_spans=max_spans,
        scheduler=scheduler, resilience=resilience, fleet=fleet)
    system, engine = scenario.system, scenario.engine

    if post_build is not None:
        post_build(system, engine)

    # With gc_isolation on, compact the heap once and freeze the live
    # object graph into the permanent generation, then re-freeze at
    # regular virtual-time slices: a 500-user scenario's live graph
    # (retained spans, open connections, station state) is otherwise
    # rescanned by every gen-2 collection inside the measured loop, and
    # that scanning dominates wall time at scale.  Slicing matters
    # because objects allocated *after* a freeze are still collector-
    # visible, so one up-front freeze decays as the run accumulates
    # survivors.  Running to ``horizon`` in slices is observably
    # identical to one ``run`` call (the kernel just stops and resumes
    # the dispatch loop), so the virtual run — and the deterministic
    # report section — is unaffected; this trades host-clock GC pauses
    # for leaving the measured loop's garbage uncollected until the end.
    gc_isolated = OPTIMIZATIONS.gc_isolation
    if gc_isolated:
        gc.collect()
        gc.freeze()
        slices = 96
    else:
        slices = 1
    try:
        started = time.perf_counter()  # repro: noqa[wall-clock]
        for step in range(1, slices + 1):
            until = horizon if step == slices else horizon * step / slices
            system.run(until=until)
            if gc_isolated and step < slices:
                gc.freeze()
        wall_seconds = time.perf_counter() - started  # repro: noqa[wall-clock]
    finally:
        if gc_isolated:
            gc.unfreeze()

    deterministic = bench_deterministic(scenario)
    events = system.sim.events_processed
    records = engine.completed
    report = {
        "deterministic": deterministic,
        "optimizations": OPTIMIZATIONS.as_dict(),
        "scheduler": system.sim.scheduler_name,
        "measured": {
            "wall_seconds": round(wall_seconds, 4),
            "events_per_sec": (round(events / wall_seconds)
                               if wall_seconds > 0 else 0),
            "transactions_per_sec": (round(len(records) / wall_seconds, 2)
                                     if wall_seconds > 0 else 0.0),
        },
    }
    return report


def bench_deterministic(scenario: _BenchScenario) -> dict:
    """Derive the ``deterministic`` report section from a finished run.

    Shared between the sequential path and the parallel shard runner so
    both derive the identical section from identical virtual state.
    """
    system, engine = scenario.system, scenario.engine
    records = engine.completed
    latencies = sorted(engine.latencies())
    events = system.sim.events_processed

    # Honest goodput accounting: success is reported against *offered*
    # load (every transaction the stations were asked to run), not just
    # against the ones that happened to finish inside the horizon.
    offered = scenario.users * scenario.transactions_per_user
    started = len(engine.records)
    succeeded = len(engine.successful)
    # A completed-but-failed transaction whose attempts saw 503s was
    # rejected by admission control (gateway watermark or web-server
    # shedding) — shed by design, not lost to overload.
    rejected = sum(1 for record in records
                   if not record.ok and record.shed_503s > 0)

    deterministic = {
        "users": scenario.users,
        "seed": scenario.seed,
        "transactions_per_user": scenario.transactions_per_user,
        "horizon": scenario.horizon,
        "middleware": scenario.middleware,
        "bearer": list(scenario.bearer),
        "device": scenario.device,
        "policies": bool(scenario.policies),
        "offered": offered,
        "started": started,
        "admitted": started - rejected,
        "rejected": rejected,
        "completed": len(records),
        "succeeded": succeeded,
        "success_vs_offered": round(succeeded / offered, 6),
        "successful": len(engine.successful),
        "retries": sum(record.retries for record in records),
        "shed_503s": sum(record.shed_503s for record in records),
        "latency": {
            "p50": round(percentile(latencies, 0.50), 6),
            "p95": round(percentile(latencies, 0.95), 6),
            "max": round(latencies[-1], 6) if latencies else 0.0,
        },
        "kernel_events": events,
        "virtual_seconds": round(system.sim.now, 6),
    }
    admission = {"sheds": 0, "watermark_sheds": 0, "pressure_sheds": 0,
                 "batches": 0, "batched_requests": 0}
    if system.fleet is not None:
        gateways = [m.gateway for m in system.fleet.members.values()]
    else:
        gateways = [system.gateway, system.standby_gateway]
    for gw in gateways:
        counts = gw.stats.as_dict() if gw is not None else {}
        admission["watermark_sheds"] += counts.get("admission_sheds", 0)
        admission["pressure_sheds"] += counts.get("pressure_sheds", 0)
        admission["batches"] += counts.get("batches", 0)
        admission["batched_requests"] += counts.get("batched_requests", 0)
    # Total sheds across both admission signals (queue watermark and
    # RAN backpressure) — the number clients experienced as 503s.
    admission["sheds"] = (admission["watermark_sheds"]
                          + admission["pressure_sheds"])
    deterministic["gateway_admission"] = admission
    # Only a *real* fleet (>= 2 members) adds its section: the fleet-of-1
    # transparency guard byte-compares against the single-gateway build,
    # so the degenerate case must not change the report shape.
    if system.fleet is not None and scenario.resilience.fleet_size >= 2:
        deterministic["fleet"] = fleet_report(system)
    if scenario.tracer is not None:
        deterministic["layers"] = _aggregate_layers(scenario.tracer)
        deterministic["spans"] = len(scenario.tracer.spans)
    return deterministic


def sweep_bench(user_counts: Iterable[int], seed: int = 7,
                transactions_per_user: int = 4,
                horizon: float = 240.0,
                scheduler: Optional[str] = None,
                fleet: int = 0) -> dict:
    """Goodput-vs-offered-load curve across a list of user counts.

    Each point runs the standard bench scenario (tracing off — the
    curve cares about throughput, not layer attribution).  Offered load
    is what the stations *attempt* (``users * transactions_per_user /
    horizon`` tx per virtual second); goodput is what the system
    actually completed successfully per virtual second.  The gap between
    the two as users grow is the overload curve capacity PRs move.

    Virtual-run quantities and host wall-clock figures are split into
    ``deterministic`` / ``measured`` sections with the same guarantees
    as :func:`run_bench`.
    """
    counts = sorted(set(int(count) for count in user_counts))
    if not counts:
        raise ValueError("sweep needs at least one user count")
    det_points = []
    measured_points = []
    for users in counts:
        report = run_bench(users=users, seed=seed,
                           transactions_per_user=transactions_per_user,
                           horizon=horizon, trace=False,
                           scheduler=scheduler, fleet=fleet)
        det = report["deterministic"]
        virtual = det["virtual_seconds"] or horizon
        det_points.append({
            "users": users,
            "offered": det["offered"],
            "admitted": det["admitted"],
            "completed": det["completed"],
            "succeeded": det["succeeded"],
            "offered_tps": round(users * transactions_per_user / horizon, 6),
            "goodput_tps": round(det["succeeded"] / virtual, 6),
            "success_vs_offered": det["success_vs_offered"],
            "latency_p50": det["latency"]["p50"],
            "latency_p95": det["latency"]["p95"],
            "kernel_events": det["kernel_events"],
        })
        measured_points.append({
            "users": users,
            "wall_seconds": report["measured"]["wall_seconds"],
            "events_per_sec": report["measured"]["events_per_sec"],
        })
    return {
        "deterministic": {
            "seed": seed,
            "transactions_per_user": transactions_per_user,
            "horizon": horizon,
            "fleet": fleet,
            "points": det_points,
            "curve": check_capacity_curve(det_points),
        },
        "measured": {
            "points": measured_points,
            # Host-measured, so it lives outside the deterministic
            # section: kernel efficiency must not sag as the sweep
            # grows (the per-event slowdown check).
            "events_check": check_capacity_curve(
                det_points,
                events_points=measured_points)["events_per_sec"],
        },
    }


def _aggregate_layers(tracer) -> dict:
    """Virtual seconds per layer, summed over every closed trace."""
    by_trace: dict[int, list] = {}
    open_traces = set()
    for span in tracer.spans:
        by_trace.setdefault(span.trace_id, []).append(span)
        if span.parent_id is None and span.end is None:
            # Flows still in flight at the horizon have open roots;
            # layer_breakdown requires a closed root, so skip them
            # (deterministically — openness derives from virtual time).
            open_traces.add(span.trace_id)
    totals: dict[str, float] = {}
    for trace_id, spans in sorted(by_trace.items()):
        if trace_id in open_traces:
            continue
        for layer, seconds in layer_breakdown(spans).items():
            totals[layer] = totals.get(layer, 0.0) + seconds
    return {layer: round(seconds, 6)
            for layer, seconds in sorted(totals.items())}


def bench_json(report: dict) -> str:
    """Canonical serialisation: byte-identical for identical reports."""
    return json.dumps(report, indent=2, sort_keys=True)
