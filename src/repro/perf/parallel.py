"""Partitioned benchmark and chaos runs (``--workers N``).

Each shard is a *vertical slice* of the scenario: a contiguous user
range with its own cell, its own gateway, and a replica of the wired
host tier, exactly as :func:`~repro.sim.parallel.partition.plan_partition`
cut it.  A shard's virtual run depends only on its spec — never on
which OS process hosts it — so running the same decomposition under 1,
2 or 4 workers produces byte-identical merged reports; that claim is
enforced by ``parallel_check``.

The merged report keeps the sequential report's shape (``deterministic``
/ ``optimizations`` / ``scheduler`` / ``measured``) and adds a
``deterministic.parallel`` subsection (partition, cut, merge-point
totals, canonical state hash).  With one shard the deterministic
section minus that subsection is byte-identical to plain
:func:`~repro.perf.loadgen.run_bench` — the sequential-equivalence
anchor the test suite pins.
"""

from __future__ import annotations

import dataclasses
import gc
import os
import time
from typing import Optional

from ..faults.chaos import (DEFAULT_DEVICE, build_chaos_scenario,
                            chaos_report, percentile, run_chaos)
from ..opt import OPTIMIZATIONS
from ..sim.parallel import (PartitionError, canonical_state_hash,
                            merge_samples, merge_window_log,
                            plan_partition, run_partitioned)
from ..sim.parallel.merge import conservation_check
from .loadgen import bench_deterministic, build_bench_scenario, run_bench

__all__ = ["run_parallel_bench", "run_parallel_chaos"]


# Merge-point keys the bench shards report window deltas for, with the
# plain-Python harvest that reads each one's current global value.
def _bench_merge_totals(scenario) -> dict:
    system, engine = scenario.system, scenario.engine
    totals = {
        # Total balance across accounts: captures subtract, so the
        # window delta is the (negative) spend that crossed the cut.
        "repro.security.payment.PaymentProcessor.accounts":
            sum(system.host.payment.accounts.values()),
        "repro.core.transaction.TransactionEngine.records":
            len(engine.records),
    }
    if scenario.tracer is not None:
        totals["repro.obs.span.Tracer.spans"] = len(scenario.tracer.spans)
    return totals


class _ShardBase:
    """Windowed adapter around a built scenario (bench or chaos)."""

    def __init__(self, spec, scenario):
        self.spec = spec
        self.scenario = scenario
        self.horizon = scenario.horizon
        # Delta baseline is the pre-run harvest (e.g. funded account
        # balances), so window deltas carry only what the run changed.
        self._last_totals: dict = self.merge_totals()
        self._run_seconds = 0.0
        # Same GC isolation discipline as the sequential measured loop:
        # freeze the live graph once, re-freeze at window boundaries.
        self._gc_isolated = OPTIMIZATIONS.gc_isolation
        if self._gc_isolated:
            gc.collect()
            gc.freeze()

    def merge_totals(self) -> dict:
        raise NotImplementedError

    def advance(self, window: int, until: float) -> dict:
        started = time.perf_counter()  # repro: noqa[wall-clock]
        self.scenario.system.run(until=until)
        self._run_seconds += time.perf_counter() - started  # repro: noqa[wall-clock]
        if self._gc_isolated and until < self.horizon:
            gc.freeze()
        totals = self.merge_totals()
        deltas = []
        for key in sorted(totals):
            change = totals[key] - self._last_totals.get(key, 0)
            if change:
                # Boundary event: (time, priority, seq) position the
                # delta in the global order; merge-point updates
                # commute inside a window, so the boundary timestamp
                # with the window index as seq is their canonical slot.
                deltas.append([round(until, 9), 0, window, key, change])
        self._last_totals = totals
        return {
            "shard": self.spec.shard_id,
            "window": window,
            "clock": round(self.scenario.system.sim.now, 6),
            "events": self.scenario.system.sim.events_processed,
            "deltas": deltas,
        }

    def finish(self) -> dict:
        if self._gc_isolated:
            gc.unfreeze()
        payload = self._payload()
        payload["shard"] = self.spec.shard_id
        payload["merge_totals"] = self.merge_totals()
        payload["measured"] = {
            "run_seconds": round(self._run_seconds, 4),
            "scheduler": self.scenario.system.sim.scheduler_name,
        }
        return payload

    def _payload(self) -> dict:
        raise NotImplementedError


class _BenchShard(_ShardBase):
    def __init__(self, spec):
        params = dict(spec.params)
        scenario = build_bench_scenario(
            users=spec.users, seed=spec.seed,
            transactions_per_user=params["transactions_per_user"],
            horizon=params["horizon"], middleware=params["middleware"],
            bearer=tuple(params["bearer"]), device=params["device"],
            policies=params["policies"], trace=params["trace"],
            max_spans=params["max_spans"], scheduler=params["scheduler"],
            fleet=0, user_offset=spec.user_offset)
        super().__init__(spec, scenario)

    def merge_totals(self) -> dict:
        return _bench_merge_totals(self.scenario)

    def _payload(self) -> dict:
        return {
            "deterministic": bench_deterministic(self.scenario),
            "samples": list(self.scenario.engine.latencies()),
        }


def _make_bench_shard(spec):
    """Top-level factory (picklable for spawn-based multiprocessing)."""
    return _BenchShard(spec)


class _ChaosShard(_ShardBase):
    def __init__(self, spec):
        params = dict(spec.params)
        plan = params["plan"]
        if plan is not None:
            from ..faults.plan import FaultPlan
            plan = FaultPlan.from_json(plan)
        scenario = build_chaos_scenario(
            scenario=params["scenario"], seed=spec.seed,
            intensity=params["intensity"], policies=params["policies"],
            stations=spec.users,
            transactions_per_station=params["transactions_per_station"],
            horizon=params["horizon"], middleware=params["middleware"],
            bearer=tuple(params["bearer"]), device=params["device"],
            plan=plan, fleet=0, station_offset=spec.user_offset)
        super().__init__(spec, scenario)

    def merge_totals(self) -> dict:
        system, engine = self.scenario.system, self.scenario.engine
        return {
            "repro.security.payment.PaymentProcessor.accounts":
                sum(system.host.payment.accounts.values()),
            "repro.core.transaction.TransactionEngine.records":
                len(engine.records),
        }

    def _payload(self) -> dict:
        return {
            "report": chaos_report(self.scenario),
            "samples": list(self.scenario.engine.latencies()),
        }


def _make_chaos_shard(spec):
    """Top-level factory (picklable for spawn-based multiprocessing)."""
    return _ChaosShard(spec)


# ----------------------------------------------------------------- bench
def run_parallel_bench(users: int = 50, seed: int = 7,
                       transactions_per_user: int = 4,
                       horizon: float = 240.0,
                       workers: int = 1,
                       shards: Optional[int] = None,
                       middleware: str = "WAP",
                       bearer: tuple = ("cellular", "GPRS"),
                       device: str = DEFAULT_DEVICE,
                       policies: bool = True,
                       trace: bool = True,
                       max_spans: int = 2_000_000,
                       scheduler: Optional[str] = None,
                       fleet: int = 0,
                       matrix: Optional[dict] = None) -> dict:
    """Partitioned bench run; falls back to sequential when no legal cut.

    The shard count comes from the plan (``shards`` pins it); worker
    count only picks how many processes host those shards, so any
    worker count executes the identical decomposition.  A
    :class:`PartitionError` (e.g. ``fleet > 0`` — the fleet control
    plane spans shards) degrades gracefully: the plain sequential
    :func:`run_bench` report is returned with a ``parallel_fallback``
    note.
    """
    try:
        plan = plan_partition(users=users, seed=seed, horizon=horizon,
                              matrix=matrix, shards=shards,
                              workers=workers, fleet=fleet)
    except PartitionError as exc:
        report = run_bench(users=users, seed=seed,
                           transactions_per_user=transactions_per_user,
                           horizon=horizon, middleware=middleware,
                           bearer=bearer, device=device, policies=policies,
                           trace=trace, max_spans=max_spans,
                           scheduler=scheduler, fleet=fleet)
        report["parallel_fallback"] = {
            "workers": workers,
            "reason": exc.reason,
            "blocking_keys": [entry["key"] for entry in exc.blocking[:8]],
        }
        return report

    params = {
        "transactions_per_user": transactions_per_user,
        "horizon": horizon, "middleware": middleware,
        "bearer": list(bearer), "device": device, "policies": policies,
        "trace": trace, "max_spans": max_spans, "scheduler": scheduler,
    }
    specs = [dataclasses.replace(spec, params=params)
             for spec in plan.shards]
    run = run_partitioned(specs, _make_bench_shard, horizon=horizon,
                          windows=plan.windows, workers=workers,
                          opt_flags=OPTIMIZATIONS.as_dict())
    merged_log = merge_window_log(run["window_log"])
    # Shard deltas are measured against the pre-run baseline, so the
    # accumulated window log must equal (final - initial) per key.
    initial_balance = plan.users * 100_000_000
    balance_key = "repro.security.payment.PaymentProcessor.accounts"
    final_totals: dict = {}
    for payload in run["payloads"]:
        for key, value in payload["merge_totals"].items():
            final_totals[key] = final_totals.get(key, 0) + value
    if balance_key in final_totals:
        final_totals[balance_key] -= initial_balance
    conservation = conservation_check(merged_log, final_totals)
    if not conservation["ok"]:
        raise RuntimeError(
            f"merge conservation violated: {conservation['mismatches']}")

    deterministic = _merge_bench_deterministic(run["payloads"], params,
                                               plan, merged_log)
    events = deterministic["kernel_events"]
    wall = run["wall_seconds"]
    scheduler_name = run["payloads"][0]["measured"]["scheduler"]
    return {
        "deterministic": deterministic,
        "optimizations": OPTIMIZATIONS.as_dict(),
        "scheduler": scheduler_name,
        "measured": {
            "wall_seconds": round(wall, 4),
            "total_seconds": round(run["total_seconds"], 4),
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "transactions_per_sec": (
                round(deterministic["completed"] / wall, 2)
                if wall > 0 else 0.0),
            "workers": run["workers"],
            "mode": run["mode"],
            "host_cpus": os.cpu_count(),
            "shard_run_seconds": [
                payload["measured"]["run_seconds"]
                for payload in run["payloads"]],
        },
    }


_SUMMED_KEYS = ("offered", "started", "admitted", "rejected", "completed",
                "succeeded", "successful", "retries", "shed_503s",
                "kernel_events")


def _merge_bench_deterministic(payloads, params, plan, merged_log) -> dict:
    shard_dets = [payload["deterministic"] for payload in payloads]
    first = shard_dets[0]
    samples = merge_samples([payload["samples"] for payload in payloads])
    merged = {
        "users": sum(det["users"] for det in shard_dets),
        "seed": plan.seed,
        "transactions_per_user": first["transactions_per_user"],
        "horizon": first["horizon"],
        "middleware": first["middleware"],
        "bearer": first["bearer"],
        "device": first["device"],
        "policies": first["policies"],
    }
    for key in _SUMMED_KEYS:
        merged[key] = sum(det[key] for det in shard_dets)
    merged["success_vs_offered"] = round(
        merged["succeeded"] / merged["offered"], 6)
    merged["latency"] = {
        "p50": round(percentile(samples, 0.50), 6),
        "p95": round(percentile(samples, 0.95), 6),
        "max": round(samples[-1], 6) if samples else 0.0,
    }
    merged["virtual_seconds"] = round(
        max(det["virtual_seconds"] for det in shard_dets), 6)
    admission: dict = {}
    for det in shard_dets:
        for key, value in det["gateway_admission"].items():
            admission[key] = admission.get(key, 0) + value
    merged["gateway_admission"] = admission
    if params["trace"]:
        layers: dict = {}
        for det in shard_dets:
            for layer, seconds in det.get("layers", {}).items():
                layers[layer] = round(layers.get(layer, 0.0) + seconds, 6)
        merged["layers"] = dict(sorted(layers.items()))
        merged["spans"] = sum(det.get("spans", 0) for det in shard_dets)
    merged["parallel"] = {
        "shards": len(payloads),
        "partition": [spec.to_dict() for spec in plan.shards],
        "cut": {
            "links": [link.to_dict() for link in plan.cut_links],
            "lookahead": plan.lookahead,
            "sync_window": plan.sync_window,
            "windows": plan.windows,
        },
        "merge_points": {entry: total for entry, total in sorted(
            _fold_log(merged_log).items())},
        "merge_log_entries": len(merged_log),
        "state_hash": canonical_state_hash(payloads),
    }
    return merged


def _fold_log(merged_log) -> dict:
    totals: dict = {}
    for entry in merged_log:
        totals[entry["key"]] = totals.get(entry["key"], 0) + entry["value"]
    return totals


# ----------------------------------------------------------------- chaos
def run_parallel_chaos(scenario: str = "storm", seed: int = 0,
                       intensity: float = 0.5, policies: bool = True,
                       stations: int = None,
                       transactions_per_station: int = 6,
                       horizon: float = 240.0, middleware: str = "WAP",
                       bearer: tuple = ("cellular", "GPRS"),
                       device: str = DEFAULT_DEVICE,
                       plan=None, workers: int = 1,
                       shards: Optional[int] = None, fleet: int = 0,
                       matrix: Optional[dict] = None) -> dict:
    """Partitioned chaos run; sequential fallback when no legal cut.

    Fleet-native scenarios (``fleet-outage``, ``canary-regression``)
    are unpartitionable — the fleet control plane spans shards — so
    they fall back to the sequential runner with a
    ``parallel_fallback`` note.  Each shard replays the scenario
    against its own station range; an explicit ``plan`` is applied to
    every shard (that is how the boundary link-flap equivalence test
    flaps the cut link in all shards at once).
    """
    from ..faults.chaos import FLEET_SCENARIOS

    if fleet == 0:
        fleet = FLEET_SCENARIOS.get(scenario, 0)
    if stations is None:
        stations = 12 if fleet > 0 else 4
    try:
        cut = plan_partition(users=stations, seed=seed, horizon=horizon,
                             matrix=matrix, shards=shards,
                             workers=workers, fleet=fleet)
    except PartitionError as exc:
        report = run_chaos(scenario=scenario, seed=seed,
                           intensity=intensity, policies=policies,
                           stations=stations,
                           transactions_per_station=transactions_per_station,
                           horizon=horizon, middleware=middleware,
                           bearer=bearer, device=device, plan=plan,
                           fleet=fleet)
        report["parallel_fallback"] = {
            "workers": workers,
            "reason": exc.reason,
            "blocking_keys": [entry["key"] for entry in exc.blocking[:8]],
        }
        return report

    params = {
        "scenario": scenario, "intensity": intensity,
        "policies": policies,
        "transactions_per_station": transactions_per_station,
        "horizon": horizon, "middleware": middleware,
        "bearer": list(bearer), "device": device,
        "plan": plan.to_json() if plan is not None else None,
    }
    specs = [dataclasses.replace(spec, params=params)
             for spec in cut.shards]
    run = run_partitioned(specs, _make_chaos_shard, horizon=horizon,
                          windows=cut.windows, workers=workers,
                          opt_flags=OPTIMIZATIONS.as_dict())
    merged_log = merge_window_log(run["window_log"])
    return _merge_chaos_reports(run, params, cut, merged_log)


def _merge_chaos_reports(run, params, cut, merged_log) -> dict:
    payloads = run["payloads"]
    reports = [payload["report"] for payload in payloads]
    samples = merge_samples([payload["samples"] for payload in payloads])
    first = reports[0]
    merged = {
        "scenario": first["scenario"],
        "seed": cut.seed,
        "intensity": first["intensity"],
        "policies": first["policies"],
        "middleware": first["middleware"],
        "bearer": first["bearer"],
        "device": first["device"],
        "horizon": first["horizon"],
        "stations": sum(report["stations"] for report in reports),
        "transactions_per_station": first["transactions_per_station"],
    }
    for key in ("offered", "completed", "successful", "retries"):
        merged[key] = sum(report[key] for report in reports)
    merged["success_rate"] = (
        round(merged["successful"] / merged["completed"], 6)
        if merged["completed"] else 0.0)
    merged["success_vs_offered"] = (
        round(merged["successful"] / merged["offered"], 6)
        if merged["offered"] else 0.0)
    faults: dict = {}
    errors: dict = {}
    for report in reports:
        for key, value in report["faults"].items():
            faults[key] = faults.get(key, 0) + value
        for key, value in report["errors"].items():
            errors[key] = errors.get(key, 0) + value
    merged["faults"] = dict(sorted(faults.items()))
    merged["errors"] = dict(sorted(errors.items()))
    merged["latency"] = {
        "p50": round(percentile(samples, 0.50), 6),
        "p95": round(percentile(samples, 0.95), 6),
        "max": round(samples[-1], 6) if samples else 0.0,
    }
    merged["resilience"] = _sum_tree(
        [report["resilience"] for report in reports])
    merged["parallel"] = {
        "shards": len(payloads),
        "partition": [spec.to_dict() for spec in cut.shards],
        "cut": {
            "links": [link.to_dict() for link in cut.cut_links],
            "lookahead": cut.lookahead,
            "sync_window": cut.sync_window,
            "windows": cut.windows,
        },
        "merge_log_entries": len(merged_log),
        "state_hash": canonical_state_hash(
            [{"shard": payload["shard"],
              "deterministic": payload["report"]}
             for payload in payloads]),
        "plan_faults_per_shard": [len(report["plan"])
                                  for report in reports],
    }
    merged["measured"] = {
        "wall_seconds": round(run["wall_seconds"], 4),
        "workers": run["workers"],
        "mode": run["mode"],
        "host_cpus": os.cpu_count(),
    }
    return merged


def _sum_tree(trees: list):
    """Key-wise recursive sum of nested counter dicts (bools OR)."""
    merged: dict = {}
    for tree in trees:
        for key, value in tree.items():
            if isinstance(value, dict):
                merged[key] = _sum_tree(
                    [merged.get(key, {}), value])
            elif isinstance(value, bool):
                merged[key] = merged.get(key, False) or value
            else:
                merged[key] = merged.get(key, 0) + value
    return merged
