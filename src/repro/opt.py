"""Global toggles for the hot-path caches (the perf optimization pass).

Every cache guarded by these flags is *transparent*: it memoizes a pure
function of its inputs (an HTML->WML translation, a cHTML adaptation, a
clipping compression, a SQL parse) or short-circuits a lookup whose
answer cannot have changed (a DNS record within its TTL and registry
generation).  Turning a flag off therefore changes how much host CPU a
run burns, never what the simulation computes: same seed, same virtual
timeline, byte-identical chaos reports / traces / benchmark tables.

That guarantee is not taken on faith — ``repro.perf.determinism_check``
(and the CI ``perf-smoke`` step) runs a fixed scenario with the caches
forced on and forced off and compares the outputs bit for bit.  The
flags exist precisely so that A/B test has something to toggle.

The default is everything on.  ``optimizations_disabled()`` is the
scoped way to turn caches off; mutating :data:`OPTIMIZATIONS` directly
is fine in a CLI entry point but discouraged in library code.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["OptimizationFlags", "OPTIMIZATIONS", "optimizations_disabled"]

# The individual flags; each name is an OptimizationFlags slot.  The
# three caches memoize pure computation; gc_isolation is different in
# kind — it compacts and freezes the host interpreter's GC around the
# measured benchmark loop (the live object graph of a large scenario
# otherwise gets rescanned by every gen-2 collection).  It touches only
# host wall-clock, never the virtual timeline, so it shares the same
# transparency contract the A/B determinism check enforces.
FLAG_NAMES = ("dns_cache", "translation_cache", "sql_cache",
              "gc_isolation")


class OptimizationFlags:
    """One boolean per optimization; all default to enabled."""

    __slots__ = FLAG_NAMES

    def __init__(self, dns_cache: bool = True,
                 translation_cache: bool = True,
                 sql_cache: bool = True,
                 gc_isolation: bool = True):
        self.dns_cache = dns_cache
        self.translation_cache = translation_cache
        self.sql_cache = sql_cache
        self.gc_isolation = gc_isolation

    def set_all(self, enabled: bool) -> None:
        for name in FLAG_NAMES:
            setattr(self, name, enabled)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in FLAG_NAMES}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<OptimizationFlags {state}>"


#: The process-wide flag set every cache consults.
OPTIMIZATIONS = OptimizationFlags()


@contextmanager
def optimizations_disabled(*names: str):
    """Disable the named cache flags (all of them when none given) for
    the duration of the ``with`` block, restoring the previous state —
    including on error — afterwards."""
    targets = names or FLAG_NAMES
    unknown = set(targets) - set(FLAG_NAMES)
    if unknown:
        raise ValueError(f"unknown optimization flag(s): {sorted(unknown)}")
    saved = {name: getattr(OPTIMIZATIONS, name) for name in targets}
    for name in targets:
        setattr(OPTIMIZATIONS, name, False)
    try:
        yield OPTIMIZATIONS
    finally:
        for name, value in saved.items():
            setattr(OPTIMIZATIONS, name, value)
