"""The sim-safety linter: file discovery, suppression, reporting.

Usage::

    from repro.analysis import lint_paths
    report = lint_paths(["src/repro", "benchmarks", "examples"])
    print(report.render_text())

A finding on line *N* is suppressed by an inline comment on that line::

    t = time.time()        # repro: noqa[wall-clock] benchmarking harness
    except Exception:      # repro: noqa[broad-except, bare-except]
    anything_at_all()      # repro: noqa

``# repro: noqa`` with no bracket suppresses every rule on the line;
with a bracket it suppresses only the listed rule ids.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .findings import Finding, SEVERITY_ERROR
from .rules import ModuleInfo, Rule, default_rules

__all__ = ["Linter", "LintReport", "lint_paths", "suppressed_rule_ids"]

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\s*\[(?P<ids>[^\]]*)\])?")


def suppressed_rule_ids(line: str) -> Optional[frozenset[str]]:
    """Rule ids a source line suppresses.

    ``None`` means no suppression; an empty frozenset means *all* rules
    (bare ``# repro: noqa``); otherwise the listed ids.
    """
    match = _NOQA.search(line)
    if match is None:
        return None
    ids = match.group("ids")
    if ids is None:
        return frozenset()
    return frozenset(
        part.strip() for part in ids.replace(",", " ").split() if part.strip()
    )


@dataclass
class LintReport:
    """Findings plus everything needed to render or gate on them."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    def exit_code(self, strict: bool = False) -> int:
        if self.parse_errors:
            return 2
        if strict:
            return 1 if self.findings else 0
        return 1 if self.errors else 0

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"parse error: {msg}" for msg in self.parse_errors)
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.errors)} error(s)) in {self.files_checked} "
            f"file(s); {self.suppressed} suppressed"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "parse_errors": list(self.parse_errors),
            },
            indent=2,
        )


def _infer_module(path: str) -> Optional[str]:
    """Dotted module name for ``path``, walking up through packages."""
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    stem = os.path.splitext(filename)[0]
    parts: list[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        # Walks a handful of package levels once per file, not a queue.
        parts.insert(0, package)  # repro: noqa[hot-queue-pop]
    return ".".join(parts) if parts else None


def _discover(paths: Sequence[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith((".", "__pycache__")))
                files.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


class Linter:
    """Runs a rule set over files and filters suppressed findings."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        self.rules: list[Rule] = (list(rules) if rules is not None
                                  else default_rules())

    def lint_sources(self, sources: Iterable[ModuleInfo]) -> LintReport:
        """Lint already-parsed modules (the test-fixture entry point)."""
        report = LintReport()
        modules = list(sources)
        report.files_checked = len(modules)
        raw: list[tuple[ModuleInfo, Finding]] = []
        by_path = {info.path: info for info in modules}
        for rule in self.rules:
            for info in modules:
                for finding in rule.check_module(info):
                    raw.append((info, finding))
            for finding in rule.check_project(modules):
                raw.append((by_path[finding.file], finding))
        for info, finding in raw:
            if self._is_suppressed(info, finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)
        # Fully keyed sort (message included as the tiebreaker) so the
        # rendered output is byte-stable across filesystems and rule
        # registration order — CI baselines diff against it.
        report.findings.sort(
            key=lambda f: (f.file, f.line, f.rule_id, f.message))
        return report

    def lint_paths(self, paths: Sequence[str]) -> LintReport:
        """Discover ``*.py`` files under ``paths`` and lint them."""
        modules: list[ModuleInfo] = []
        parse_errors: list[str] = []
        for filename in _discover(paths):
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            display = os.path.relpath(filename)
            try:
                modules.append(ModuleInfo.parse(
                    display, source, module=_infer_module(filename)))
            except SyntaxError as exc:
                parse_errors.append(f"{display}: {exc.msg} (line {exc.lineno})")
        report = self.lint_sources(modules)
        # _discover walks sorted, but keep the contract local: parse
        # errors render in path order regardless of the input order.
        report.parse_errors = sorted(parse_errors)
        return report

    @staticmethod
    def _is_suppressed(info: ModuleInfo, finding: Finding) -> bool:
        if not 1 <= finding.line <= len(info.lines):
            return False
        ids = suppressed_rule_ids(info.lines[finding.line - 1])
        if ids is None:
            return False
        return not ids or finding.rule_id in ids


def lint_paths(paths: Sequence[str],
               rules: Optional[Iterable[Rule]] = None) -> LintReport:
    """Convenience wrapper: lint ``paths`` with the stock rule set."""
    return Linter(rules).lint_paths(paths)
