"""Ordering rules: no iteration order borrowed from hash tables.

Python randomizes string hashing per interpreter launch (PYTHONHASHSEED),
so the iteration order of a ``set``/``frozenset`` of strings differs
between runs even with identical seeds.  Any sim-facing code that walks
a set — scheduling work per element, building output, draining members —
injects that randomness straight into the event order and breaks the
repo's byte-identical determinism guards.  Dict insertion order is
guaranteed, so dicts are fine; sets must be walked via ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, SEVERITY_WARNING
from .base import ModuleInfo, Rule, register_rule

__all__ = ["SetIterationRule"]

#: Calls that produce sets (or consume their iteration order directly).
_SET_FACTORIES = frozenset({"set", "frozenset"})

#: Set methods that return sets — ``a.union(b)`` etc. keep setness.
_SET_COMBINATORS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: Functions whose argument's iteration order becomes output order.
_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter", "map",
                          "filter", "join"})

#: ``sorted``/``min``/``max``/``sum``/``len``/``any``/``all`` consume a
#: set without exposing its order — those are the sanctioned sinks.
_ORDER_SAFE = frozenset({"sorted", "min", "max", "sum", "len", "any",
                         "all", "bool", "frozenset", "set"})


def _is_setish(node: ast.AST, set_names: set[str]) -> bool:
    """Does ``node`` evaluate to a set, as far as one file can tell?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        head = node.func
        if isinstance(head, ast.Name) and head.id in _SET_FACTORIES:
            return True
        if isinstance(head, ast.Attribute) and \
                head.attr in _SET_COMBINATORS:
            return _is_setish(head.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor,
                                 ast.Sub)):
        # a | b, a & b, a ^ b, a - b on sets stay sets; require one
        # side to be provably setish to avoid flagging int arithmetic.
        return _is_setish(node.left, set_names) or \
            _is_setish(node.right, set_names)
    return False


def _local_set_names(tree: ast.AST) -> set[str]:
    """Names assigned a set literal/comprehension/factory anywhere in
    the file (single-file approximation, deliberately shallow)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and \
                _is_setish(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name) and \
                _is_setish(node.value, names):
            names.add(node.target.id)
    return names


@register_rule
class SetIterationRule(Rule):
    """No iteration over ``set``/``frozenset`` in sim-facing code.

    Flags ``for x in <set>``, comprehensions over sets, unpacking a set,
    and order-exposing conversions (``list(s)``, ``tuple(s)``,
    ``enumerate(s)``, ``",".join(s)``, ``iter``/``map``/``filter`` over
    a set) anywhere under ``repro`` except the analysis tooling itself.
    Hash-randomized member order is per-interpreter state: it leaks
    into event ordering and breaks byte-identical replay.  Iterate
    ``sorted(the_set)`` instead (or keep a dict, whose insertion order
    is guaranteed).
    """

    rule_id = "set-iteration"
    severity = SEVERITY_WARNING
    description = ("iteration over a set/frozenset exposes "
                   "hash-randomized order; use sorted(...)")

    SIM_PACKAGE = "repro"
    EXEMPT_PACKAGE = "repro.analysis"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        if not info.in_package(self.SIM_PACKAGE) or \
                info.in_package(self.EXEMPT_PACKAGE):
            return
        set_names = _local_set_names(info.tree)
        for node in ast.walk(info.tree):
            if isinstance(node, ast.For) and \
                    _is_setish(node.iter, set_names):
                yield self.finding(
                    info, node.lineno,
                    "for-loop over a set: hash-randomized order is a "
                    "nondeterminism hazard; iterate sorted(...) instead")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_setish(comp.iter, set_names):
                        yield self.finding(
                            info, node.lineno,
                            "comprehension over a set: hash-randomized "
                            "order is a nondeterminism hazard; iterate "
                            "sorted(...) instead")
            elif isinstance(node, ast.Call):
                yield from self._check_call(info, node, set_names)
            elif isinstance(node, ast.Assign) and \
                    any(isinstance(t, (ast.Tuple, ast.List))
                        for t in node.targets) and \
                    _is_setish(node.value, set_names):
                yield self.finding(
                    info, node.lineno,
                    "unpacking a set: element order is hash-randomized; "
                    "unpack sorted(...) instead")

    def _check_call(self, info: ModuleInfo, node: ast.Call,
                    set_names: set[str]) -> Iterator[Finding]:
        head = node.func
        if isinstance(head, ast.Name):
            name = head.id
            if name in _ORDER_SAFE or name not in _ORDER_SINKS:
                return
            if any(_is_setish(arg, set_names) for arg in node.args):
                yield self.finding(
                    info, node.lineno,
                    f"{name}(...) over a set exposes hash-randomized "
                    "order; wrap the set in sorted(...) first")
        elif isinstance(head, ast.Attribute) and head.attr == "join":
            if any(_is_setish(arg, set_names) for arg in node.args):
                yield self.finding(
                    info, node.lineno,
                    "str.join over a set exposes hash-randomized order; "
                    "join sorted(...) instead")
