"""Performance rules: keep known-quadratic idioms off the hot path.

The benchmark profile showed ``list.pop(0)`` on packet and frame queues
as a measurable cost at load (each call shifts every remaining element).
The rule encodes the repo-wide convention adopted in the optimization
pass: FIFO queues use :class:`collections.deque` with ``popleft()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, SEVERITY_WARNING
from .base import ModuleInfo, Rule, register_rule

__all__ = ["HotQueuePopRule", "DirectHeapqRule"]


def _is_zero(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0


@register_rule
class HotQueuePopRule(Rule):
    """No ``x.pop(0)`` / ``x.insert(0, ...)`` inside ``repro``.

    Both are O(n) on lists and crop up on exactly the queues that grow
    under load.  Use ``collections.deque`` with ``popleft()`` /
    ``appendleft()``; for a genuine list (or a deque, where ``insert``
    is fine), suppress with ``# repro: noqa[hot-queue-pop]``.
    """

    rule_id = "hot-queue-pop"
    severity = SEVERITY_WARNING
    description = ("O(n) front-of-list operation; use deque.popleft() / "
                   "appendleft()")

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        if not info.in_package("repro"):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            args = node.args
            if method == "pop" and len(args) == 1 and _is_zero(args[0]):
                yield self.finding(
                    info, node.lineno,
                    "pop(0) shifts the whole list on every call; "
                    "use collections.deque and popleft()",
                )
            elif method == "insert" and len(args) == 2 and _is_zero(args[0]):
                yield self.finding(
                    info, node.lineno,
                    "insert(0, ...) shifts the whole list on every call; "
                    "use collections.deque and appendleft()",
                )


@register_rule
class DirectHeapqRule(Rule):
    """No direct ``heapq`` use outside :mod:`repro.sim.sched`.

    The kernel's event ordering is owned by the pluggable scheduler
    (``repro.sim.sched``); a stray ``heapq`` priority queue elsewhere
    tends to become a shadow event queue whose ordering the scheduler
    A/B determinism guard cannot see.  Algorithmic uses that are *not*
    event scheduling (e.g. Dijkstra's frontier in the routing table)
    suppress with ``# repro: noqa[direct-heapq]`` and a justification.
    """

    rule_id = "direct-heapq"
    severity = SEVERITY_WARNING
    description = ("direct heapq use outside repro.sim.sched; go through "
                   "the scheduler abstraction")

    SANCTIONED = "repro.sim.sched"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        if not info.in_package("repro") or info.module == self.SANCTIONED:
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
                if any(name == "heapq" or name.startswith("heapq.")
                       for name in names):
                    yield self.finding(
                        info, node.lineno,
                        "import heapq outside repro.sim.sched; event "
                        "ordering belongs to the scheduler abstraction",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and \
                        (node.module == "heapq"
                         or node.module.startswith("heapq.")):
                    yield self.finding(
                        info, node.lineno,
                        "from heapq import ... outside repro.sim.sched; "
                        "event ordering belongs to the scheduler "
                        "abstraction",
                    )
