"""Pluggable lint rules: base class, registry, and the stock catalogue.

A rule subclasses :class:`Rule` (from :mod:`.base`), registers itself
with :func:`register_rule`, and implements :meth:`Rule.check_module`
(one file at a time) and/or :meth:`Rule.check_project` (cross-file
analyses such as import-cycle detection, run once over the whole
module set).  Importing this package registers the stock catalogue.
"""

from .base import (
    ModuleInfo,
    Rule,
    RULE_REGISTRY,
    default_rules,
    register_rule,
)
from .determinism import ModuleRandomRule, WallClockRule
from .faults import FaultScheduleRule
from .forksafety import ForkUnsafeGlobalRule
from .hygiene import (
    BareExceptRule,
    BroadExceptRule,
    ExportDriftRule,
    MutableDefaultRule,
)
from .imports import ImportCycleRule
from .kernel import YieldEventRule
from .ordering import SetIterationRule
from .perf import HotQueuePopRule

__all__ = [
    "ModuleInfo",
    "Rule",
    "RULE_REGISTRY",
    "default_rules",
    "register_rule",
    "ModuleRandomRule",
    "WallClockRule",
    "FaultScheduleRule",
    "ForkUnsafeGlobalRule",
    "BareExceptRule",
    "BroadExceptRule",
    "ExportDriftRule",
    "MutableDefaultRule",
    "ImportCycleRule",
    "YieldEventRule",
    "SetIterationRule",
    "HotQueuePopRule",
]
