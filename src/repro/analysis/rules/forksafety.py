"""Fork-safety rule: module-level mutable state in shard-imported code.

The parallel engine hosts shard simulations in forked (or spawned)
worker processes.  Any module-level mutable container that code mutates
at runtime silently diverges across those processes: each worker mutates
its own copy, the coordinator never sees the writes, and a later
sequential run sees yet another history.  Per-instance state is safe
(every instance lives in exactly one shard's object graph — the
partitioner's ``replicated`` class); module globals are not, because the
*module* is what fork duplicates.

The rule flags a module-level name bound to a mutable container
(literal or known factory call) that any function in the module then
mutates — method mutators (``append``/``update``/...), subscript
assignment, or augmented assignment.  Registries filled once at import
time by decorators are conventionally suppressed with
``# repro: noqa[fork-unsafe-global]`` and a justification, as are
process-wide caches that are deliberate (and keyed so divergence is
harmless).  Tooling under ``repro.analysis`` is exempt: it never runs
inside a shard worker.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, SEVERITY_WARNING
from .base import ModuleInfo, Rule, register_rule
from .hygiene import _mutable_default

__all__ = ["ForkUnsafeGlobalRule"]

MUTATOR_METHODS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "remove", "setdefault",
    "update",
}

# Packages never imported by a shard worker's scenario build.
EXEMPT_PACKAGES = ("repro.analysis",)


def _module_level_mutables(tree: ast.Module) -> dict:
    """Module-scope ``NAME = <mutable>`` bindings -> assignment line."""
    bindings: dict = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
        else:
            continue
        if _mutable_default(value) is None:
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name):
                bindings.setdefault(target.id, node.lineno)
    return bindings


def _local_bindings(func: ast.AST) -> set:
    """Names the function binds locally (params, assignments) without
    declaring them ``global`` — those shadow the module global."""
    declared_global: set = set()
    local: set = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])):
        local.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    local.add(sub.id)
    return local - declared_global


def _mutations(func: ast.AST, names: set) -> Iterator[tuple]:
    """(name, lineno, how) for each mutation of a tracked global."""
    shadowed = _local_bindings(func)
    visible = names - shadowed
    if not visible:
        return
    for node in ast.walk(func):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in visible \
                and node.func.attr in MUTATOR_METHODS:
            yield (node.func.value.id, node.lineno,
                   f".{node.func.attr}()")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in visible:
                    yield (target.value.id, node.lineno, "[...] =")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in visible:
                    yield (target.value.id, node.lineno, "del [...]")


@register_rule
class ForkUnsafeGlobalRule(Rule):
    """Module-level mutable state mutated at runtime diverges silently
    across forked shard workers; hang it off an instance instead."""

    rule_id = "fork-unsafe-global"
    severity = SEVERITY_WARNING
    description = "module-level mutable state mutated at runtime " \
                  "(fork-unsafe under multiprocessing)"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        if not info.in_package("repro"):
            return
        if any(info.in_package(package) for package in EXEMPT_PACKAGES):
            return
        mutables = _module_level_mutables(info.tree)
        if not mutables:
            return
        names = set(mutables)
        reported: set = set()
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for name, lineno, how in _mutations(node, names):
                if name in reported:
                    continue
                reported.add(name)
                yield self.finding(
                    info, mutables[name],
                    f"module-level mutable {name!r} is mutated at "
                    f"runtime (line {lineno}: {name}{how}); each forked "
                    "shard worker mutates its own copy, so this state "
                    "silently diverges across processes — move it onto "
                    "an instance, or suppress with a justification if "
                    "the divergence is deliberate",
                )
