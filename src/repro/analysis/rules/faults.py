"""Chaos-determinism rule: fault schedules must live on the sim clock.

A fault plan built from ``time.time()`` offsets or module-level
``random`` draws silently destroys the chaos engine's byte-for-byte
reproducibility guarantee.  This rule inspects every module that uses
:mod:`repro.faults` and flags ``FaultPlan``/``FaultSpec`` construction
(and ``plan.add(...)`` / ``FaultPlan.random(...)`` calls) whose
argument expressions contain wall-clock reads or unseeded
``random.*`` calls.  Schedules must derive from ``sim.now``, plain
constants, or a seeded :class:`~repro.sim.RandomStream`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, SEVERITY_ERROR
from .base import ModuleInfo, Rule, register_rule
from .determinism import WALL_CLOCK_ATTRS, _dotted

__all__ = ["FaultScheduleRule"]

# Call targets whose arguments form a fault schedule.
_SCHEDULE_CALLEES = {"FaultPlan", "FaultSpec"}
_SCHEDULE_METHODS = {"add", "random", "from_dict"}


def _uses_faults(info: ModuleInfo) -> bool:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ImportFrom) and node.module and \
                "faults" in node.module.split("."):
            return True
        if isinstance(node, ast.Import):
            for alias in node.names:
                if "faults" in alias.name.split("."):
                    return True
    return False


def _is_schedule_call(node: ast.Call) -> bool:
    name = _dotted(node.func)
    if not name:
        return False
    parts = name.split(".")
    if parts[-1] in _SCHEDULE_CALLEES:
        return True
    if len(parts) >= 2 and parts[-1] in _SCHEDULE_METHODS and \
            ("plan" in parts[-2].lower() or parts[-2] in _SCHEDULE_CALLEES):
        return True
    return False


def _nondeterministic_source(node: ast.AST) -> str:
    """Why an argument subtree is nondeterministic, or ''."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        name = _dotted(child.func)
        if not name:
            continue
        parts = name.split(".")
        if len(parts) >= 2 and parts[0] in WALL_CLOCK_ATTRS and \
                parts[-1] in WALL_CLOCK_ATTRS[parts[0]]:
            return f"wall-clock call {name}()"
        if parts[0] == "random" and len(parts) >= 2:
            return f"module-random call {name}()"
        if parts[0] == "datetime" and parts[-1] in \
                WALL_CLOCK_ATTRS["datetime"]:
            return f"wall-clock call {name}()"
    return ""


@register_rule
class FaultScheduleRule(Rule):
    """Fault plans must be scheduled from sim time and seeded streams.

    In any module touching :mod:`repro.faults`, flags
    ``FaultPlan(...)``, ``FaultSpec(...)``, ``plan.add(...)``,
    ``plan.random(...)`` and ``FaultSpec.from_dict(...)`` calls whose
    arguments contain ``time.*``/``datetime.*`` wall-clock reads or
    module-level ``random.*`` draws.
    """

    rule_id = "fault-schedule"
    severity = SEVERITY_ERROR
    description = ("fault schedule built from wall clock or unseeded "
                   "random; use sim.now and sim-seeded RandomStream")

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        if not _uses_faults(info):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not _is_schedule_call(node):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                reason = _nondeterministic_source(arg)
                if reason:
                    yield self.finding(
                        info, node.lineno,
                        f"fault schedule argument uses {reason}: chaos "
                        "plans must be a pure function of the seed and "
                        "the simulation clock",
                    )
                    break
