"""Cross-file rule: import-cycle detection over the repro subpackages.

Builds the module-level import graph of every linted module that has a
dotted name (``repro.*``), resolves relative imports, and reports each
strongly connected component of size > 1 as a cycle.  Cycles between
subpackages make import order load-bearing and break lazy/partial
imports under parallel workers.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..findings import Finding, SEVERITY_ERROR
from .base import ModuleInfo, Rule, register_rule

__all__ = ["ImportCycleRule"]


def _is_package(info: ModuleInfo) -> bool:
    return info.path.replace("\\", "/").endswith("__init__.py")


def _resolve_base(info: ModuleInfo, level: int,
                  target: Optional[str]) -> Optional[str]:
    """Absolute dotted prefix a (possibly relative) import refers to."""
    if level == 0:
        return target
    assert info.module is not None
    parts = info.module.split(".")
    if not _is_package(info):
        parts = parts[:-1]
    drop = level - 1
    if drop:
        if drop >= len(parts):
            return None
        parts = parts[:-drop]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts) if parts else None


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _runtime_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """AST nodes reached at import time — skips ``if TYPE_CHECKING:``
    bodies, whose imports exist only for annotations and are the
    sanctioned way to break a cycle."""
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            stack.extend(node.orelse)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _edges(info: ModuleInfo,
           known: set[str]) -> Iterator[tuple[str, int]]:
    """(imported repro module, lineno) pairs for one module."""
    for node in _runtime_nodes(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                while name:
                    if name in known:
                        yield name, node.lineno
                        break
                    name = name.rpartition(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0 and info.module is None:
                continue
            base = _resolve_base(info, node.level, node.module)
            if base is None:
                continue
            for alias in node.names:
                submodule = f"{base}.{alias.name}"
                if submodule in known:
                    yield submodule, node.lineno
                elif base in known:
                    yield base, node.lineno


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's algorithm, iterative; returns SCCs with > 1 member."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for node in sorted(graph):
        if node not in index:
            visit(node)
    return sccs


@register_rule
class ImportCycleRule(Rule):
    """No import cycles among the repro subpackages/modules."""

    rule_id = "import-cycle"
    severity = SEVERITY_ERROR
    description = "import cycle between repro modules"

    def check_project(self,
                      modules: Iterable[ModuleInfo]) -> Iterator[Finding]:
        infos = [m for m in modules if m.module is not None]
        known = {m.module for m in infos}
        by_name = {m.module: m for m in infos}
        graph: dict[str, set[str]] = {name: set() for name in known}
        linenos: dict[tuple[str, str], int] = {}
        for info in infos:
            for target, lineno in _edges(info, known):
                if target == info.module:
                    continue
                graph[info.module].add(target)
                linenos.setdefault((info.module, target), lineno)

        for scc in _strongly_connected(graph):
            first = scc[0]
            in_cycle = set(scc)
            successor = next(s for s in sorted(graph[first])
                             if s in in_cycle)
            yield self.finding(
                by_name[first],
                linenos.get((first, successor), 1),
                "import cycle: " + " -> ".join(scc + [first]),
            )
