"""Kernel-hygiene rule: simulation processes must yield Events.

The kernel resumes a process only when the yielded :class:`Event`
fires; yielding a bare constant is always a latent
``SimulationError`` at run time.  This rule finds it statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, SEVERITY_ERROR
from .base import ModuleInfo, Rule, register_rule

__all__ = ["YieldEventRule"]

# Parameter names that mark a function as a simulation process.
PROCESS_PARAMS = frozenset({"env", "sim"})


def _is_process(func: ast.AST) -> bool:
    args = func.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    return bool(names & PROCESS_PARAMS)


def _own_yields(func: ast.AST) -> Iterator[ast.Yield]:
    """Yield expressions belonging to ``func`` itself, not nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Yield):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class YieldEventRule(Rule):
    """Processes (functions taking ``env``/``sim``) may only yield Events.

    A ``yield`` of a literal constant (``yield``, ``yield None``,
    ``yield 5``, ``yield "x"``) inside such a function can never be a
    kernel :class:`Event` and would raise ``SimulationError`` when the
    process runs.
    """

    rule_id = "yield-event"
    severity = SEVERITY_ERROR
    description = ("simulation process yields a bare constant instead of "
                   "an Event")

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_process(node):
                continue
            for yielded in _own_yields(node):
                value = yielded.value
                if value is None or isinstance(value, ast.Constant):
                    shown = ("<nothing>" if value is None
                             else repr(value.value))
                    yield self.finding(
                        info, yielded.lineno,
                        f"process {node.name!r} yields {shown}; the kernel "
                        "only accepts Event subclasses (timeout(), "
                        "recv(), ...)",
                    )
