"""Rule base class, parsed-module record, and the rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..findings import Finding, SEVERITY_ERROR

__all__ = ["ModuleInfo", "Rule", "RULE_REGISTRY", "register_rule",
           "default_rules"]


@dataclass
class ModuleInfo:
    """A parsed source file handed to every rule."""

    path: str                 # display path (relative to the lint root)
    module: Optional[str]     # dotted module name when importable, or None
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str,
              module: Optional[str] = None) -> "ModuleInfo":
        return cls(
            path=path,
            module=module,
            source=source,
            tree=ast.parse(source, filename=path),
            lines=source.splitlines(),
        )

    def in_package(self, prefix: str) -> bool:
        """Is this module inside the dotted package ``prefix``?"""
        if self.module is None:
            return False
        return self.module == prefix or self.module.startswith(prefix + ".")


class Rule:
    """One checkable property of the codebase."""

    rule_id: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""

    def finding(self, info: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(
            file=info.path,
            line=line,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        """Findings for a single parsed module."""
        return iter(())

    def check_project(self,
                      modules: Iterable[ModuleInfo]) -> Iterator[Finding]:
        """Findings that need the whole module set (e.g. import graphs)."""
        return iter(())


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} lacks a rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def default_rules(only: Optional[Iterable[str]] = None) -> list[Rule]:
    """Instantiate the stock catalogue (optionally a subset by id).

    Importing :mod:`repro.analysis.rules` registers the stock rules;
    callers normally go through that package.
    """
    wanted = set(only) if only is not None else None
    if wanted is not None:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
    return [cls() for rule_id, cls in sorted(RULE_REGISTRY.items())
            if wanted is None or rule_id in wanted]
