"""Determinism rules: virtual time and seeded randomness only.

Reproducible parallel workloads require that nothing outside the
simulation kernel reads the wall clock or draws from process-global
randomness — both make traces irreproducible across runs and machines.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, SEVERITY_ERROR
from .base import ModuleInfo, Rule, register_rule

__all__ = ["WallClockRule", "ModuleRandomRule"]

# The only package allowed to touch host time / host RNG state.
KERNEL_PACKAGE = "repro.sim"

# module -> attribute names that read or depend on the wall clock.
WALL_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "sleep", "localtime",
             "gmtime"},
    "datetime": {"now", "utcnow", "today"},
}


def _dotted(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains; '' for anything dynamic."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register_rule
class WallClockRule(Rule):
    """No wall-clock access outside the simulation kernel.

    Flags calls such as ``time.time()``, ``time.sleep()``,
    ``datetime.datetime.now()`` and bare ``sleep(...)``/``time()``
    imported from :mod:`time` — everywhere except ``repro.sim``.
    Simulated code must use ``sim.now`` and ``sim.timeout()``.
    """

    rule_id = "wall-clock"
    severity = SEVERITY_ERROR
    description = ("wall-clock read/sleep outside the kernel; use "
                   "sim.now / sim.timeout()")

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        if info.in_package(KERNEL_PACKAGE):
            return
        # Names imported straight off the time module: from time import X.
        direct: dict[str, str] = {}
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module in WALL_CLOCK_ATTRS:
                for alias in node.names:
                    if alias.name in WALL_CLOCK_ATTRS[node.module]:
                        direct[alias.asname or alias.name] = \
                            f"{node.module}.{alias.name}"
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if not name:
                continue
            if name in direct:
                yield self.finding(
                    info, node.lineno,
                    f"call to {direct[name]} (imported as {name!r}): "
                    "wall-clock time is nondeterministic in simulation",
                )
                continue
            head, _, tail = name.partition(".")
            attr = tail.rsplit(".", 1)[-1] if tail else ""
            if head in WALL_CLOCK_ATTRS and attr in WALL_CLOCK_ATTRS[head]:
                yield self.finding(
                    info, node.lineno,
                    f"call to {name}: wall-clock time is nondeterministic "
                    "in simulation; use the kernel's virtual clock",
                )
            elif head == "datetime" and tail and \
                    attr in WALL_CLOCK_ATTRS["datetime"]:
                yield self.finding(
                    info, node.lineno,
                    f"call to {name}: wall-clock date is nondeterministic "
                    "in simulation",
                )


@register_rule
class ModuleRandomRule(Rule):
    """No direct use of :mod:`random` outside ``repro.sim.random``.

    All stochastic draws must come from a named, seeded
    :class:`repro.sim.RandomStream` so that two runs with the same root
    seed produce identical traces.
    """

    rule_id = "module-random"
    severity = SEVERITY_ERROR
    description = ("direct 'random' module use; draw from a seeded "
                   "repro.sim.RandomStream instead")

    ALLOWED_MODULE = "repro.sim.random"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        if info.module == self.ALLOWED_MODULE:
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self.finding(
                            info, node.lineno,
                            f"import of {alias.name!r}: unseeded global "
                            "RNG breaks reproducibility; use "
                            "repro.sim.SeedBank streams",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.finding(
                        info, node.lineno,
                        "from-import of the 'random' module: use "
                        "repro.sim.SeedBank streams",
                    )
