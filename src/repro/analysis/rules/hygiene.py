"""Code-hygiene rules: exception discipline, defaults, export drift."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding, SEVERITY_ERROR, SEVERITY_WARNING
from .base import ModuleInfo, Rule, register_rule

__all__ = ["BareExceptRule", "BroadExceptRule", "MutableDefaultRule",
           "ExportDriftRule"]

BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}


@register_rule
class BareExceptRule(Rule):
    """``except:`` with no exception type swallows Interrupt and
    SimulationError, silently corrupting the event loop."""

    rule_id = "bare-except"
    severity = SEVERITY_ERROR
    description = "bare 'except:' clause"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    info, node.lineno,
                    "bare 'except:' swallows kernel Interrupt/"
                    "SimulationError; name the exceptions you expect",
                )


def _exception_names(node: ast.AST) -> list[tuple[str, int]]:
    """(name, lineno) for each exception class named by a handler type."""
    if isinstance(node, ast.Tuple):
        out = []
        for element in node.elts:
            out.extend(_exception_names(element))
        return out
    if isinstance(node, ast.Name):
        return [(node.id, node.lineno)]
    if isinstance(node, ast.Attribute):
        return [(node.attr, node.lineno)]
    return []


@register_rule
class BroadExceptRule(Rule):
    """``except Exception``/``except BaseException`` catches the kernel's
    control-flow exceptions too; catch the specific failures instead, or
    re-raise Interrupt/SimulationError first and suppress the finding
    with a justification."""

    rule_id = "broad-except"
    severity = SEVERITY_ERROR
    description = "overly broad exception handler"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            for name, lineno in _exception_names(node.type):
                if name in BROAD_EXCEPTION_NAMES:
                    yield self.finding(
                        info, lineno,
                        f"'except {name}' also catches Interrupt/"
                        "SimulationError; catch the specific exceptions "
                        "(and re-raise kernel ones first if a fault "
                        "barrier is intended)",
                    )


MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                 "Counter", "OrderedDict", "deque"}


def _mutable_default(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, (ast.Set, ast.SetComp, ast.ListComp, ast.DictComp)):
        return "a mutable comprehension/literal"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in MUTABLE_CALLS:
        return f"{node.func.id}()"
    return None


@register_rule
class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls — hidden global
    state that leaks between simulation runs."""

    rule_id = "mutable-default"
    severity = SEVERITY_ERROR
    description = "mutable default argument"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + \
                [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                shown = _mutable_default(default)
                if shown is not None:
                    yield self.finding(
                        info, default.lineno,
                        f"{name}() has mutable default {shown}: state is "
                        "shared across calls; default to None and build "
                        "inside",
                    )


def _module_scope_names(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module scope; bool is True when ``import *`` seen."""
    names: set[str] = set()
    star = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    star = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
    return names, star


def _declared_all(tree: ast.Module) -> Optional[tuple[list[str], int]]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        entries = [e.value for e in node.value.elts
                                   if isinstance(e, ast.Constant)
                                   and isinstance(e.value, str)]
                        return entries, node.lineno
    return None


@register_rule
class ExportDriftRule(Rule):
    """``__all__`` must track the module: every listed name defined,
    no duplicates, and every public top-level class/function listed."""

    rule_id = "export-drift"
    severity = SEVERITY_WARNING
    description = "__all__ out of sync with module definitions"

    def check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        declared = _declared_all(info.tree)
        if declared is None:
            return
        entries, lineno = declared
        defined, star_import = _module_scope_names(info.tree)

        seen: set[str] = set()
        for entry in entries:
            if entry in seen:
                yield self.finding(
                    info, lineno, f"__all__ lists {entry!r} twice")
            seen.add(entry)
            if not star_import and entry not in defined:
                yield self.finding(
                    info, lineno,
                    f"__all__ exports {entry!r} which is not defined or "
                    "imported in the module",
                )

        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) \
                    and not node.name.startswith("_") \
                    and node.name not in seen:
                yield self.finding(
                    info, node.lineno,
                    f"public {node.name!r} is missing from __all__",
                )
