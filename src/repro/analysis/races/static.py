"""Whole-program shared-state analysis over simulation processes.

The per-file linter answers "is this line safe?"; this pass answers a
whole-program question: *which mutable state do simulation processes
share?*  It works in four stages:

1. **Function harvest** — every function/method in the module set is
   recorded under its dotted qualname; functions containing their own
   ``yield`` are *process functions* (the kernel resumes them event by
   event).
2. **Call graph** — edges are resolved precisely where possible (same
   module functions, ``self.method`` within a class, imported-module
   attributes, ``yield from``) and by class-hierarchy approximation
   for ``anything.method(...)`` calls (every known class defining that
   method is a candidate callee).  CHA over-approximates, which is the
   conservative direction for a race detector; builtin-container
   method names (``append``, ``get``, ``update`` ...) are excluded
   because they would wire spurious edges through every dict and list.
3. **Access harvest** — each function's reads and writes of
   ``self.attr`` state (keyed ``Class.attr``) and module-level mutable
   globals (keyed ``module.NAME``) are recorded, including writes
   through subscripts, ``+=`` and known mutator methods.  Accesses
   made through the kernel's sanctioned handoff methods
   (``put``/``get`` on a Store, ``request``/``release`` on a Resource,
   ``succeed``/``fail``/``interrupt`` on an Event) are marked as
   handoffs, not raw state touches — ordering through the kernel is
   exactly what makes sharing safe.
4. **Matrix + findings** — for every state key, union the accesses of
   each process entry's reachable call-graph slice.  A key written by
   one process function and touched by at least one other (without a
   handoff) is *cross-process mutable state*: a finding is emitted at
   each writing file's first write site, and the full matrix goes into
   a JSON artifact that the shard-boundary work can consume.

The kernel package (``repro.sim``) is exempt: the scheduler and event
machinery own their ordering by construction.  Same-process
multi-instance sharing (fifty shoppers running one function) is the
dynamic sanitizer's job — it sees object identity at run time, this
pass cannot.

Findings are suppressed like lint findings, with
``# repro: noqa[shared-state]`` on the flagged line.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..findings import Finding, SEVERITY_WARNING
from ..linter import suppressed_rule_ids
from ..rules import ModuleInfo

__all__ = ["FunctionRecord", "RaceAnalysis", "StaticRaceAnalyzer",
           "analyze_paths", "analyze_sources", "RULE_ID",
           "HANDOFF_METHODS"]

RULE_ID = "shared-state"

#: The kernel package whose internal state is ordered by construction.
KERNEL_PACKAGE = "repro.sim"

#: Packages exempt from shared-state attribution: the kernel owns its
#: ordering by construction, and the analysis/instrumentation tooling
#: is not sim-facing (the sanitizer's own bookkeeping is written from
#: the kernel dispatch loop by design).
EXEMPT_PACKAGES = (KERNEL_PACKAGE, "repro.analysis")

#: Kernel-ordered handoff methods: mutations through these are the
#: sanctioned way for state to cross process boundaries.
HANDOFF_METHODS = frozenset({
    "put", "get", "request", "release", "succeed", "fail", "interrupt",
    "trigger",
})

#: Container methods that mutate their receiver.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "pop",
    "popleft", "popitem", "remove", "clear", "update", "add", "discard",
    "setdefault", "sort", "reverse", "incr",
})

#: Method names too generic for class-hierarchy call resolution:
#: wiring an edge through every ``x.get(...)`` would connect the whole
#: program through Python's own containers.
CHA_EXCLUDED = MUTATOR_METHODS | HANDOFF_METHODS | frozenset({
    "keys", "values", "items", "copy", "count", "index", "join",
    "split", "strip", "encode", "decode", "format", "startswith",
    "endswith", "read", "write", "close",
})

_SET_OPS = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
            ast.SetComp)
_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "defaultdict",
                                "deque", "OrderedDict", "Counter"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, _SET_OPS):
        return True
    if isinstance(node, ast.Call):
        head = node.func
        name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else "")
        return name in _MUTABLE_FACTORIES
    return False


@dataclass
class FunctionRecord:
    """One harvested function definition."""

    qualname: str                 # module.Outer.inner
    module: str
    path: str
    lineno: int
    node: ast.AST
    owner_class: Optional[str]    # dotted class qualname for methods
    is_process: bool = False      # contains its own yield
    calls: list[str] = field(default_factory=list)
    reads: dict[str, tuple] = field(default_factory=dict)   # key -> site
    writes: dict[str, tuple] = field(default_factory=dict)  # key -> site
    handoffs: set[str] = field(default_factory=set)


def _own_nodes(func: ast.AST):
    """Statements/expressions belonging to ``func``, not nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _attr_chain_root(node: ast.AST):
    """(root-name, first-attr) for ``root.attr[...]...`` chains."""
    attrs = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and attrs:
        return node.id, attrs[-1]
    return None, None


class StaticRaceAnalyzer:
    """Builds the call graph and access matrix over a module set."""

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules = [info for info in modules if info.module]
        self.functions: dict[str, FunctionRecord] = {}
        # method name -> qualnames of every class method with that name
        self._methods_by_name: dict[str, list[str]] = {}
        # module -> {local alias -> imported module dotted name}
        self._imports: dict[str, dict[str, str]] = {}
        # module -> set of module-level mutable global names
        self._globals: dict[str, set[str]] = {}
        self._infos_by_path = {info.path: info for info in self.modules}
        self.unresolved_calls = 0
        self.cha_edges = 0

    # -- stage 1+3: harvest functions and accesses -----------------------
    def _harvest_module(self, info: ModuleInfo) -> None:
        module = info.module or ""
        imports: dict[str, str] = {}
        mutable_globals: set[str] = set()
        for node in info.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Assign):
                if _is_mutable_literal(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            mutable_globals.add(target.id)
        self._imports[module] = imports
        self._globals[module] = mutable_globals

        def walk(body, prefix: str, owner_class: Optional[str]):
            for node in body:
                if isinstance(node, ast.ClassDef):
                    walk(node.body, f"{prefix}.{node.name}",
                         f"{prefix}.{node.name}")
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    record = FunctionRecord(
                        qualname=qualname, module=module, path=info.path,
                        lineno=node.lineno, node=node,
                        owner_class=owner_class)
                    self.functions[qualname] = record
                    if owner_class is not None:
                        self._methods_by_name.setdefault(
                            node.name, []).append(qualname)
                    # nested defs: owner class no longer applies
                    walk(node.body, qualname, None)

        walk(info.tree.body, module, None)

    def _analyze_function(self, record: FunctionRecord) -> None:
        module = record.module
        imports = self._imports.get(module, {})
        mutable_globals = self._globals.get(module, set())
        declared_global: set[str] = set()
        for node in _own_nodes(record.node):
            if isinstance(node, ast.Yield):
                record.is_process = True
            elif isinstance(node, ast.YieldFrom):
                record.is_process = True
                value = node.value
                if isinstance(value, ast.Call):
                    self._note_call(record, value)
            elif isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Call):
                self._note_call(record, node)
            elif isinstance(node, ast.Attribute):
                self._note_attribute(record, node)
            elif isinstance(node, ast.Name):
                self._note_global(record, node, mutable_globals,
                                  declared_global)
            elif isinstance(node, ast.Subscript):
                self._note_subscript(record, node)
            elif isinstance(node, ast.AugAssign):
                self._note_augassign(record, node, mutable_globals)

    # -- access classification -------------------------------------------
    def _state_key(self, record: FunctionRecord, root: str,
                   attr: str) -> Optional[str]:
        """State key for ``root.attr`` or None when unresolvable."""
        if root in ("self", "cls") and record.owner_class is not None:
            return f"{record.owner_class}.{attr}"
        target = self._imports.get(record.module, {}).get(root)
        if target is not None and attr in self._globals.get(target, set()):
            return f"{target}.{attr}"
        return None

    def _site(self, record: FunctionRecord, node: ast.AST) -> tuple:
        return (record.path, getattr(node, "lineno", record.lineno))

    def _note(self, record: FunctionRecord, key: Optional[str],
              node: ast.AST, write: bool) -> None:
        if key is None:
            return
        book = record.writes if write else record.reads
        site = self._site(record, node)
        existing = book.get(key)
        if existing is None or site < existing:
            book[key] = site

    def _note_attribute(self, record: FunctionRecord,
                        node: ast.Attribute) -> None:
        if not isinstance(node.value, ast.Name):
            return
        key = self._state_key(record, node.value.id, node.attr)
        self._note(record, key, node,
                   write=isinstance(node.ctx, (ast.Store, ast.Del)))

    def _note_global(self, record: FunctionRecord, node: ast.Name,
                     mutable_globals: set, declared_global: set) -> None:
        name = node.id
        if name not in mutable_globals:
            return
        write = isinstance(node.ctx, (ast.Store, ast.Del)) and \
            name in declared_global
        if isinstance(node.ctx, ast.Load) or write:
            self._note(record, f"{record.module}.{name}", node, write=write)

    def _note_subscript(self, record: FunctionRecord,
                        node: ast.Subscript) -> None:
        root, attr = _attr_chain_root(node.value)
        key = None
        if root is not None:
            key = self._state_key(record, root, attr)
        elif isinstance(node.value, ast.Name):
            name = node.value.id
            if name in self._globals.get(record.module, set()):
                key = f"{record.module}.{name}"
        self._note(record, key, node,
                   write=isinstance(node.ctx, (ast.Store, ast.Del)))

    def _note_augassign(self, record: FunctionRecord, node: ast.AugAssign,
                        mutable_globals: set) -> None:
        target = node.target
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name):
            key = self._state_key(record, target.value.id, target.attr)
            self._note(record, key, node, write=True)
            self._note(record, key, node, write=False)
        elif isinstance(target, ast.Subscript):
            self._note_subscript(record, target)

    def _note_call(self, record: FunctionRecord, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._note_name_call(record, func.id)
            return
        if not isinstance(func, ast.Attribute):
            self.unresolved_calls += 1
            return
        method = func.attr
        receiver = func.value
        # A mutator/handoff method call on tracked state is an access,
        # not a call-graph edge.
        root, attr = _attr_chain_root(receiver)
        if root is not None:
            key = self._state_key(record, root, attr)
            if key is not None:
                if method in HANDOFF_METHODS:
                    record.handoffs.add(key)
                    return
                if method in MUTATOR_METHODS:
                    self._note(record, key, node, write=True)
                    return
                self._note(record, key, node, write=False)
        if isinstance(receiver, ast.Name):
            rid = receiver.id
            if rid in ("self", "cls") and record.owner_class is not None:
                target = f"{record.owner_class}.{method}"
                if target in self.functions:
                    record.calls.append(target)
                    return
            imported = self._imports.get(record.module, {}).get(rid)
            if imported is not None:
                target = f"{imported}.{method}"
                if target in self.functions:
                    record.calls.append(target)
                    return
            name = rid
            if name in self._globals.get(record.module, set()) and \
                    method in MUTATOR_METHODS:
                self._note(record, f"{record.module}.{name}", node,
                           write=True)
                return
        # Class-hierarchy approximation for everything else.
        if method not in CHA_EXCLUDED and not method.startswith("__"):
            candidates = self._methods_by_name.get(method, ())
            if candidates:
                record.calls.extend(candidates)
                self.cha_edges += len(candidates)
                return
        self.unresolved_calls += 1

    def _note_name_call(self, record: FunctionRecord, name: str) -> None:
        # Same scope (nested), same module, or from-imported function.
        prefix = record.qualname.rsplit(".", 1)[0]
        for candidate in (f"{record.qualname}.{name}", f"{prefix}.{name}",
                          f"{record.module}.{name}",
                          self._imports.get(record.module, {}).get(name)):
            if candidate and candidate in self.functions:
                record.calls.append(candidate)
                return
        self.unresolved_calls += 1

    # -- stage 4: matrix + findings ---------------------------------------
    def _reachable(self, entry: str) -> set[str]:
        seen: set[str] = set()
        stack = [entry]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            record = self.functions.get(qualname)
            if record is not None:
                stack.extend(record.calls)
        return seen

    def analyze(self) -> "RaceAnalysis":
        for info in self.modules:
            self._harvest_module(info)
        for record in self.functions.values():
            self._analyze_function(record)

        processes = sorted(
            qualname for qualname, record in self.functions.items()
            if record.is_process and not _exempt_module(record.module))

        matrix: dict[str, dict] = {}
        for process in processes:
            for qualname in self._reachable(process):
                record = self.functions.get(qualname)
                if record is None or _exempt_module(record.module):
                    continue
                for key, site in record.writes.items():
                    _matrix_note(matrix, key, process, "W", site)
                for key, site in record.reads.items():
                    _matrix_note(matrix, key, process, "R", site)
                for key in record.handoffs:
                    matrix.setdefault(key, _new_cell())["handoff"] = True

        findings = self._findings(matrix)
        return RaceAnalysis(
            matrix=matrix,
            processes=processes,
            findings=findings,
            functions=len(self.functions),
            modules=len(self.modules),
            unresolved_calls=self.unresolved_calls,
            cha_edges=self.cha_edges,
        )

    def _findings(self, matrix: dict) -> list[Finding]:
        findings: list[Finding] = []
        for key in sorted(matrix):
            cell = matrix[key]
            if _owner_module(key, self.functions) and \
                    _exempt_module(_owner_module(key, self.functions)):
                continue
            writers = sorted(p for p, kinds in cell["accesses"].items()
                             if "W" in kinds)
            touchers = sorted(cell["accesses"])
            cell["cross_process_write"] = bool(
                writers and len(touchers) > 1)
            if not cell["cross_process_write"]:
                continue
            readers = [p for p in touchers if p not in writers]
            by_file: dict[str, int] = {}
            for path, line in cell["write_sites"]:
                if path not in by_file or line < by_file[path]:
                    by_file[path] = line
            for path in sorted(by_file):
                finding = Finding(
                    file=path,
                    line=by_file[path],
                    rule_id=RULE_ID,
                    severity=SEVERITY_WARNING,
                    message=(
                        f"'{key}' is cross-process mutable state: "
                        f"written by {_brief(writers)}"
                        + (f", also touched by {_brief(readers)}"
                           if readers else " from multiple processes")
                        + "; order the access through a kernel handoff "
                          "(Event/Store/Resource) or document the "
                          "commutativity"),
                )
                if self._suppressed(finding):
                    continue
                findings.append(finding)
        findings.sort(key=lambda f: (f.file, f.line, f.rule_id, f.message))
        return findings

    def _suppressed(self, finding: Finding) -> bool:
        info = self._infos_by_path.get(finding.file)
        if info is None or not 1 <= finding.line <= len(info.lines):
            return False
        ids = suppressed_rule_ids(info.lines[finding.line - 1])
        if ids is None:
            return False
        return not ids or finding.rule_id in ids


def _brief(processes: list) -> str:
    """Compact rendering of a process list for finding messages."""
    shown = [p.rsplit(".", 1)[-1] for p in processes[:3]]
    extra = len(processes) - len(shown)
    rendered = ", ".join(shown)
    if extra > 0:
        rendered += f" (+{extra} more)"
    return rendered


def _exempt_module(module: Optional[str]) -> bool:
    return bool(module) and any(
        module == package or module.startswith(package + ".")
        for package in EXEMPT_PACKAGES)


def _owner_module(key: str, functions: dict) -> Optional[str]:
    """Best-effort module owning a state key (``module.Class.attr``)."""
    owner = key.rsplit(".", 1)[0]
    record = functions.get(owner)
    if record is not None:
        return record.module
    # Walk the dotted prefix down to something that looks like a module.
    parts = owner.split(".")
    while parts and parts[-1][:1].isupper():
        parts.pop()
    return ".".join(parts) or None


def _new_cell() -> dict:
    return {"accesses": {}, "write_sites": [], "read_sites": [],
            "handoff": False, "cross_process_write": False}


def _matrix_note(matrix: dict, key: str, process: str, kind: str,
                 site: tuple) -> None:
    cell = matrix.setdefault(key, _new_cell())
    kinds = cell["accesses"].setdefault(process, "")
    if kind not in kinds:
        cell["accesses"][process] = "".join(sorted(kinds + kind))
    sites = cell["write_sites"] if kind == "W" else cell["read_sites"]
    if site not in sites:
        sites.append(site)


@dataclass
class RaceAnalysis:
    """The whole-program result: matrix, processes, findings."""

    matrix: dict
    processes: list[str]
    findings: list[Finding]
    functions: int = 0
    modules: int = 0
    unresolved_calls: int = 0
    cha_edges: int = 0

    def findings_in(self, prefixes: Sequence[str]) -> list[Finding]:
        """Findings whose file path starts with any of ``prefixes``."""
        normalized = [p.rstrip("/") for p in prefixes]
        return [f for f in self.findings
                if any(f.file.startswith(p + "/") or f.file == p
                       or f"/{p}/" in f.file for p in normalized)]

    def to_dict(self) -> dict:
        """The JSON artifact later shard-boundary work consumes."""
        matrix = {}
        for key in sorted(self.matrix):
            cell = self.matrix[key]
            matrix[key] = {
                "accesses": dict(sorted(cell["accesses"].items())),
                "write_sites": [
                    {"file": path, "line": line}
                    for path, line in sorted(cell["write_sites"])],
                "read_sites": [
                    {"file": path, "line": line}
                    for path, line in sorted(cell["read_sites"])],
                "kernel_handoff": bool(cell["handoff"]),
                "cross_process_write": bool(cell["cross_process_write"]),
            }
        return {
            "generated_by": "python -m repro races",
            "modules": self.modules,
            "functions": self.functions,
            "processes": list(self.processes),
            "unresolved_calls": self.unresolved_calls,
            "cha_edges": self.cha_edges,
            "state_keys": len(matrix),
            "cross_process_keys": sum(
                1 for cell in matrix.values()
                if cell["cross_process_write"]),
            "matrix": matrix,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} cross-process shared-state finding(s) "
            f"over {len(self.processes)} process function(s), "
            f"{self.functions} function(s), {self.modules} module(s)")
        return "\n".join(lines)


def analyze_sources(sources: Iterable[ModuleInfo]) -> RaceAnalysis:
    """Run the whole-program pass over already-parsed modules."""
    return StaticRaceAnalyzer(sources).analyze()


def analyze_paths(paths: Sequence[str]) -> RaceAnalysis:
    """Discover ``*.py`` files under ``paths`` and analyze them.

    Discovery and module inference go through the linter's own walker
    so path display matches lint output exactly (and stays
    stable-sorted across filesystems).
    """
    import os

    from ..linter import _discover, _infer_module

    modules: list[ModuleInfo] = []
    for filename in _discover(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        display = os.path.relpath(filename)
        modules.append(ModuleInfo.parse(
            display, source, module=_infer_module(filename)))
    return analyze_sources(modules)
