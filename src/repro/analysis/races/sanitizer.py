"""Same-timestamp commutativity sanitizer (the dynamic side).

The kernel dispatches every event sharing the earliest timestamp as one
``pop_batch`` batch (see :meth:`repro.sim.Simulator.run`).  Entries in
a batch have no intra-batch causal edges through the kernel — they were
all scheduled before dispatch began — which makes them exactly the
candidates a parallel-DES core would run concurrently.  The sanitizer
asks the question that refactor depends on: *do they commute?*

Three pieces:

* :class:`AccessRecorder` + :class:`TrackedDict`/:class:`TrackedList` —
  instrumented shared containers that report every read and write,
  attributed to whichever event the kernel is currently dispatching.
  :func:`instrument_system` sweeps a built system's well-known shared
  components (payment accounts, sessions, DB tables, gateway caches
  and counters ...) and swaps their dicts/lists for tracked versions;
  the wrappers are behaviour-identical, so an instrumented run
  computes byte-identical results.
* :class:`BatchSanitizer` — the kernel hook (installed via
  :func:`install_sanitizer`, duck-typed like the tracer/profiler).
  For every batch it closes per-event read/write sets and flags
  *hazards*: two events in one batch whose sets overlap on a key with
  at least one write (write/write, or read/write in either order).
* :class:`FlipDirective` — the confirmation tool.  A hazard is only a
  *candidate*; the proof is behavioural.  A second, fully
  deterministic run replays the scenario with the flagged batch
  dispatched in flipped order (the conflicting pair transposed, or
  the whole batch reversed) and the final state hashes are diffed.
  Divergence = CONFIRMED race; identical bytes = the accesses commute
  in effect (e.g. independent counter increments).

Seeded :class:`repro.sim.RandomStream` draws are deliberately *not*
tracked: the seed bank is kernel-owned state (the parallel-DES plan
splits streams per shard), and its draw order is part of the kernel's
ordering contract, not application-level sharing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "AccessRecorder",
    "BatchSanitizer",
    "FlipDirective",
    "TrackedDict",
    "TrackedList",
    "first_divergence",
    "install_sanitizer",
    "instrument_system",
    "null_recorder",
    "state_hash",
]


# --------------------------------------------------------------- recording
class AccessRecorder:
    """Collects (key, kind) accesses attributed to the current event.

    ``current`` is the index of the event being dispatched within the
    current batch, or ``None`` outside dispatch (system build, report
    collection) — ambient accesses are not recorded.
    """

    __slots__ = ("current", "reads", "writes", "enabled")

    def __init__(self):
        self.current: Optional[int] = None
        self.reads: dict[int, set] = {}
        self.writes: dict[int, set] = {}
        self.enabled = True

    def note_read(self, label: str, key: Any) -> None:
        if self.current is not None and self.enabled:
            self.reads.setdefault(self.current, set()).add((label, key))

    def note_write(self, label: str, key: Any) -> None:
        if self.current is not None and self.enabled:
            self.writes.setdefault(self.current, set()).add((label, key))

    def begin_event(self, index: int) -> None:
        self.current = index

    def reset(self) -> None:
        self.current = None
        self.reads.clear()
        self.writes.clear()


class _NullRecorder(AccessRecorder):
    """Recorder that keeps tracked containers alive but records nothing
    (used by confirmation replays, which only need identical types)."""

    __slots__ = ()

    def __init__(self):
        super().__init__()
        self.enabled = False


class TrackedDict(dict):
    """A dict reporting reads/writes to an :class:`AccessRecorder`.

    Key-granular: two events touching *different* keys of one dict do
    not conflict.  Whole-container operations (iteration, ``len``,
    ``clear``) use the wildcard key ``"*"``.
    """

    __slots__ = ("_recorder", "_label")

    def __init__(self, data, recorder: AccessRecorder, label: str):
        super().__init__(data)
        self._recorder = recorder
        self._label = label

    def __getitem__(self, key):
        self._recorder.note_read(self._label, key)
        return super().__getitem__(key)

    def __setitem__(self, key, value):
        self._recorder.note_write(self._label, key)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._recorder.note_write(self._label, key)
        super().__delitem__(key)

    def __contains__(self, key):
        self._recorder.note_read(self._label, key)
        return super().__contains__(key)

    def __iter__(self):
        self._recorder.note_read(self._label, "*")
        return super().__iter__()

    def get(self, key, default=None):
        self._recorder.note_read(self._label, key)
        return super().get(key, default)

    def pop(self, key, *default):
        self._recorder.note_write(self._label, key)
        return super().pop(key, *default)

    def popitem(self):
        self._recorder.note_write(self._label, "*")
        return super().popitem()

    def setdefault(self, key, default=None):
        self._recorder.note_write(self._label, key)
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        self._recorder.note_write(self._label, "*")
        super().update(*args, **kwargs)

    def clear(self):
        self._recorder.note_write(self._label, "*")
        super().clear()


class TrackedList(list):
    """A list reporting accesses; order-sensitive ops use key ``"*"``.

    Appends conflict with each other (their interleaving decides final
    order), so every mutation is a write on the wildcard key.
    """

    __slots__ = ("_recorder", "_label")

    def __init__(self, data, recorder: AccessRecorder, label: str):
        super().__init__(data)
        self._recorder = recorder
        self._label = label

    def append(self, value):
        self._recorder.note_write(self._label, "*")
        super().append(value)

    def extend(self, values):
        self._recorder.note_write(self._label, "*")
        super().extend(values)

    def insert(self, index, value):
        self._recorder.note_write(self._label, "*")
        super().insert(index, value)

    def pop(self, index=-1):
        self._recorder.note_write(self._label, "*")
        return super().pop(index)

    def remove(self, value):
        self._recorder.note_write(self._label, "*")
        super().remove(value)

    def clear(self):
        self._recorder.note_write(self._label, "*")
        super().clear()

    def sort(self, **kwargs):
        self._recorder.note_write(self._label, "*")
        super().sort(**kwargs)

    def __setitem__(self, index, value):
        self._recorder.note_write(self._label, "*")
        super().__setitem__(index, value)

    def __iter__(self):
        self._recorder.note_read(self._label, "*")
        return super().__iter__()

    def __getitem__(self, index):
        self._recorder.note_read(self._label, "*")
        return super().__getitem__(index)


# ------------------------------------------------------------ flip replay
@dataclass
class FlipDirective:
    """Replay instruction: flip one batch's dispatch order.

    ``ordinal`` counts ``pop_batch`` calls from run start; the replay
    is byte-identical to the baseline up to that batch, so the ordinal
    (and the recorded sequence numbers) identify the same batch in
    both runs.  ``mode`` is ``"pair"`` (transpose the two conflicting
    entries — the minimal perturbation, leaving every other
    same-timestamp ordering intact) or ``"batch"`` (reverse the whole
    batch).
    """

    ordinal: int
    seq_a: Optional[int] = None
    seq_b: Optional[int] = None
    mode: str = "pair"
    applied: bool = False

    def apply(self, batch: list) -> list:
        self.applied = True
        if self.mode == "batch":
            return list(reversed(batch))
        index_a = index_b = None
        for index, entry in enumerate(batch):
            if entry[2] == self.seq_a:
                index_a = index
            elif entry[2] == self.seq_b:
                index_b = index
        if index_a is None or index_b is None:
            self.applied = False
            return batch
        flipped = list(batch)
        flipped[index_a], flipped[index_b] = \
            flipped[index_b], flipped[index_a]
        return flipped


# ------------------------------------------------------------- the hook
class BatchSanitizer:
    """Kernel dispatch hook: batch accounting, hazard flagging, flips.

    Installed on a :class:`~repro.sim.Simulator` via
    :func:`install_sanitizer`; the kernel calls :meth:`on_batch` with
    every popped batch (the return value replaces the batch, which is
    how flips happen) and :meth:`on_event` right before dispatching
    each live entry.  Call :meth:`finalize` after the run to close the
    last batch.
    """

    def __init__(self, recorder: Optional[AccessRecorder] = None,
                 flip: Optional[FlipDirective] = None,
                 max_hazards: int = 64):
        self.recorder = recorder
        self.flip = flip
        self.max_hazards = max_hazards
        self.hazards: list[dict] = []
        self.batches = 0
        self.multi_event_batches = 0
        self.events_seen = 0
        self._ordinal = -1
        self._batch_time = 0.0
        self._batch_entries: list[tuple] = []
        self._descriptions: dict[int, str] = {}

    # -- kernel-facing ----------------------------------------------------
    def on_batch(self, time: float, batch: list) -> list:
        self._close_batch()
        self._ordinal += 1
        self.batches += 1
        if len(batch) > 1:
            self.multi_event_batches += 1
        if self.flip is not None and self._ordinal == self.flip.ordinal:
            batch = self.flip.apply(batch)
        self._batch_time = time
        self._batch_entries = []
        self._descriptions = {}
        return batch

    def on_event(self, entry: tuple) -> None:
        self.events_seen += 1
        index = len(self._batch_entries)
        self._batch_entries.append(entry)
        if self.recorder is not None:
            self._descriptions[index] = _describe(entry[3])
            self.recorder.begin_event(index)

    def finalize(self) -> None:
        self._close_batch()

    # -- hazard detection -------------------------------------------------
    def _close_batch(self) -> None:
        recorder = self.recorder
        entries = self._batch_entries
        self._batch_entries = []
        if recorder is None:
            return
        recorder.current = None
        reads, writes = recorder.reads, recorder.writes
        if len(entries) < 2 or not writes:
            reads.clear()
            writes.clear()
            return
        if len(self.hazards) < self.max_hazards:
            self._scan_conflicts(entries, reads, writes)
        reads.clear()
        writes.clear()

    def _scan_conflicts(self, entries: list, reads: dict,
                        writes: dict) -> None:
        """Flag keys with write/write or read/write overlap between
        two *different* events of the batch just closed."""
        writers_by_key: dict[tuple, list[int]] = {}
        readers_by_key: dict[tuple, list[int]] = {}
        for index, keys in writes.items():
            for key in keys:
                writers_by_key.setdefault(key, []).append(index)
        for index, keys in reads.items():
            for key in keys:
                readers_by_key.setdefault(key, []).append(index)
        conflicts: dict[tuple, dict] = {}
        for key, writer_list in writers_by_key.items():
            reader_list = [r for r in readers_by_key.get(key, [])
                           if r not in writer_list]
            involved = sorted(set(writer_list) | set(reader_list))
            if len(involved) < 2:
                continue
            conflicts[key] = {
                "writers": sorted(set(writer_list)),
                "readers": sorted(set(reader_list)),
                "involved": involved,
            }
        if not conflicts:
            return
        # One hazard per batch: the batch is the replay unit.
        involved_all = sorted(
            set(index for c in conflicts.values() for index in c["involved"]))
        first_key = min(conflicts)
        pair = conflicts[first_key]["involved"][:2]
        self.hazards.append({
            "time": self._batch_time,
            "batch": self._ordinal,
            "batch_size": len(entries),
            "keys": [
                {
                    "state": f"{key[0]}[{key[1]!r}]",
                    "kind": ("write/write"
                             if len(conflict["writers"]) > 1
                             else "read/write"),
                    "writers": [self._describe_index(entries, i)
                                for i in conflict["writers"]],
                    "readers": [self._describe_index(entries, i)
                                for i in conflict["readers"]],
                }
                for key, conflict in sorted(conflicts.items())
            ],
            "events": [self._describe_index(entries, i)
                       for i in involved_all],
            "flip_seqs": [entries[pair[0]][2], entries[pair[1]][2]],
        })

    def _describe_index(self, entries: list, index: int) -> str:
        seq = entries[index][2]
        label = self._descriptions.get(index, "event")
        return f"{label} (seq {seq})"


def _describe(event: Any) -> str:
    """Human-readable identity of a dispatched event."""
    from ...sim import Process, Timeout

    if isinstance(event, Process):
        return f"process {event.name!r}"
    resumed = [cb.__self__.name for cb in event.callbacks
               if getattr(cb, "__name__", "") == "_resume"
               and isinstance(getattr(cb, "__self__", None), Process)]
    kind = ("timeout" if isinstance(event, Timeout)
            else type(event).__name__.lower())
    if resumed:
        return f"{kind} resuming {', '.join(repr(n) for n in resumed)}"
    return kind


# ----------------------------------------------------------- installation
def install_sanitizer(sim, sanitizer: BatchSanitizer) -> BatchSanitizer:
    """Attach ``sanitizer`` to ``sim`` (duck-typed, like the tracer)."""
    sim._sanitizer = sanitizer
    return sanitizer


def null_recorder() -> AccessRecorder:
    """A disabled recorder for confirmation replays (identical types,
    zero recording)."""
    return _NullRecorder()


# -------------------------------------------------------- instrumentation
def _wrap_attrs(obj: Any, label: str, recorder: AccessRecorder,
                wrapped: list) -> None:
    """Swap ``obj``'s plain dict/list attributes for tracked versions."""
    try:
        attrs = vars(obj)
    except TypeError:
        return
    for name in sorted(attrs):
        value = attrs[name]
        if type(value) is dict:
            setattr(obj, name, TrackedDict(value, recorder,
                                           f"{label}.{name}"))
            wrapped.append(f"{label}.{name}")
        elif type(value) is list:
            setattr(obj, name, TrackedList(value, recorder,
                                           f"{label}.{name}"))
            wrapped.append(f"{label}.{name}")


def _shared_roots(system, engine=None) -> Iterable[tuple]:
    """(label, object) pairs for the system's well-known shared state."""
    host = getattr(system, "host", None)
    if host is not None:
        yield "payment", getattr(host, "payment", None)
        yield "users", getattr(host, "users", None)
        yield "tokens", getattr(host, "tokens", None)
        web = getattr(host, "web_server", None)
        yield "web_server", web
        if web is not None:
            yield "web_server.sessions", getattr(web, "sessions", None)
            yield "web_server.stats", getattr(web, "stats", None)
        db = getattr(host, "db_server", None)
        yield "db_server", db
        if db is not None:
            db_engine = getattr(db, "engine", None) or \
                getattr(db, "database", None)
            yield "db", db_engine
            tables = getattr(db_engine, "tables", None)
            if isinstance(tables, dict):
                for name in sorted(tables):
                    yield f"db.tables[{name}]", tables[name]
    for label in ("gateway", "standby_gateway"):
        gateway = getattr(system, label, None)
        if gateway is not None:
            yield label, gateway
            yield f"{label}.stats", getattr(gateway, "stats", None)
    fleet = getattr(system, "fleet", None)
    if fleet is not None:
        yield "fleet", fleet
        yield "fleet.stats", getattr(fleet, "stats", None)
        primary = getattr(system, "gateway", None)
        for name in sorted(fleet.members):
            member = fleet.members[name]
            if member.gateway is primary:
                continue  # member 0 is already wrapped as "gateway"
            yield f"fleet[{name}]", member.gateway
            yield f"fleet[{name}].stats", member.gateway.stats
    for label in ("balancer", "health_monitor", "autoscaler", "canary"):
        component = getattr(system, label, None)
        if component is not None:
            yield label, component
            yield f"{label}.stats", getattr(component, "stats", None)
    for index, app in enumerate(getattr(system, "applications", ())):
        yield f"app[{index}]", app
    if engine is not None:
        yield "engine", engine


def instrument_system(system, recorder: AccessRecorder,
                      engine=None) -> list[str]:
    """Instrument a built system's shared components; returns the list
    of wrapped container labels.

    The sweep is one attribute level deep over a curated set of roots
    (payment processor, user/token stores, web sessions, DB tables,
    gateways and their caches/counters, mounted applications, the
    transaction engine).  Containers are replaced with
    behaviour-identical tracked versions, so the instrumented run's
    deterministic output is byte-identical to an uninstrumented one.
    """
    wrapped: list[str] = []
    for label, obj in _shared_roots(system, engine):
        if obj is None:
            continue
        _wrap_attrs(obj, label, recorder, wrapped)
    return wrapped


# ----------------------------------------------------------- state hashes
def state_hash(payload: str) -> str:
    """Stable short hash of a canonical state serialisation."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def first_divergence(baseline: str, flipped: str) -> Optional[dict]:
    """First differing line between two canonical JSON serialisations
    (None when identical) — the human-readable core of a CONFIRMED
    verdict's state-hash diff."""
    if baseline == flipped:
        return None
    base_lines = baseline.splitlines()
    flip_lines = flipped.splitlines()
    for number, (a, b) in enumerate(zip(base_lines, flip_lines), start=1):
        if a != b:
            return {"line": number, "baseline": a.strip(),
                    "flipped": b.strip()}
    longer, shorter = ((base_lines, flip_lines)
                       if len(base_lines) > len(flip_lines)
                       else (flip_lines, base_lines))
    return {"line": len(shorter) + 1,
            "baseline": (base_lines[len(shorter)].strip()
                         if len(base_lines) > len(shorter) else ""),
            "flipped": (flip_lines[len(shorter)].strip()
                        if len(flip_lines) > len(shorter) else "")}
