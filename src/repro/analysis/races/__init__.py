"""Race and nondeterminism detection for the simulation kernel.

Two complementary engines, one goal: prove which same-timestamp events
commute and which mutable state crosses process boundaries, so the
parallel-DES refactor (shard the topology at link boundaries, run
shards on multiple processes) knows exactly where its merge points are.

* the **static side** (:mod:`.static`) extends the per-file AST linter
  into a whole-program pass: it builds a call graph over every
  ``yield``-driven process function in the tree, computes a
  shared-state access matrix (which module/class attributes are read
  and written by which processes), and flags cross-process mutable
  state touched without a kernel-ordered handoff.  The matrix is
  emitted as a JSON artifact for the shard-boundary work to consume.
* the **dynamic side** (:mod:`.sanitizer` + :mod:`.runner`) is a
  sanitizer mode wired into :meth:`repro.sim.Simulator.run`'s
  ``pop_batch`` dispatch loop: it records per-event read/write sets
  over instrumented shared state for every same-timestamp batch, flags
  non-commutative pairs (write/write or read/write overlap inside one
  batch), and *confirms* each hazard by deterministically replaying
  the run with the flagged batch dispatched in flipped order and
  diffing the final state hashes.

The heavyweight scenario runner (:func:`.runner.run_sanitize`) is
imported lazily by the CLI so that ``python -m repro lint`` never pays
for the full system stack.
"""

from .sanitizer import (
    AccessRecorder,
    BatchSanitizer,
    FlipDirective,
    TrackedDict,
    TrackedList,
    install_sanitizer,
    instrument_system,
)
from .static import (
    RaceAnalysis,
    StaticRaceAnalyzer,
    analyze_paths,
    analyze_sources,
)

__all__ = [
    "RaceAnalysis",
    "StaticRaceAnalyzer",
    "analyze_paths",
    "analyze_sources",
    "AccessRecorder",
    "BatchSanitizer",
    "FlipDirective",
    "TrackedDict",
    "TrackedList",
    "install_sanitizer",
    "instrument_system",
]
