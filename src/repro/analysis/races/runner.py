"""Sanitizer scenario driver: detect, then prove by flipped replay.

One :func:`run_sanitize` call is two-phase:

1. **Detection run** — the scenario executes once with its shared
   state swapped for tracked containers and a :class:`BatchSanitizer`
   installed on the kernel.  Every same-timestamp batch's per-event
   read/write sets are scanned for write/write or read/write overlap;
   each overlapping batch becomes one *hazard*.  The run's canonical
   deterministic output (the bench report's ``deterministic`` section,
   a chaos report's ``report_json`` bytes, the planted fixture's final
   state) is kept as the baseline.
2. **Confirmation replays** — for each hazard (up to ``max_replays``)
   the *entire scenario* re-executes deterministically with a
   :class:`FlipDirective` that dispatches the flagged batch in flipped
   order: the conflicting pair transposed (default) or the whole batch
   reversed.  Because the run is bit-reproducible up to the flipped
   batch, the directive's batch ordinal and sequence numbers identify
   the same events as in the detection run.  If the flipped run's
   canonical output differs from the baseline the hazard is a
   **CONFIRMED** race; if the bytes match, the accesses commute in
   effect (e.g. two independent counter increments) and the hazard is
   benign.

The default ``pair`` flip is deliberately minimal: reversing a whole
batch also permutes the order in which processes draw from shared
seeded streams — a kernel-ordering effect the parallel-DES plan
handles by splitting streams per shard, not an application race — so
whole-batch reversal is kept behind ``flip_mode="batch"`` for
exploratory use.
"""

from __future__ import annotations

import json
from typing import Optional

from .sanitizer import (
    AccessRecorder,
    BatchSanitizer,
    FlipDirective,
    TrackedDict,
    first_divergence,
    install_sanitizer,
    instrument_system,
    null_recorder,
    state_hash,
)

__all__ = ["SCENARIOS", "run_sanitize", "render_text", "render_json"]

#: Scenario names accepted by ``python -m repro sanitize``: the default
#: load benchmark, every shipped chaos scenario, and the planted-race
#: fixture used by tests/CI to prove the detector actually detects.
SCENARIOS = ("bench", "flaky-radio", "gateway-outage", "brownout",
             "dns-blackout", "storm", "fleet-outage",
             "canary-regression", "planted-race")

_CHAOS_SCENARIOS = ("flaky-radio", "gateway-outage", "brownout",
                    "dns-blackout", "storm", "fleet-outage",
                    "canary-regression")


# ----------------------------------------------------------- one execution
def _execute(scenario: str, params: dict,
             flip: Optional[FlipDirective] = None,
             record: bool = True) -> tuple:
    """Run ``scenario`` once; returns (sanitizer, wrapped, canonical).

    ``record=True`` is the detection run (tracked containers feed a
    live recorder, hazards are scanned); ``record=False`` is a
    confirmation replay (same instrumentation for bit-identical
    behaviour, but a disabled recorder and no hazard scan — only the
    flip and the final canonical bytes matter).
    """
    recorder = AccessRecorder() if record else null_recorder()
    sanitizer = BatchSanitizer(recorder if record else None, flip=flip)
    if scenario == "planted-race":
        canonical, wrapped = _run_planted(recorder, sanitizer)
        return sanitizer, wrapped, canonical

    wrapped: list[str] = []

    def post_build(system, engine):
        wrapped.extend(instrument_system(system, recorder, engine))
        install_sanitizer(system.sim, sanitizer)

    if scenario == "bench":
        from ...perf.loadgen import run_bench

        report = run_bench(users=params["users"], seed=params["seed"],
                           transactions_per_user=params["transactions"],
                           horizon=params["horizon"], trace=False,
                           post_build=post_build)
        canonical = json.dumps(report["deterministic"], indent=2,
                               sort_keys=True)
    elif scenario in _CHAOS_SCENARIOS:
        from ...faults.chaos import report_json, run_chaos

        report = run_chaos(scenario, seed=params["seed"],
                           intensity=params["intensity"],
                           stations=params["stations"],
                           transactions_per_station=params["transactions"],
                           horizon=params["horizon"],
                           post_build=post_build)
        canonical = report_json(report)
    else:
        raise ValueError(
            f"unknown sanitize scenario {scenario!r} "
            f"(choose from {', '.join(SCENARIOS)})")
    sanitizer.finalize()
    return sanitizer, wrapped, canonical


def _run_planted(recorder: AccessRecorder,
                 sanitizer: BatchSanitizer) -> tuple:
    """The planted same-timestamp write/write race.

    Two processes sleep the same 5 virtual seconds, then both write
    ``shared["winner"]`` (a write/write conflict whose outcome is
    whoever runs last) and increment ``shared["total"]`` (read/write
    overlap that happens to commute).  Both resumptions land in one
    batch, so the sanitizer must flag the batch, and the pair-flip
    replay must flip the winner — a CONFIRMED verdict with a visible
    state diff.
    """
    from ...sim import Simulator

    sim = Simulator()
    install_sanitizer(sim, sanitizer)
    shared = TrackedDict({"winner": "nobody", "total": 0},
                         recorder, "planted.shared")

    def contender(name):
        def loop(env):
            yield env.timeout(5.0)
            shared["winner"] = name
            shared["total"] = shared["total"] + 1
        return loop

    for name in ("alice", "bob"):
        sim.spawn(contender(name)(sim), name=name)
    sim.run()
    sanitizer.finalize()
    canonical = json.dumps(dict(shared), indent=2, sort_keys=True)
    return canonical, ["planted.shared"]


# --------------------------------------------------------------- the driver
def run_sanitize(scenario: str = "bench", *, seed: int = 7,
                 users: int = 50, stations: int = 4,
                 transactions: int = 3, horizon: float = 120.0,
                 intensity: float = 0.5, max_replays: int = 8,
                 flip_mode: str = "pair") -> dict:
    """Detect and confirm same-timestamp races in ``scenario``.

    Returns the sanitize report dict; ``report["confirmed_races"]``
    counts hazards whose flipped replay diverged (the CLI exits
    non-zero when it is positive).  ``max_replays`` bounds the number
    of full-scenario confirmation re-executions; hazards beyond the
    cap are reported unconfirmed (``replays_skipped``).
    """
    if flip_mode not in ("pair", "batch"):
        raise ValueError(f"flip_mode must be 'pair' or 'batch', "
                         f"got {flip_mode!r}")
    params = {"seed": seed, "users": users, "stations": stations,
              "transactions": transactions, "horizon": horizon,
              "intensity": intensity}
    sanitizer, wrapped, baseline = _execute(scenario, params)

    confirmations = []
    confirmed = 0
    for hazard in sanitizer.hazards[:max_replays]:
        if flip_mode == "pair":
            seq_a, seq_b = hazard["flip_seqs"]
            flip = FlipDirective(hazard["batch"], seq_a, seq_b,
                                 mode="pair")
        else:
            flip = FlipDirective(hazard["batch"], mode="batch")
        _, _, flipped = _execute(scenario, params, flip=flip,
                                 record=False)
        diverged = flipped != baseline
        if diverged:
            confirmed += 1
        confirmations.append({
            "batch": hazard["batch"],
            "time": hazard["time"],
            "flip": {"mode": flip.mode, "applied": flip.applied,
                     "seqs": (list(hazard["flip_seqs"])
                              if flip.mode == "pair" else None)},
            "verdict": "CONFIRMED" if diverged else "commutes",
            "baseline_hash": state_hash(baseline),
            "flipped_hash": state_hash(flipped),
            "diff": first_divergence(baseline, flipped),
        })

    return {
        "scenario": scenario,
        "params": params,
        "flip_mode": flip_mode,
        "instrumented": sorted(wrapped),
        "batches": sanitizer.batches,
        "multi_event_batches": sanitizer.multi_event_batches,
        "events": sanitizer.events_seen,
        "hazards_found": len(sanitizer.hazards),
        "hazards": sanitizer.hazards,
        "replays": len(confirmations),
        "replays_skipped": max(0, len(sanitizer.hazards) - max_replays),
        "confirmations": confirmations,
        "confirmed_races": confirmed,
        "baseline_hash": state_hash(baseline),
        "verdict": "FAIL" if confirmed else "PASS",
    }


# ---------------------------------------------------------------- rendering
def render_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)


def render_text(report: dict) -> str:
    lines = [
        f"sanitize {report['scenario']}: {report['verdict']} "
        f"({report['confirmed_races']} confirmed race(s), "
        f"{report['hazards_found']} hazard(s))",
        f"  batches={report['batches']} "
        f"multi-event={report['multi_event_batches']} "
        f"events={report['events']} "
        f"instrumented={len(report['instrumented'])} containers",
    ]
    for confirmation in report["confirmations"]:
        verdict = confirmation["verdict"]
        lines.append(
            f"  batch #{confirmation['batch']} @t={confirmation['time']}: "
            f"{verdict} ({confirmation['flip']['mode']} flip, "
            f"baseline {confirmation['baseline_hash']} vs "
            f"flipped {confirmation['flipped_hash']})")
        diff = confirmation["diff"]
        if diff is not None:
            lines.append(f"    first divergence at line {diff['line']}: "
                         f"{diff['baseline']!r} -> {diff['flipped']!r}")
    for hazard in report["hazards"][:report["replays"]]:
        for key in hazard["keys"]:
            lines.append(
                f"  hazard batch #{hazard['batch']} {key['kind']} on "
                f"{key['state']}: writers "
                f"{'; '.join(key['writers'])}"
                + (f", readers {'; '.join(key['readers'])}"
                   if key["readers"] else ""))
    if report["replays_skipped"]:
        lines.append(f"  ({report['replays_skipped']} hazard(s) beyond "
                     f"--max-replays left unconfirmed)")
    return "\n".join(lines)
