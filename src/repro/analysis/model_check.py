"""Static model checker: verdicts over a built-but-not-run system graph.

Every structural claim the paper's figures and tables make
(:data:`repro.core.requirements.STRUCTURAL_CLAIMS`) is decided against
a :class:`~repro.core.model.SystemModel` *before* simulation: dangling
edges, missing components, middleware/bearer incompatibilities (a WAP
deployment without a hosted gateway, an i-mode centre that cannot adapt
to cHTML), unreachable components, applications mounted without a host,
and stations with no attachable bearer.  Verdict semantics follow the
claim/verdict style of security-model checkers: ``PASS`` (claim holds),
``FAIL`` (claim demonstrably violated), ``INCONCLUSIVE`` (the graph
does not yet contain enough structure to decide).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.components import (
    ComponentKind,
    EC_COMPONENTS,
    EDGE_ASSOCIATION,
    EDGE_DATA_FLOW,
    MC_COMPONENTS,
    MC_OPTIONAL_COMPONENTS,
)
from ..core.model import EC_FLOW_CHAIN, MC_FLOW_CHAIN, SystemModel
from ..core.requirements import Claim, claims_for_figure, structural_claim

__all__ = ["Verdict", "CheckResult", "ModelCheckReport", "ModelChecker",
           "check_reference_systems"]

# Table 3 families: middleware kind -> expected gateway class name.
MIDDLEWARE_GATEWAYS = {
    "WAP": "WAPGateway",
    "i-mode": "IModeCenter",
    "Palm": "WebClippingProxy",
}


class Verdict(enum.Enum):
    """Outcome of one claim check."""

    PASS = "pass"
    FAIL = "fail"
    INCONCLUSIVE = "inconclusive"

    @staticmethod
    def aggregate(verdicts: Iterable["Verdict"]) -> "Verdict":
        """FAIL dominates, then INCONCLUSIVE; empty aggregates to PASS."""
        worst = Verdict.PASS
        for verdict in verdicts:
            if verdict is Verdict.FAIL:
                return Verdict.FAIL
            if verdict is Verdict.INCONCLUSIVE:
                worst = Verdict.INCONCLUSIVE
        return worst


@dataclass
class CheckResult:
    """One claim's verdict with human-readable evidence."""

    claim: Claim
    verdict: Verdict
    evidence: str

    def render(self) -> str:
        return (f"[{self.verdict.name:12s}] {self.claim.claim_id} "
                f"({self.claim.reference}): {self.claim.description}\n"
                f"               {self.evidence}")

    def to_dict(self) -> dict:
        return {
            "claim_id": self.claim.claim_id,
            "reference": self.claim.reference,
            "description": self.claim.description,
            "verdict": self.verdict.value,
            "evidence": self.evidence,
        }


@dataclass
class ModelCheckReport:
    """All claim verdicts for one model."""

    figure: str
    model_name: str
    results: list[CheckResult] = field(default_factory=list)

    @property
    def verdict(self) -> Verdict:
        return Verdict.aggregate(r.verdict for r in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if r.verdict is Verdict.FAIL]

    def result(self, claim_id: str) -> CheckResult:
        for r in self.results:
            if r.claim.claim_id == claim_id:
                return r
        raise KeyError(f"no claim {claim_id!r} in this report")

    def render_text(self) -> str:
        lines = [f"Model check: {self.model_name} "
                 f"({self.figure.upper()} reference structure)"]
        lines.extend(r.render() for r in self.results)
        lines.append(f"overall: {self.verdict.name} "
                     f"({len(self.failures)} failing claim(s))")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "model": self.model_name,
            "verdict": self.verdict.value,
            "results": [r.to_dict() for r in self.results],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


class ModelChecker:
    """Decides every applicable structural claim for one model.

    ``system`` is the (optional) built system the model belongs to; when
    given, declared intent such as ``middleware_kind`` sharpens the
    Table 3 compatibility check from INCONCLUSIVE to PASS/FAIL.
    """

    def __init__(self, model: SystemModel, figure: Optional[str] = None,
                 system=None):
        self.model = model
        self.system = system
        self.figure = figure or self._infer_figure()

    @classmethod
    def for_system(cls, system, figure: Optional[str] = None) \
            -> "ModelChecker":
        return cls(system.model, figure=figure, system=system)

    def _infer_figure(self) -> str:
        mobile = (self.model.has_kind(ComponentKind.MOBILE_STATIONS)
                  or self.model.has_kind(ComponentKind.WIRELESS_NETWORKS))
        if not mobile and self.model.has_kind(ComponentKind.CLIENT_COMPUTERS):
            return "ec"
        return "mc"

    def run(self) -> ModelCheckReport:
        report = ModelCheckReport(figure=self.figure,
                                  model_name=self.model.name)
        checks = {
            "EC-COMPONENTS": self._check_ec_components,
            "EC-NO-WIRELESS": self._check_ec_no_wireless,
            "EC-FLOW": self._check_ec_flow,
            "MC-COMPONENTS": self._check_mc_components,
            "MC-FLOW": self._check_mc_flow,
            "MC-APP-HOSTED": self._check_app_hosted,
            "MC-STATION-BEARER": self._check_station_bearer,
            "MC-MIDDLEWARE-COMPAT": self._check_middleware_compat,
            "MC-MIDDLEWARE-PROPS": self._check_middleware_props,
            "HOST-INTERNALS": self._check_host_internals,
            "EDGES-RESOLVED": self._check_edges_resolved,
            "REACHABLE": self._check_reachable,
        }
        for claim in claims_for_figure(self.figure):
            verdict, evidence = checks[claim.claim_id]()
            report.results.append(CheckResult(claim, verdict, evidence))
        return report

    # -- figure decompositions --------------------------------------------
    def _missing_kinds(self, required: tuple,
                       optional: frozenset) -> list[str]:
        return [k for k in required
                if k not in optional and not self.model.has_kind(k)]

    def _check_ec_components(self):
        missing = self._missing_kinds(EC_COMPONENTS, frozenset())
        if missing:
            return Verdict.FAIL, f"missing component kind(s): {missing}"
        return Verdict.PASS, "all four Figure 1 components present"

    def _check_mc_components(self):
        missing = self._missing_kinds(MC_COMPONENTS, MC_OPTIONAL_COMPONENTS)
        if missing:
            return Verdict.FAIL, f"missing component kind(s): {missing}"
        return Verdict.PASS, "all required Figure 2 components present"

    def _check_ec_no_wireless(self):
        wireless = self.model.components(ComponentKind.WIRELESS_NETWORKS)
        if wireless:
            return Verdict.FAIL, (
                "EC model contains wireless component(s): "
                f"{[c.name for c in wireless]}")
        return Verdict.PASS, "no wireless networks component"

    # -- data/control flow ----------------------------------------------------
    def _check_flow(self, chain: tuple):
        if not self.model.components(chain[0]):
            return Verdict.INCONCLUSIVE, (
                f"no {chain[0]} component to trace the flow from")
        if self.model.flow_path_exists(chain):
            return Verdict.PASS, (
                "data-flow path exists: " + " -> ".join(chain))
        return Verdict.FAIL, (
            "no data-flow path " + " -> ".join(chain))

    def _check_ec_flow(self):
        return self._check_flow(EC_FLOW_CHAIN)

    def _check_mc_flow(self):
        return self._check_flow(MC_FLOW_CHAIN)

    # -- composition soundness ---------------------------------------------
    def _check_edges_resolved(self):
        dangling = self.model.dangling_edges()
        if dangling:
            shown = [f"{e.source}->{e.target}" for e in dangling]
            return Verdict.FAIL, f"dangling edge(s): {shown}"
        return Verdict.PASS, (
            f"all {len(self.model.edges())} edges connect known components")

    def _check_reachable(self):
        if not self.model.components(ComponentKind.USERS):
            return Verdict.INCONCLUSIVE, "model has no users component"
        orphans = self.model.unreachable_components(ComponentKind.USERS)
        if orphans:
            return Verdict.FAIL, (
                f"component(s) unreachable from users: {orphans}")
        total = len(self.model.components())
        return Verdict.PASS, f"all {total} components reachable from users"

    def _check_host_internals(self):
        if not self.model.has_kind(ComponentKind.HOST_COMPUTERS):
            return Verdict.FAIL, "no host computers component"
        missing = [k for k in (ComponentKind.WEB_SERVERS,
                               ComponentKind.DATABASE_SERVERS,
                               ComponentKind.APPLICATION_PROGRAMS)
                   if not self.model.has_kind(k)]
        if missing:
            return Verdict.FAIL, f"host computers lack: {missing}"
        return Verdict.PASS, ("host contains web servers, database servers "
                              "and application programs")

    def _check_app_hosted(self):
        apps = self.model.components(ComponentKind.APPLICATIONS)
        if not apps:
            return Verdict.INCONCLUSIVE, "no applications mounted yet"
        unhosted = []
        for app in apps:
            kinds = {self.model.component(n).kind
                     for n in self.model.neighbours(app.name)
                     if n in {c.name for c in self.model.components()}}
            if ComponentKind.HOST_COMPUTERS not in kinds:
                unhosted.append(app.name)
        if unhosted:
            return Verdict.FAIL, (
                f"application(s) without a host computer: {unhosted}")
        return Verdict.PASS, (
            f"all {len(apps)} application(s) associated with a host")

    def _check_station_bearer(self):
        stations = self.model.components(ComponentKind.MOBILE_STATIONS)
        if not stations:
            return Verdict.INCONCLUSIVE, "no mobile stations component"
        detached = []
        for station in stations:
            bearer_kinds = {
                self.model.component(n).kind
                for n in self.model.neighbours(station.name, EDGE_DATA_FLOW)
                if n in {c.name for c in self.model.components()}
            }
            if ComponentKind.WIRELESS_NETWORKS not in bearer_kinds:
                detached.append(station.name)
        if detached:
            return Verdict.FAIL, (
                f"station component(s) with no attachable bearer: "
                f"{detached}")
        return Verdict.PASS, "every station component reaches a bearer"

    # -- Table 3 middleware compatibility -------------------------------------
    def _declared_middleware_kind(self) -> Optional[str]:
        return getattr(self.system, "middleware_kind", None)

    def _check_middleware_compat(self):
        kind = self._declared_middleware_kind()
        gateways = self.model.components(ComponentKind.MOBILE_MIDDLEWARE)
        if not gateways:
            if kind in MIDDLEWARE_GATEWAYS:
                return Verdict.FAIL, (
                    f"system declares {kind} sessions but mounts no "
                    "middleware gateway component")
            return Verdict.INCONCLUSIVE, (
                "middleware is optional and none is mounted")
        problems = []
        for gateway in gateways:
            impl = gateway.implementation
            if impl is None:
                problems.append(
                    f"{gateway.name}: no gateway implementation "
                    "(WAP needs a hosted WAP gateway)")
                continue
            impl_cls = type(impl).__name__
            if kind in MIDDLEWARE_GATEWAYS and \
                    impl_cls != MIDDLEWARE_GATEWAYS[kind]:
                problems.append(
                    f"{gateway.name}: {kind} sessions terminate at "
                    f"{impl_cls}, expected {MIDDLEWARE_GATEWAYS[kind]}")
            if getattr(impl, "node", None) is None:
                problems.append(
                    f"{gateway.name}: gateway is not hosted on any node")
            if impl_cls == "IModeCenter" and \
                    not callable(getattr(impl, "_adapt", None)):
                problems.append(
                    f"{gateway.name}: i-mode centre lacks cHTML "
                    "adaptation")
        if problems:
            return Verdict.FAIL, "; ".join(problems)
        if kind is None:
            return Verdict.PASS, (
                "mounted gateway(s) hosted and self-consistent "
                "(no declared session kind to cross-check)")
        return Verdict.PASS, (
            f"{kind} sessions terminate at a hosted "
            f"{MIDDLEWARE_GATEWAYS.get(kind, 'gateway')}")

    def _check_middleware_props(self):
        """Cross-validate built middleware against Table 3's properties."""
        from ..middleware import TABLE3_PROPERTIES

        kind = self._declared_middleware_kind()
        if kind not in TABLE3_PROPERTIES:
            return Verdict.INCONCLUSIVE, (
                "no declared Table 3 middleware kind to validate against")
        gateways = self.model.components(ComponentKind.MOBILE_MIDDLEWARE)
        implementations = [g for g in gateways if g.implementation is not None]
        if not implementations:
            return Verdict.INCONCLUSIVE, (
                "no middleware implementation mounted to inspect")
        expected = TABLE3_PROPERTIES[kind]
        problems = []
        for gateway in implementations:
            impl = gateway.implementation
            for prop, want in expected.items():
                have = getattr(impl, prop, None)
                if have != want:
                    problems.append(
                        f"{gateway.name}: {prop}={have!r}, Table 3 "
                        f"says {want!r}")
        # Device-side sessions must agree on the session model (a
        # resilient composite is judged by its primary route).
        for handle in getattr(self.system, "stations", None) or []:
            session = getattr(handle, "session", None)
            if session is None:
                continue
            routes = getattr(session, "routes", None)
            if routes:
                session = routes[0]
            have = getattr(session, "session_model", None)
            if have != expected["session_model"]:
                name = getattr(getattr(handle, "station", None), "name",
                               "station")
                problems.append(
                    f"{name} session: session_model={have!r}, Table 3 "
                    f"says {expected['session_model']!r}")
        if problems:
            return Verdict.FAIL, "; ".join(problems)
        return Verdict.PASS, (
            f"{kind} middleware matches Table 3: markup="
            f"{expected['markup']}, session={expected['session_model']}, "
            f"payload_limit={expected['payload_limit']}")


def check_reference_systems(seed: int = 0) -> dict[str, ModelCheckReport]:
    """Build the Figure 1 and Figure 2 reference systems and check both.

    Imports the builders lazily so ``repro lint`` does not pay for the
    whole stack.
    """
    from ..apps import CommerceApp
    from ..core import ECSystemBuilder, MCSystemBuilder

    mc = MCSystemBuilder(seed=seed).build()
    mc.mount_application(CommerceApp())
    mc.add_station("Toshiba E740")
    ec = ECSystemBuilder(seed=seed).build()
    ec.mount_application(CommerceApp())
    ec.add_client()
    return {
        "ec": ModelChecker.for_system(ec, figure="ec").run(),
        "mc": ModelChecker.for_system(mc, figure="mc").run(),
    }
