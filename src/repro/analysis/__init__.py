"""Static analysis: simulation-safety linter and static model checker.

Two engines guard the model *before* anything runs:

* the **linter** (:mod:`repro.analysis.linter`) walks Python sources
  with an AST pass and a pluggable :class:`~repro.analysis.rules.Rule`
  registry, flagging determinism hazards (wall-clock reads, unseeded
  randomness, non-``Event`` yields in simulation processes) and code
  hygiene problems (bare excepts, mutable defaults, ``__all__`` drift,
  import cycles);
* the **model checker** (:mod:`repro.analysis.model_check`) renders
  verdicts (``PASS``/``FAIL``/``INCONCLUSIVE``) over a built-but-not-run
  :class:`~repro.core.model.SystemModel`, mapping every Figure 1/2 and
  Table 3 claim from :mod:`repro.core.requirements` to a machine check;
* the **race detector** (:mod:`repro.analysis.races`) grows the linter
  into a whole-program pass — call graph over every process function,
  cross-process shared-state access matrix, findings for mutable state
  crossing process boundaries without a kernel handoff — paired with a
  runtime commutativity sanitizer that flags same-timestamp read/write
  conflicts and confirms them by deterministic flipped-order replay.
"""

from .findings import Finding, SEVERITY_ERROR, SEVERITY_WARNING
from .linter import LintReport, Linter, lint_paths
from .model_check import (
    CheckResult,
    ModelChecker,
    ModelCheckReport,
    Verdict,
    check_reference_systems,
)
from .races import (
    BatchSanitizer,
    RaceAnalysis,
    StaticRaceAnalyzer,
    analyze_paths,
    analyze_sources,
    install_sanitizer,
    instrument_system,
)
from .rules import Rule, RULE_REGISTRY, default_rules, register_rule

__all__ = [
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "LintReport",
    "Linter",
    "lint_paths",
    "CheckResult",
    "ModelChecker",
    "ModelCheckReport",
    "Verdict",
    "check_reference_systems",
    "BatchSanitizer",
    "RaceAnalysis",
    "StaticRaceAnalyzer",
    "analyze_paths",
    "analyze_sources",
    "install_sanitizer",
    "instrument_system",
    "Rule",
    "RULE_REGISTRY",
    "default_rules",
    "register_rule",
]
