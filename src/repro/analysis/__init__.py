"""Static analysis: simulation-safety linter and static model checker.

Two engines guard the model *before* anything runs:

* the **linter** (:mod:`repro.analysis.linter`) walks Python sources
  with an AST pass and a pluggable :class:`~repro.analysis.rules.Rule`
  registry, flagging determinism hazards (wall-clock reads, unseeded
  randomness, non-``Event`` yields in simulation processes) and code
  hygiene problems (bare excepts, mutable defaults, ``__all__`` drift,
  import cycles);
* the **model checker** (:mod:`repro.analysis.model_check`) renders
  verdicts (``PASS``/``FAIL``/``INCONCLUSIVE``) over a built-but-not-run
  :class:`~repro.core.model.SystemModel`, mapping every Figure 1/2 and
  Table 3 claim from :mod:`repro.core.requirements` to a machine check.
"""

from .findings import Finding, SEVERITY_ERROR, SEVERITY_WARNING
from .linter import LintReport, Linter, lint_paths
from .model_check import (
    CheckResult,
    ModelChecker,
    ModelCheckReport,
    Verdict,
    check_reference_systems,
)
from .rules import Rule, RULE_REGISTRY, default_rules, register_rule

__all__ = [
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "LintReport",
    "Linter",
    "lint_paths",
    "CheckResult",
    "ModelChecker",
    "ModelCheckReport",
    "Verdict",
    "check_reference_systems",
    "Rule",
    "RULE_REGISTRY",
    "default_rules",
    "register_rule",
]
