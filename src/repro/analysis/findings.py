"""The linter's output vocabulary: findings and severities."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "SEVERITY_ERROR", "SEVERITY_WARNING", "SEVERITIES"]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    file: str
    line: int
    rule_id: str
    severity: str
    message: str

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.file}:{self.line}: "
                f"{self.severity} [{self.rule_id}] {self.message}")
