"""Cellular networks (paper §6.2, Table 5).

Models the property Table 5 actually classifies systems by — the
*switching technique*:

* **circuit-switched** systems (1G AMPS/TACS, 2G GSM/TDMA) dedicate a
  voice channel per call; a cell with all channels busy *blocks* new
  calls (classic Erlang behaviour), and data rides a reserved channel
  at the standard's fixed (slow) rate;
* **packet-switched** systems (CDMA, GPRS, EDGE, CDMA2000, WCDMA) are
  always-on: subscribers in a cell share the cell's data capacity
  through queueing, so extra load degrades throughput instead of
  refusing service.

1G systems are analog voice — attaching a data session raises
:class:`DataNotSupportedError`, which is exactly the paper's point that
"1G systems ... will not play a significant role in mobile commerce".
"""

from __future__ import annotations

from typing import Optional

from ..net.addressing import IPAddress, Subnet
from ..net.link import Link
from ..net.node import Network, Node
from ..net.routing import Route
from ..sim import Counter, Event, PriorityResource, Resource, Simulator
from .mobility import Mobile, Position
from .standards import CellularStandard

__all__ = [
    "QOS_PRIORITIES",
    "DataNotSupportedError",
    "CallBlockedError",
    "BaseStation",
    "CellularAttachment",
    "CellularNetwork",
]

CELL_LINK_DELAY = 0.050  # cellular air-interface latency is much higher
HANDOFF_DELAY = 0.3


class DataNotSupportedError(Exception):
    """Raised when a data session is requested on a voice-only system."""


class CallBlockedError(Exception):
    """Raised when a circuit-switched cell has no free channel."""


# UMTS-style QoS classes mapped to scheduler priorities (lower = first).
QOS_PRIORITIES = {
    "conversational": 0,
    "streaming": 2,
    "interactive": 5,
    "background": 10,
}


class _CellLink(Link):
    """Radio bearer between a subscriber and its base station."""

    layer = "wireless"

    def __init__(self, sim: Simulator, name: str, rate_bps: float,
                 shared_airtime: Optional[Resource], loss_rate: float = 0.0,
                 loss_stream=None, qos_priority: int = 10):
        super().__init__(
            sim,
            name=name,
            bandwidth_bps=rate_bps,
            delay=CELL_LINK_DELAY,
            loss_rate=loss_rate,
            loss_stream=loss_stream,
        )
        self.airtime = shared_airtime  # None for dedicated circuits
        self.qos_priority = qos_priority
        self.retry_limit = 2

    def request_airtime(self):
        if self.airtime is None:
            return None
        if isinstance(self.airtime, PriorityResource):
            return self.airtime.request(priority=self.qos_priority)
        return self.airtime.request()


class BaseStation(Mobile):
    """One cell: a tower router with radio coverage and channel pool."""

    def __init__(self, router: Node, position: Position,
                 standard: CellularStandard):
        super().__init__(position)
        self.router = router
        self.standard = standard
        self.channels = Resource(router.sim,
                                 capacity=standard.voice_channels_per_cell)
        # Packet-switched cells share downlink/uplink airtime; 3G cells
        # schedule it by QoS class (the paper: "3G systems with
        # quality-of-service (QoS) capability will dominate").
        if standard.switching == "packet":
            if standard.generation == "3G":
                self.shared_airtime = PriorityResource(router.sim,
                                                       capacity=1)
            else:
                self.shared_airtime = Resource(router.sim, capacity=1)
        else:
            self.shared_airtime = None
        self.stats = Counter()

    @property
    def name(self) -> str:
        return self.router.name

    def air_backlog(self) -> int:
        """Transmitters currently waiting for a shared-airtime grant.

        The RAN-side congestion signal: every subscriber (and the cell
        router itself) with a frame pending on the shared packet
        channel counts as one waiter.  Operator middleware uses this
        the way a GPRS BSC flow-controls the gateway — shed new work
        at the wired edge while the radio is backlogged, because bytes
        queued behind a saturated cell are already lost time.  Always
        0 for circuit-switched (voice-only) cells.
        """
        if self.shared_airtime is None:
            return 0
        return self.shared_airtime.queue_length

    def covers(self, position: Position) -> bool:
        return (self.position.distance_to(position)
                <= self.standard.typical_cell_radius_m)

    # -- voice (circuit) ---------------------------------------------------
    def place_voice_call(self, duration: float) -> Event:
        """Attempt a call; event yields True (carried) or raises-by-value.

        Blocking is immediate — a cell with every channel busy refuses
        the call rather than queueing it (Erlang-B behaviour).
        """
        sim = self.router.sim
        result = sim.event()
        if self.channels.available == 0:
            self.stats.incr("calls_blocked")
            result.succeed(False)
            return result

        request = self.channels.request()

        def call(env):
            yield request
            self.stats.incr("calls_carried")
            yield env.timeout(duration)
            self.channels.release(request)
            result.succeed(True)

        sim.spawn(call(sim), name=f"voice-call@{self.name}")
        return result


class CellularAttachment:
    """A subscriber's active data session in a cell."""

    def __init__(self, cellnet: "CellularNetwork", subscriber: Node,
                 mobile: Mobile, station: BaseStation,
                 qos_class: str = "background"):
        if qos_class not in QOS_PRIORITIES:
            raise ValueError(
                f"unknown QoS class {qos_class!r}; "
                f"known: {sorted(QOS_PRIORITIES)}"
            )
        self.cellnet = cellnet
        self.subscriber = subscriber
        self.mobile = mobile
        self.station = station
        self.qos_class = qos_class
        self.link: Optional[_CellLink] = None
        self._channel_request = None
        self._iface_pair = None
        self._attach_count = 0
        self.stats = Counter()
        self._bring_up(station)

    # -- attachment plumbing ------------------------------------------------
    def _bring_up(self, station: BaseStation) -> None:
        standard = station.standard
        sim = self.subscriber.sim
        if standard.switching == "circuit":
            # Reserve a dedicated channel for the data session.
            if station.channels.available == 0:
                station.stats.incr("calls_blocked")
                raise CallBlockedError(
                    f"no free channel in cell {station.name}"
                )
            self._channel_request = station.channels.request()
            shared = None
        else:
            self._channel_request = None
            shared = station.shared_airtime

        self._attach_count += 1
        link = _CellLink(
            sim,
            name=f"cell-{self.subscriber.name}-{station.name}",
            rate_bps=standard.data_rate_bps,
            shared_airtime=shared,
            loss_rate=self.cellnet.loss_rate,
            loss_stream=self.cellnet.loss_stream,
            qos_priority=QOS_PRIORITIES[self.qos_class],
        )
        sub_iface = self.subscriber.add_interface(
            name=f"cell{self._attach_count}",
            address=self.subscriber.primary_address,
        )
        bs_iface = station.router.add_interface(
            name=f"radio-{self.subscriber.name}-{self._attach_count}",
            address=station.router.primary_address,
        )
        sub_iface.attach(link)
        bs_iface.attach(link)
        station.router.routing_table.add(
            Route(subnet=Subnet(self.subscriber.primary_address, 32),
                  iface_name=bs_iface.name)
        )
        self.subscriber.routing_table.clear()
        self.subscriber.routing_table.add(
            Route(subnet=Subnet(IPAddress(0), 0),
                  iface_name=sub_iface.name,
                  next_hop=station.router.primary_address)
        )
        self.link = link
        self._iface_pair = (sub_iface, bs_iface)
        self.station = station
        station.stats.incr("data_sessions")
        # Steer core-bound subscriber traffic to the serving cell.
        core = self.cellnet.core
        toward_bs = core.routing_table.lookup(
            station.router.primary_address)
        if toward_bs is not None:
            core.routing_table.add(
                Route(subnet=Subnet(self.subscriber.primary_address, 32),
                      iface_name=toward_bs.iface_name,
                      next_hop=toward_bs.next_hop
                      or station.router.primary_address)
            )

    def _tear_down(self) -> None:
        if self.link is not None:
            self.link.take_down()
        if self._iface_pair is not None:
            for iface in self._iface_pair:
                iface.detach()
        self.station.router.routing_table.remove(
            Subnet(self.subscriber.primary_address, 32)
        )
        self.cellnet.core.routing_table.remove(
            Subnet(self.subscriber.primary_address, 32)
        )
        if self._channel_request is not None:
            self.station.channels.release(self._channel_request)
            self._channel_request = None
        self.link = None
        self._iface_pair = None

    # -- public API ---------------------------------------------------------
    def handoff_to(self, station: BaseStation) -> Event:
        """Move the session to another cell; event fires when back up."""
        sim = self.subscriber.sim
        done = sim.event()
        self._tear_down()

        def complete(env):
            yield env.timeout(HANDOFF_DELAY)
            self._bring_up(station)
            self.stats.incr("handoffs")
            done.succeed(self)

        sim.spawn(complete(sim), name="cell-handoff")
        return done

    def detach(self) -> None:
        self._tear_down()
        if self in self.cellnet.attachments:
            self.cellnet.attachments.remove(self)


class CellularNetwork:
    """A set of cells wired to a core router, per Table 5 standard."""

    def __init__(self, network: Network, core: Node,
                 standard: CellularStandard,
                 loss_rate: float = 0.0, loss_stream=None,
                 backhaul_subnet: str = "172.16.0.0/16",
                 subscriber_subnet: Optional[str] = "10.200.0.0/16"):
        self.network = network
        self.core = core
        self.standard = standard
        self.loss_rate = loss_rate
        self.loss_stream = loss_stream
        self.base_stations: list[BaseStation] = []
        self.attachments: list[CellularAttachment] = []
        self._backhaul = Subnet.parse(backhaul_subnet)
        self.subscriber_subnet = (
            Subnet.parse(subscriber_subnet) if subscriber_subnet else None
        )
        if self.subscriber_subnet is not None:
            # The core (GGSN-like) attracts all subscriber traffic; per-
            # attachment /32 routes then steer it to the right cell.
            self.core.announced_subnets.append(self.subscriber_subnet)

    def add_base_station(self, name: str, position: Position) -> BaseStation:
        router = self.network.add_node(name, forwarding=True)
        self.network.connect(
            self.core, router, self._backhaul,
            bandwidth_bps=100_000_000, delay=0.002,
        )
        station = BaseStation(router, position, self.standard)
        self.base_stations.append(station)
        return station

    def best_station(self, position: Position) -> Optional[BaseStation]:
        """Nearest base station that covers ``position``."""
        covering = [bs for bs in self.base_stations if bs.covers(position)]
        if not covering:
            return None
        return min(covering,
                   key=lambda bs: bs.position.distance_to(position))

    def attach(self, subscriber: Node, mobile: Mobile,
               qos_class: str = "background",
               cell: Optional[BaseStation] = None) -> CellularAttachment:
        """Open a data session for ``subscriber`` at its current position.

        ``qos_class`` (conversational/streaming/interactive/background)
        only influences scheduling on 3G cells; earlier generations
        have no QoS machinery, exactly as the paper says.

        ``cell`` pins the session to a specific base station, skipping
        coverage selection — the gateway-fleet builder shards stations
        over cells by consistent hash, the way an operator plans which
        BSC fronts which gateway, rather than by radio proximity.
        """
        if not self.standard.supports_data:
            raise DataNotSupportedError(
                f"{self.standard.name} is a {self.standard.generation} "
                "voice system; it carries no mobile-commerce data"
            )
        station = cell if cell is not None \
            else self.best_station(mobile.position)
        if station is None:
            raise ConnectionError(
                f"{subscriber.name} is outside every cell's coverage"
            )
        attachment = CellularAttachment(self, subscriber, mobile, station,
                                        qos_class=qos_class)
        self.attachments.append(attachment)
        return attachment

    def enable_auto_handoff(self, attachment: CellularAttachment) -> None:
        """Hand off automatically as the subscriber moves between cells."""

        def on_move(position: Position) -> None:
            best = self.best_station(position)
            if best is not None and best is not attachment.station:
                attachment.handoff_to(best)

        attachment.mobile.on_move.append(on_move)
