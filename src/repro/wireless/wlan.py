"""Wireless LANs (paper §6.1): access points, radio links, ad hoc mode.

A :class:`RadioLink` is a half-duplex link whose bit rate and frame
error behaviour come from the :class:`~repro.wireless.channel.ChannelModel`
evaluated against the *current* positions of its two endpoints — move a
station and its throughput changes on the next frame, with MAC-level
retries soaking up moderate error rates the way real 802.11 does.

An :class:`AccessPoint` bridges the radio to the wired network
(one-hop infrastructure mode); :class:`AdHocNetwork` links stations
directly to each other ("if no APs are available, mobile devices can
form a wireless ad hoc network among themselves").
"""

from __future__ import annotations

from typing import Optional

from ..net.addressing import IPAddress, Subnet
from ..net.link import Link, LinkEnd
from ..net.node import Network, Node
from ..net.packet import Packet
from ..net.routing import Route
from ..sim import Resource, Simulator
from .channel import ChannelModel
from .mobility import Mobile, Position
from .standards import WLANStandard

__all__ = ["RadioLink", "AccessPoint", "Association", "AdHocNetwork"]

DEFAULT_RETRY_LIMIT = 4
RADIO_PROPAGATION_DELAY = 0.000_5  # MAC/PHY overhead stand-in


class RadioLink(Link):
    """A position-aware half-duplex wireless link."""

    layer = "wireless"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        endpoint_a: Mobile,
        endpoint_b: Mobile,
        standard: WLANStandard,
        channel: ChannelModel,
        queue_capacity: int = 64,
    ):
        super().__init__(
            sim,
            name=name,
            bandwidth_bps=standard.max_rate_bps,
            delay=RADIO_PROPAGATION_DELAY,
            queue_capacity=queue_capacity,
        )
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self.standard = standard
        self.channel = channel
        self.airtime = Resource(sim, capacity=1)  # half duplex
        self.retry_limit = DEFAULT_RETRY_LIMIT

    def current_budget(self):
        return self.channel.budget(
            self.endpoint_a.position, self.endpoint_b.position, self.standard
        )

    def transmit_rate(self, end: LinkEnd) -> float:
        return self.current_budget().rate_bps

    def frame_delivered(self, end: LinkEnd, packet: Packet) -> bool:
        return self.channel.frame_delivered(self.current_budget())


class Association:
    """A station's attachment to an access point."""

    def __init__(self, ap: "AccessPoint", station: Node,
                 station_mobile: Mobile, link: RadioLink,
                 station_iface, ap_iface):
        self.ap = ap
        self.station = station
        self.station_mobile = station_mobile
        self.link = link
        self.station_iface = station_iface
        self.ap_iface = ap_iface
        self.active = True

    def dissociate(self) -> None:
        if not self.active:
            return
        self.active = False
        self.link.take_down()
        self.station_iface.detach()
        self.ap_iface.detach()
        self.ap.router.routing_table.remove(
            Subnet(self.station.primary_address, 32)
        )
        self.ap.associations.remove(self)


class AccessPoint(Mobile):
    """An infrastructure-mode AP: radio on one side, wired on the other.

    ``router`` must already be attached to the wired network (and be
    forwarding).  Stations associate and get a default route through
    the AP; the AP gets a host route back over the radio.
    """

    def __init__(self, router: Node, position: Position,
                 standard: WLANStandard, channel: ChannelModel,
                 wireless_subnet: Optional[Subnet] = None):
        super().__init__(position)
        self.router = router
        self.standard = standard
        self.channel = channel
        self.wireless_subnet = wireless_subnet
        if wireless_subnet is not None:
            # Advertise the station block into the wired routing domain
            # (run Network.build_routes() after constructing the AP).
            router.announced_subnets.append(wireless_subnet)
        self.associations: list[Association] = []
        self._radio_index = 0

    @property
    def name(self) -> str:
        return self.router.name

    def in_range(self, position: Position) -> bool:
        snr = self.channel.snr_db(self.position.distance_to(position),
                                  self.standard)
        return snr >= self.standard.min_required_snr()

    def associate(self, station: Node, station_mobile: Mobile,
                  install_default_route: bool = True) -> Association:
        """Attach a station; raises if it is out of radio range."""
        if not self.in_range(station_mobile.position):
            raise ConnectionError(
                f"{station.name} is out of range of AP {self.name} "
                f"({station_mobile.position.distance_to(self.position):.0f} m)"
            )
        sim = self.router.sim
        link = RadioLink(
            sim,
            name=f"wlan-{station.name}-{self.name}",
            endpoint_a=station_mobile,
            endpoint_b=self,
            standard=self.standard,
            channel=self.channel,
        )
        self._radio_index += 1
        station_iface = station.add_interface(
            name=f"wlan{self._radio_index}",
            address=station.primary_address,
        )
        ap_iface = self.router.add_interface(
            name=f"radio-{station.name}-{self._radio_index}",
            address=self.router.primary_address,
        )
        station_iface.attach(link)
        ap_iface.attach(link)

        self.router.routing_table.add(
            Route(subnet=Subnet(station.primary_address, 32),
                  iface_name=ap_iface.name)
        )
        if install_default_route:
            station.routing_table.clear()
            station.routing_table.add(
                Route(subnet=Subnet(IPAddress(0), 0),
                      iface_name=station_iface.name,
                      next_hop=self.router.primary_address)
            )
        association = Association(self, station, station_mobile, link,
                                  station_iface, ap_iface)
        self.associations.append(association)
        return association


class AdHocNetwork:
    """Peer-to-peer WLAN: direct radio links between stations.

    "If no APs are available, mobile devices can form a wireless ad hoc
    network among themselves and exchange data packets or perform
    business transactions as necessary."  Beyond single hops,
    :meth:`mesh` links every pair in mutual radio range and
    :meth:`compute_multihop_routes` installs shortest-path host routes
    so out-of-range peers communicate through intermediate stations
    (which must have ``forwarding=True``).
    """

    def __init__(self, sim: Simulator, standard: WLANStandard,
                 channel: ChannelModel):
        self.sim = sim
        self.standard = standard
        self.channel = channel
        self.links: list[RadioLink] = []
        self.members: list[tuple[Node, Mobile]] = []
        self._index = 0

    def join(self, node: Node, mobile: Mobile) -> None:
        """Register a station as a mesh member (see :meth:`mesh`)."""
        self.members.append((node, mobile))

    def mesh(self) -> int:
        """Link every pair of members in mutual range; returns link count."""
        created = 0
        linked = {
            frozenset((link.endpoint_a, link.endpoint_b))
            for link in self.links
        }
        for i, (a, ma) in enumerate(self.members):
            for b, mb in self.members[i + 1:]:
                if frozenset((ma, mb)) in linked:
                    continue
                budget = self.channel.budget(ma.position, mb.position,
                                             self.standard)
                if budget.in_range:
                    self.connect(a, ma, b, mb)
                    created += 1
        return created

    def compute_multihop_routes(self) -> None:
        """Install shortest-path routes between all members (BFS by hops)."""
        from collections import deque

        adjacency: dict[Node, list[tuple[Node, str]]] = {
            node: [] for node, _ in self.members
        }
        for link in self.links:
            ifaces = [link._attached[0], link._attached[1]]
            if None in ifaces:
                continue
            a_iface, b_iface = ifaces
            adjacency[a_iface.node].append((b_iface.node, a_iface.name))
            adjacency[b_iface.node].append((a_iface.node, b_iface.name))

        for source, _ in self.members:
            # BFS from source recording the first hop out of it.
            first_hop: dict[Node, tuple[str, Node]] = {}
            visited = {source}
            queue = deque()
            for neighbour, iface_name in adjacency[source]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    first_hop[neighbour] = (iface_name, neighbour)
                    queue.append(neighbour)
            while queue:
                current = queue.popleft()
                for neighbour, _ in adjacency[current]:
                    if neighbour not in visited:
                        visited.add(neighbour)
                        first_hop[neighbour] = first_hop[current]
                        queue.append(neighbour)
            for target, (iface_name, gateway) in first_hop.items():
                source.routing_table.add(
                    Route(subnet=Subnet(target.primary_address, 32),
                          iface_name=iface_name,
                          next_hop=gateway.primary_address)
                )

    def connect(self, a: Node, a_mobile: Mobile,
                b: Node, b_mobile: Mobile) -> RadioLink:
        """Create a direct link; raises if the peers cannot hear each other."""
        budget = self.channel.budget(a_mobile.position, b_mobile.position,
                                     self.standard)
        if not budget.in_range:
            raise ConnectionError(
                f"{a.name} and {b.name} are out of mutual range "
                f"({budget.distance_m:.0f} m)"
            )
        link = RadioLink(
            self.sim,
            name=f"adhoc-{a.name}-{b.name}",
            endpoint_a=a_mobile,
            endpoint_b=b_mobile,
            standard=self.standard,
            channel=self.channel,
        )
        self._index += 1
        for node, peer in ((a, b), (b, a)):
            iface = node.add_interface(
                name=f"adhoc{self._index}",
                address=node.primary_address,
            )
            iface.attach(link)
            node.routing_table.add(
                Route(subnet=Subnet(peer.primary_address, 32),
                      iface_name=iface.name)
            )
        self.links.append(link)
        return link
