"""Registry of wireless standards (paper Tables 4 and 5).

Every WLAN standard carries a *rate ladder*: (bit-rate, required SNR)
pairs, mirroring real multi-rate PHYs.  The achieved rate at a given
distance is the fastest rung whose SNR requirement is met, which is
what makes Table 4's rated-vs-range trade-offs emerge from the channel
model instead of being hard-coded.

Cellular standards carry the generation taxonomy of Table 5: radio
type (analog/digital voice channels), switching technique
(circuit/packet) and nominal data rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "WLANStandard",
    "CellularStandard",
    "WLAN_STANDARDS",
    "CELLULAR_STANDARDS",
    "wlan_standard",
    "cellular_standard",
]


@dataclass(frozen=True)
class WLANStandard:
    """A WLAN PHY profile (Table 4 row)."""

    name: str
    max_rate_bps: float          # rated maximum (paper's "Max. Data Rate")
    typical_range_m: tuple[float, float]  # paper's "Typical Range"
    modulation: str              # paper's "Modulation"
    band_ghz: float              # paper's "Frequency Band"
    tx_power_dbm: float
    # (rate_bps, required_snr_db) from fastest to slowest.
    rate_ladder: tuple = ()

    def min_required_snr(self) -> float:
        return min(snr for _, snr in self.rate_ladder)

    def rate_at_snr(self, snr_db: float) -> float:
        """Fastest sustainable rate at this SNR (0.0 = out of range)."""
        for rate, required in self.rate_ladder:
            if snr_db >= required:
                return rate
        return 0.0


@dataclass(frozen=True)
class CellularStandard:
    """A cellular system profile (Table 5 row)."""

    name: str
    generation: str              # "1G" | "2G" | "2.5G" | "3G"
    radio: str                   # "analog" | "digital"
    switching: str               # "circuit" | "packet"
    data_rate_bps: float         # 0.0 for voice-only 1G systems
    voice_channels_per_cell: int = 30
    typical_cell_radius_m: float = 3000.0

    @property
    def supports_data(self) -> bool:
        return self.data_rate_bps > 0


# --------------------------------------------------------------------------
# Table 4 rows.  Rate ladders are calibrated against the default channel
# model (log-distance path loss, exponent 3.0) so that the distance at
# which the lowest rung drops out lands inside the paper's typical-range
# column, and the top rung equals the paper's rated maximum.
# --------------------------------------------------------------------------
WLAN_STANDARDS: dict[str, WLANStandard] = {
    std.name: std
    for std in [
        WLANStandard(
            name="Bluetooth",
            max_rate_bps=1e6,
            typical_range_m=(5, 10),
            modulation="GFSK",
            band_ghz=2.4,
            tx_power_dbm=-12.0,
            rate_ladder=((1e6, 12.0),),
        ),
        WLANStandard(
            name="802.11b",
            max_rate_bps=11e6,
            typical_range_m=(50, 100),
            modulation="HR-DSSS",
            band_ghz=2.4,
            tx_power_dbm=13.0,
            rate_ladder=(
                (11e6, 16.0),
                (5.5e6, 13.0),
                (2e6, 9.0),
                (1e6, 7.0),
            ),
        ),
        WLANStandard(
            name="802.11a",
            max_rate_bps=54e6,
            typical_range_m=(50, 100),
            modulation="OFDM",
            band_ghz=5.0,
            tx_power_dbm=17.0,
            rate_ladder=(
                (54e6, 24.0),
                (36e6, 18.0),
                (24e6, 15.0),
                (12e6, 9.0),
                (6e6, 5.0),
            ),
        ),
        WLANStandard(
            name="HiperLAN2",
            max_rate_bps=54e6,
            typical_range_m=(50, 300),
            modulation="OFDM",
            band_ghz=5.0,
            tx_power_dbm=30.0,  # 1 W EIRP class: the long-range entry
            rate_ladder=(
                (54e6, 24.0),
                (36e6, 18.0),
                (24e6, 15.0),
                (12e6, 9.0),
                (6e6, 3.0),
            ),
        ),
        WLANStandard(
            name="802.11g",
            max_rate_bps=54e6,
            typical_range_m=(50, 150),
            modulation="OFDM",
            band_ghz=2.4,
            tx_power_dbm=15.0,
            rate_ladder=(
                (54e6, 24.0),
                (36e6, 18.0),
                (24e6, 15.0),
                (12e6, 9.0),
                (6e6, 4.0),
            ),
        ),
    ]
}

# --------------------------------------------------------------------------
# Table 5 rows.  Data rates follow the paper's prose: GPRS "about
# 100 kbps", EDGE "384 kbps", WCDMA "384 kbps or faster"; CDMA2000 1x at
# 144 kbps packet data with 3G targets up to 2 Mbps.  2G circuit data is
# the classic 9.6-14.4 kbps CSD.  1G systems are voice-only.
# --------------------------------------------------------------------------
CELLULAR_STANDARDS: dict[str, CellularStandard] = {
    std.name: std
    for std in [
        CellularStandard("AMPS", "1G", "analog", "circuit", 0.0),
        CellularStandard("TACS", "1G", "analog", "circuit", 0.0),
        CellularStandard("GSM", "2G", "digital", "circuit", 9_600.0),
        CellularStandard("TDMA", "2G", "digital", "circuit", 9_600.0),
        CellularStandard("CDMA", "2G", "digital", "packet", 14_400.0),
        CellularStandard("GPRS", "2.5G", "digital", "packet", 100_000.0),
        CellularStandard("EDGE", "2.5G", "digital", "packet", 384_000.0),
        CellularStandard("CDMA2000", "3G", "digital", "packet", 2_000_000.0),
        CellularStandard("WCDMA", "3G", "digital", "packet", 2_000_000.0),
    ]
}


def wlan_standard(name: str) -> WLANStandard:
    """Look up a Table 4 standard by name (KeyError with hint otherwise)."""
    try:
        return WLAN_STANDARDS[name]
    except KeyError:
        raise KeyError(
            f"unknown WLAN standard {name!r}; "
            f"known: {sorted(WLAN_STANDARDS)}"
        ) from None


def cellular_standard(name: str) -> CellularStandard:
    """Look up a Table 5 standard by name."""
    try:
        return CELLULAR_STANDARDS[name]
    except KeyError:
        raise KeyError(
            f"unknown cellular standard {name!r}; "
            f"known: {sorted(CELLULAR_STANDARDS)}"
        ) from None
