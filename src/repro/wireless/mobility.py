"""Positions and mobility models for mobile stations.

Radio behaviour in this package is position-dependent (path loss grows
with distance), so anything with a radio carries a :class:`Position`.
Two movement models cover the tests and benchmarks: a deterministic
:class:`LinearPath` and the classic :class:`RandomWaypoint`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import RandomStream, Simulator

__all__ = ["Position", "Mobile", "LinearPath", "RandomWaypoint"]


@dataclass(frozen=True)
class Position:
    """A point in a flat 2-D service area (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def toward(self, other: "Position", step: float) -> "Position":
        """The point ``step`` metres from here toward ``other`` (clamped)."""
        total = self.distance_to(other)
        if total <= step or total == 0.0:
            return other
        frac = step / total
        return Position(self.x + (other.x - self.x) * frac,
                        self.y + (other.y - self.y) * frac)


class Mobile:
    """Mixin/holder for anything with a position that may change.

    ``on_move`` callbacks fire after every position change; WLAN and
    cellular attachment managers subscribe to drive handoffs.
    """

    def __init__(self, position: Position):
        self.position = position
        self.on_move: list[Callable[[Position], None]] = []

    def move_to(self, position: Position) -> None:
        self.position = position
        for callback in list(self.on_move):
            callback(position)


class LinearPath:
    """Move a :class:`Mobile` along waypoints at constant speed."""

    def __init__(self, sim: Simulator, mobile: Mobile,
                 waypoints: list[Position], speed: float,
                 tick: float = 1.0):
        if speed <= 0:
            raise ValueError(f"speed must be positive: {speed}")
        if tick <= 0:
            raise ValueError(f"tick must be positive: {tick}")
        self.sim = sim
        self.mobile = mobile
        self.waypoints = list(waypoints)
        self.speed = speed
        self.tick = tick
        self.done = sim.event()
        sim.spawn(self._walk(), name="linear-path")

    def _walk(self):
        for target in self.waypoints:
            while self.mobile.position != target:
                yield self.sim.timeout(self.tick)
                self.mobile.move_to(
                    self.mobile.position.toward(target, self.speed * self.tick)
                )
        self.done.succeed()


class RandomWaypoint:
    """Random-waypoint mobility inside a rectangular area."""

    def __init__(
        self,
        sim: Simulator,
        mobile: Mobile,
        stream: RandomStream,
        width: float,
        height: float,
        speed_range: tuple[float, float] = (0.5, 2.0),
        pause_range: tuple[float, float] = (0.0, 10.0),
        tick: float = 1.0,
    ):
        if width <= 0 or height <= 0:
            raise ValueError("area dimensions must be positive")
        lo, hi = speed_range
        if lo <= 0 or hi < lo:
            raise ValueError(f"bad speed range: {speed_range}")
        self.sim = sim
        self.mobile = mobile
        self.stream = stream
        self.width = width
        self.height = height
        self.speed_range = speed_range
        self.pause_range = pause_range
        self.tick = tick
        self.stopped = False
        sim.spawn(self._roam(), name="random-waypoint")

    def stop(self) -> None:
        self.stopped = True

    def _pick_target(self) -> Position:
        return Position(self.stream.uniform(0, self.width),
                        self.stream.uniform(0, self.height))

    def _roam(self):
        while not self.stopped:
            target = self._pick_target()
            speed = self.stream.uniform(*self.speed_range)
            while self.mobile.position != target and not self.stopped:
                yield self.sim.timeout(self.tick)
                self.mobile.move_to(
                    self.mobile.position.toward(target, speed * self.tick)
                )
            pause = self.stream.uniform(*self.pause_range)
            if pause > 0:
                yield self.sim.timeout(pause)
