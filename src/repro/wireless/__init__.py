"""Wireless networks component (paper §6): WLAN, cellular, channel, mobility."""

from .cellular import (
    BaseStation,
    CallBlockedError,
    CellularAttachment,
    CellularNetwork,
    DataNotSupportedError,
)
from .channel import ChannelModel, LinkBudget
from .mobility import LinearPath, Mobile, Position, RandomWaypoint
from .standards import (
    CELLULAR_STANDARDS,
    WLAN_STANDARDS,
    CellularStandard,
    WLANStandard,
    cellular_standard,
    wlan_standard,
)
from .wlan import AccessPoint, AdHocNetwork, Association, RadioLink

__all__ = [
    "BaseStation",
    "CallBlockedError",
    "CellularAttachment",
    "CellularNetwork",
    "DataNotSupportedError",
    "ChannelModel",
    "LinkBudget",
    "LinearPath",
    "Mobile",
    "Position",
    "RandomWaypoint",
    "CELLULAR_STANDARDS",
    "WLAN_STANDARDS",
    "CellularStandard",
    "WLANStandard",
    "cellular_standard",
    "wlan_standard",
    "AccessPoint",
    "AdHocNetwork",
    "Association",
    "RadioLink",
]
