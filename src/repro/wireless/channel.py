"""Radio channel model: path loss, SNR, frame errors, rate selection.

The substitution for real PHY hardware (see DESIGN.md): a log-distance
path-loss model

    PL(d) = PL0(band) + 10 * n * log10(d / 1m)

with a band-dependent 1-metre reference loss (5 GHz attenuates harder
than 2.4 GHz — that is why 802.11a does not out-range 802.11b despite
more transmit power).  SNR at the receiver is tx_power - PL - noise
floor.  Frame delivery is then probabilistic: the frame-success
probability is a logistic function of the SNR margin over the selected
rate's requirement, which gives the soft cell edge real radios have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim import RandomStream
from .mobility import Position
from .standards import WLANStandard

__all__ = ["ChannelModel", "LinkBudget"]

NOISE_FLOOR_DBM = -94.0
PATH_LOSS_EXPONENT = 3.0
REFERENCE_LOSS_DB = {2.4: 40.0, 5.0: 47.0}
EDGE_SOFTNESS_DB = 1.5  # logistic scale for the frame-error roll-off
MIN_DISTANCE_M = 1.0


@dataclass
class LinkBudget:
    """The channel model's verdict for one transmitter-receiver pair."""

    distance_m: float
    path_loss_db: float
    snr_db: float
    rate_bps: float          # 0.0 when out of range at every rung
    success_probability: float

    @property
    def in_range(self) -> bool:
        return self.rate_bps > 0.0


class ChannelModel:
    """Stateless radio math + an optional fading stream for frame errors."""

    def __init__(self, fading_stream: RandomStream | None = None,
                 path_loss_exponent: float = PATH_LOSS_EXPONENT,
                 noise_floor_dbm: float = NOISE_FLOOR_DBM):
        if path_loss_exponent <= 0:
            raise ValueError("path loss exponent must be positive")
        self.fading = fading_stream
        self.path_loss_exponent = path_loss_exponent
        self.noise_floor_dbm = noise_floor_dbm
        # Observability hook: when set, called with every computed
        # LinkBudget (e.g. to record SNR into a MetricsRegistry series).
        self.observer = None

    # -- math -----------------------------------------------------------
    def reference_loss(self, band_ghz: float) -> float:
        """1-metre reference loss for the band (interpolating unknowns)."""
        if band_ghz in REFERENCE_LOSS_DB:
            return REFERENCE_LOSS_DB[band_ghz]
        # 20*log10(f) scaling from the 2.4 GHz anchor.
        return REFERENCE_LOSS_DB[2.4] + 20.0 * math.log10(band_ghz / 2.4)

    def path_loss_db(self, distance_m: float, band_ghz: float) -> float:
        d = max(distance_m, MIN_DISTANCE_M)
        return (self.reference_loss(band_ghz)
                + 10.0 * self.path_loss_exponent * math.log10(d))

    def snr_db(self, distance_m: float, standard: WLANStandard) -> float:
        return (standard.tx_power_dbm
                - self.path_loss_db(distance_m, standard.band_ghz)
                - self.noise_floor_dbm)

    def budget(self, a: Position, b: Position,
               standard: WLANStandard) -> LinkBudget:
        """Full link budget between two positions under ``standard``."""
        distance = a.distance_to(b)
        snr = self.snr_db(distance, standard)
        rate = standard.rate_at_snr(snr)
        if rate > 0.0:
            required = next(req for r, req in standard.rate_ladder
                            if r == rate)
            margin = snr - required
            p_success = 1.0 / (1.0 + math.exp(-margin / EDGE_SOFTNESS_DB))
        else:
            p_success = 0.0
        result = LinkBudget(
            distance_m=distance,
            path_loss_db=self.path_loss_db(distance, standard.band_ghz),
            snr_db=snr,
            rate_bps=rate,
            success_probability=p_success,
        )
        if self.observer is not None:
            self.observer(result)
        return result

    def max_range_m(self, standard: WLANStandard,
                    resolution_m: float = 1.0,
                    limit_m: float = 10_000.0) -> float:
        """Largest distance at which the lowest rung is still usable."""
        lo, hi = MIN_DISTANCE_M, limit_m
        if self.snr_db(hi, standard) >= standard.min_required_snr():
            return hi
        while hi - lo > resolution_m:
            mid = (lo + hi) / 2.0
            if self.snr_db(mid, standard) >= standard.min_required_snr():
                lo = mid
            else:
                hi = mid
        return lo

    # -- stochastic frame outcome ----------------------------------------
    def frame_delivered(self, budget: LinkBudget) -> bool:
        """Sample one frame transmission outcome."""
        if not budget.in_range:
            return False
        if self.fading is None:
            # Deterministic channel: succeed iff more likely than not.
            return budget.success_probability >= 0.5
        return self.fading.chance(budget.success_probability)
