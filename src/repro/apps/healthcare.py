"""Patient record accessing (Table 1, "Health care").

The access-controlled category: clinicians authenticate, read patient
records, append vitals — and every access lands in an audit log, since
§8's confidentiality/authentication concerns bite hardest here.
"""

from __future__ import annotations

from ..security import AuthenticationError
from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["HealthcareApp"]

RECORD_TEMPLATE = """<html><head><title>Patient {{ patient.patient_id }}</title></head>
<body><h1>{{ patient.name }}</h1>
<p>Ward: {{ patient.ward }}</p>
{% for v in vitals %}<p>{{ v.kind }}: {{ v.value }}</p>{% endfor %}
</body></html>"""


class HealthcareApp(Application):
    """Authenticated patient-record access with auditing."""

    category = "healthcare"
    clients = "Hospitals and nursing homes"

    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS hc_patients ("
                 "patient_id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
                 "ward TEXT NOT NULL)")
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS hc_vitals ("
                 "rowid INTEGER PRIMARY KEY, patient_id INTEGER NOT NULL, "
                 "kind TEXT NOT NULL, value TEXT NOT NULL)")
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS hc_audit ("
                 "rowid INTEGER PRIMARY KEY, clinician TEXT NOT NULL, "
                 "patient_id INTEGER NOT NULL, action TEXT NOT NULL)")
        self._next_rowid = 1

    def seed_data(self, database) -> None:
        self.sql(database,
                 "INSERT INTO hc_patients (patient_id, name, ward) VALUES "
                 "(1, 'P. Doe', 'cardiology'), (2, 'J. Roe', 'oncology')")
        self.sql(database,
                 "INSERT INTO hc_vitals (rowid, patient_id, kind, value) "
                 "VALUES (9001, 1, 'pulse', '72')")

    def mount_programs(self, server) -> None:
        users = server.services["users"]
        if "dr-grey" not in users:
            users.register("dr-grey", "scalpel", role="clinician")
        server.mount("/hc/login", self._login, name="hc-login")
        server.mount("/hc/record", self._record, name="hc-record")
        server.mount("/hc/vitals", self._vitals, name="hc-vitals")

    def _login(self, ctx):
        users = ctx.server.services["users"]
        tokens = ctx.server.services["tokens"]
        try:
            profile = users.verify(ctx.param("user"), ctx.param("password"))
        except AuthenticationError:
            return HTTPResponse(401, {"content-type": "text/plain"},
                                "bad credentials")
        if profile.get("role") != "clinician":
            return HTTPResponse(403, {"content-type": "text/plain"},
                                "not a clinician")
        token = tokens.issue(ctx.param("user"))
        return HTTPResponse.ok(token, "text/plain")
        yield  # pragma: no cover - kept a generator for uniformity

    def _authenticated_user(self, ctx):
        tokens = ctx.server.services["tokens"]
        try:
            return tokens.validate(ctx.param("token", ""))
        except AuthenticationError:
            return None

    def _record(self, ctx):
        clinician = self._authenticated_user(ctx)
        if clinician is None:
            return HTTPResponse(401, {"content-type": "text/plain"},
                                "authentication required")
        patient_id = int(ctx.param("patient", "0"))
        patient = yield ctx.database.query(
            "SELECT * FROM hc_patients WHERE patient_id = ?", (patient_id,))
        if not patient["rows"]:
            return HTTPResponse.not_found("no such patient")
        vitals = yield ctx.database.query(
            "SELECT * FROM hc_vitals WHERE patient_id = ? ORDER BY rowid",
            (patient_id,))
        yield self._audit(ctx, clinician, patient_id, "read")
        return HTTPResponse.ok(render(RECORD_TEMPLATE, {
            "patient": patient["rows"][0], "vitals": vitals["rows"]}))

    def _vitals(self, ctx):
        clinician = self._authenticated_user(ctx)
        if clinician is None:
            return HTTPResponse(401, {"content-type": "text/plain"},
                                "authentication required")
        patient_id = int(ctx.param("patient", "0"))
        rowid = self._next_rowid
        self._next_rowid += 1
        yield ctx.database.query(
            "INSERT INTO hc_vitals (rowid, patient_id, kind, value) "
            "VALUES (?, ?, ?, ?)",
            (rowid, patient_id, ctx.param("kind", "note"),
             ctx.param("value", "")))
        yield self._audit(ctx, clinician, patient_id, "write")
        return HTTPResponse.ok(html_page("Recorded", "<p>vitals saved</p>"))

    def _audit(self, ctx, clinician: str, patient_id: int, action: str):
        rowid = self._next_rowid
        self._next_rowid += 1
        return ctx.database.query(
            "INSERT INTO hc_audit (rowid, clinician, patient_id, action) "
            "VALUES (?, ?, ?, ?)", (rowid, clinician, patient_id, action))

    # -- flows --------------------------------------------------------------
    def rounds(self, user: str = "dr-grey", password: str = "scalpel",
               patient: int = 1):
        def flow(ctx):
            login = yield from ctx.get(
                f"/hc/login?user={user}&password={password}")
            if login.status != 200:
                raise RuntimeError("login failed")
            token = login.body.decode()
            record = yield from ctx.get(
                f"/hc/record?patient={patient}&token={token}")
            yield from ctx.render(record)
            update = yield from ctx.get(
                f"/hc/vitals?patient={patient}&kind=pulse&value=68"
                f"&token={token}")
            return {"status": update.status}

        flow.__name__ = "rounds"
        return flow
