"""Mobile commerce applications component (paper §3, Table 1).

All eight application categories from Table 1, each a complete
server-side (CGI programs + schema) plus client flows runnable over any
middleware/bearer combination.
"""

from .base import Application, form_body, html_page, wml_page
from .commerce import CommerceApp
from .education import EducationApp
from .entertainment import EntertainmentApp
from .erp import ERPApp
from .healthcare import HealthcareApp
from .inventory import InventoryApp
from .traffic import TrafficApp
from .travel import TravelApp

ALL_CATEGORIES = {
    "commerce": CommerceApp,
    "education": EducationApp,
    "erp": ERPApp,
    "entertainment": EntertainmentApp,
    "healthcare": HealthcareApp,
    "inventory": InventoryApp,
    "traffic": TrafficApp,
    "travel": TravelApp,
}

__all__ = [
    "Application",
    "form_body",
    "html_page",
    "wml_page",
    "CommerceApp",
    "EducationApp",
    "EntertainmentApp",
    "ERPApp",
    "HealthcareApp",
    "InventoryApp",
    "TrafficApp",
    "TravelApp",
    "ALL_CATEGORIES",
]
