"""Music/video/game downloads (Table 1, "Entertainment").

The bandwidth-hungry category: list a media store, pay for a title,
download a payload whose size actually crosses the simulated bearer
(so 3G finishes a song while 2G crawls — the Table 5 contrast in an
application-level costume).
"""

from __future__ import annotations

from ..security import PaymentError, PaymentOrder
from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["EntertainmentApp"]

STORE_TEMPLATE = """<html><head><title>Media Store</title></head><body>
<h1>Store</h1>
{% for m in media %}<p><a href="/media/download?id={{ m.id }}&account={{ account }}">{{ m.title }}</a> ({{ m.kind }}, {{ m.size_kb }} KB, ${{ m.price }})</p>{% endfor %}
</body></html>"""


class EntertainmentApp(Application):
    """A paid media-download storefront."""

    category = "entertainment"
    clients = "Entertainment industry"

    def __init__(self, media=None):
        super().__init__()
        # (title, kind, size_kb, price_cents) — sizes kept laptop-friendly.
        self.media = media or [
            ("Ringtone: Nokia Tune", "music", 12, 99),
            ("Game: Snake II", "game", 48, 299),
            ("Video: Trailer", "video", 160, 499),
        ]
        self.merchant = "media-store"
        self._merchant_key = None

    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS media_titles ("
                 "id INTEGER PRIMARY KEY, title TEXT NOT NULL, "
                 "kind TEXT NOT NULL, size_kb INTEGER NOT NULL, "
                 "price INTEGER NOT NULL)")
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS media_licenses ("
                 "license_id INTEGER PRIMARY KEY, media_id INTEGER NOT NULL, "
                 "account TEXT NOT NULL)")

    def seed_data(self, database) -> None:
        for index, (title, kind, size_kb, price) in \
                enumerate(self.media, start=1):
            self.sql(database,
                     "INSERT INTO media_titles (id, title, kind, size_kb, "
                     "price) VALUES (?, ?, ?, ?, ?)",
                     (index, title, kind, size_kb, price))

    def mount_programs(self, server) -> None:
        payment = server.services["payment"]
        self._merchant_key = payment.register_merchant(self.merchant)
        server.mount("/media/store", self._store, name="media-store")
        server.mount("/media/download", self._download, name="media-download")

    def _store(self, ctx):
        reply = yield ctx.database.query(
            "SELECT * FROM media_titles ORDER BY id")
        media = [dict(r, price=f"{r['price'] / 100:.2f}")
                 for r in reply["rows"]]
        return HTTPResponse.ok(render(STORE_TEMPLATE, {
            "media": media, "account": ctx.param("account", "guest")}))

    def _download(self, ctx):
        payment = ctx.server.services["payment"]
        media_id = int(ctx.param("id", "0"))
        account = ctx.param("account", "")
        reply = yield ctx.database.query(
            "SELECT * FROM media_titles WHERE id = ?", (media_id,))
        if not reply["rows"]:
            return HTTPResponse.not_found("no such title")
        title = reply["rows"][0]
        order = PaymentOrder(
            account=account,
            merchant=self.merchant,
            amount_cents=title["price"],
            nonce=payment.make_nonce(),
        ).signed(self._merchant_key)
        try:
            authorization = payment.authorize(order)
        except PaymentError as exc:
            return HTTPResponse(402, {"content-type": "text/plain"},
                                f"payment declined: {exc}")
        payment.capture(authorization.auth_id)
        yield ctx.database.query(
            "INSERT INTO media_licenses (license_id, media_id, account) "
            "VALUES (?, ?, ?)",
            (authorization.auth_id, media_id, account))
        # The actual bits: a payload that must cross the bearer.
        payload = bytes(
            (media_id * 31 + i) % 251 for i in range(title["size_kb"] * 1024)
        )
        return HTTPResponse(200, {
            "content-type": "application/octet-stream",
            "x-license": str(authorization.auth_id),
        }, payload)

    # -- flows --------------------------------------------------------------
    def buy_and_download(self, media_id: int = 1, account: str = "ann"):
        def flow(ctx):
            store = yield from ctx.get(f"/media/store?account={account}")
            yield from ctx.render(store)
            download = yield from ctx.get(
                f"/media/download?id={media_id}&account={account}")
            if download.status != 200:
                raise RuntimeError(f"download failed: {download.status}")
            ctx.note(f"downloaded {len(download.body)} bytes")
            return {"status": download.status,
                    "bytes": len(download.body)}

        flow.__name__ = "buy_and_download"
        return flow
