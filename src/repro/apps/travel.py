"""Travel management and ticketing (Table 1, "Travel and ticketing").

Search scheduled trips, book a seat (with overbooking protection) and
receive a signed e-ticket that gate agents can verify offline.
"""

from __future__ import annotations

from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["TravelApp"]

SEARCH_TEMPLATE = """<html><head><title>Trips</title></head><body>
<h1>{{ origin }} to {{ destination }}</h1>
{% for t in trips %}<p><a href="/travel/book?trip={{ t.trip_id }}&passenger={{ passenger }}">{{ t.departs }} — {{ t.seats_left }} seats — ${{ t.fare }}</a></p>{% endfor %}
</body></html>"""


class TravelApp(Application):
    """Trip search + seat booking + verifiable e-tickets."""

    category = "travel"
    clients = "Travel industry and ticket sales"

    def __init__(self, trips=None):
        super().__init__()
        # (trip_id, origin, destination, departs, seats, fare_cents)
        self.trips = trips or [
            (101, "GRAND-FORKS", "MINNEAPOLIS", "08:00", 2, 8900),
            (102, "GRAND-FORKS", "MINNEAPOLIS", "17:30", 40, 7900),
            (201, "AUBURN", "ATLANTA", "09:15", 30, 5900),
        ]

    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS tv_trips ("
                 "trip_id INTEGER PRIMARY KEY, origin TEXT NOT NULL, "
                 "destination TEXT NOT NULL, departs TEXT NOT NULL, "
                 "seats_left INTEGER NOT NULL, fare INTEGER NOT NULL)")
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS tv_tickets ("
                 "rowid INTEGER PRIMARY KEY, trip_id INTEGER NOT NULL, "
                 "passenger TEXT NOT NULL, token TEXT NOT NULL)")
        self._next_rowid = 1

    def seed_data(self, database) -> None:
        for trip in self.trips:
            self.sql(database,
                     "INSERT INTO tv_trips (trip_id, origin, destination, "
                     "departs, seats_left, fare) VALUES (?, ?, ?, ?, ?, ?)",
                     trip)

    def mount_programs(self, server) -> None:
        server.mount("/travel/search", self._search, name="travel-search")
        server.mount("/travel/book", self._book, name="travel-book")
        server.mount("/travel/verify", self._verify, name="travel-verify")

    def _search(self, ctx):
        origin = ctx.param("from", "GRAND-FORKS").upper()
        destination = ctx.param("to", "MINNEAPOLIS").upper()
        reply = yield ctx.database.query(
            "SELECT * FROM tv_trips WHERE origin = ? AND destination = ? "
            "ORDER BY departs", (origin, destination))
        trips = [dict(r, fare=f"{r['fare'] / 100:.2f}")
                 for r in reply["rows"]]
        return HTTPResponse.ok(render(SEARCH_TEMPLATE, {
            "origin": origin, "destination": destination,
            "trips": trips, "passenger": ctx.param("passenger", "anon")}))

    def _book(self, ctx):
        tokens = ctx.server.services["tokens"]
        trip_id = int(ctx.param("trip", "0"))
        passenger = ctx.param("passenger", "anon")
        reply = yield ctx.database.query(
            "SELECT * FROM tv_trips WHERE trip_id = ?", (trip_id,))
        if not reply["rows"]:
            return HTTPResponse.not_found("no such trip")
        trip = reply["rows"][0]
        # Atomic seat claim: concurrent bookings must not oversell.
        claimed = yield ctx.database.query(
            "UPDATE tv_trips SET seats_left = seats_left - 1 "
            "WHERE trip_id = ? AND seats_left > 0", (trip_id,))
        if claimed["rowcount"] == 0:
            return HTTPResponse(409, {"content-type": "text/plain"},
                                "sold out")
        ticket_token = tokens.issue(f"{passenger}@trip{trip_id}")
        rowid = self._next_rowid
        self._next_rowid += 1
        yield ctx.database.query(
            "INSERT INTO tv_tickets (rowid, trip_id, passenger, token) "
            "VALUES (?, ?, ?, ?)", (rowid, trip_id, passenger, ticket_token))
        return HTTPResponse.ok(html_page(
            "Ticket",
            f"<p>Ticket for trip {trip_id} ({trip['departs']})</p>"
            f"<pre>{ticket_token}</pre>"))

    def _verify(self, ctx):
        tokens = ctx.server.services["tokens"]
        from ..security import AuthenticationError
        try:
            subject = tokens.validate(ctx.param("token", ""))
        except AuthenticationError as exc:
            return HTTPResponse(403, {"content-type": "text/plain"},
                                f"invalid ticket: {exc}")
        return HTTPResponse.ok(f"valid ticket for {subject}", "text/plain")
        yield  # pragma: no cover - kept a generator for uniformity

    # -- flows --------------------------------------------------------------
    def book_trip(self, origin: str = "GRAND-FORKS",
                  destination: str = "MINNEAPOLIS",
                  trip_id: int = 102, passenger: str = "ann"):
        def flow(ctx):
            search = yield from ctx.get(
                f"/travel/search?from={origin}&to={destination}"
                f"&passenger={passenger}")
            yield from ctx.render(search)
            ticket = yield from ctx.get(
                f"/travel/book?trip={trip_id}&passenger={passenger}")
            if ticket.status != 200:
                raise RuntimeError(f"booking failed: {ticket.status}")
            yield from ctx.render(ticket)
            return {"status": ticket.status}

        flow.__name__ = "book_trip"
        return flow
