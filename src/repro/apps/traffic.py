"""Global positioning, directions and traffic advisories (Table 1, "Traffic").

A road grid lives host-side (networkx shortest paths); mobile clients
send their position and destination and get turn-by-turn directions
that route around congested segments, plus area advisories.
"""

from __future__ import annotations

import networkx as nx

from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["TrafficApp"]

DIRECTIONS_TEMPLATE = """<html><head><title>Directions</title></head><body>
<h1>Route to {{ destination }}</h1>
{% for step in steps %}<p>{{ step }}</p>{% endfor %}
<p>Estimated time: {{ eta }} min</p>
</body></html>"""


class TrafficApp(Application):
    """Directions over a congestion-weighted road graph."""

    category = "traffic"
    clients = "Transportation and auto industries"

    GRID = 5  # a GRID x GRID street grid

    def __init__(self):
        super().__init__()
        self.graph = nx.Graph()
        n = self.GRID
        for x in range(n):
            for y in range(n):
                if x + 1 < n:
                    self.graph.add_edge((x, y), (x + 1, y), minutes=2.0)
                if y + 1 < n:
                    self.graph.add_edge((x, y), (x, y + 1), minutes=2.0)

    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS tf_advisories ("
                 "rowid INTEGER PRIMARY KEY, x INTEGER NOT NULL, "
                 "y INTEGER NOT NULL, message TEXT NOT NULL, "
                 "delay_minutes REAL NOT NULL)")
        self._next_rowid = 1

    def mount_programs(self, server) -> None:
        server.mount("/traffic/directions", self._directions,
                     name="traffic-directions")
        server.mount("/traffic/report", self._report, name="traffic-report")
        server.mount("/traffic/advisories", self._advisories,
                     name="traffic-advisories")

    def _node(self, ctx, prefix: str):
        return (int(ctx.param(f"{prefix}x", "0")),
                int(ctx.param(f"{prefix}y", "0")))

    def _directions(self, ctx):
        origin = self._node(ctx, "from_")
        destination = self._node(ctx, "to_")
        for node in (origin, destination):
            if node not in self.graph:
                return HTTPResponse.not_found(f"off the map: {node}")
        advisories = yield ctx.database.query("SELECT * FROM tf_advisories")
        weighted = self.graph.copy()
        for advisory in advisories["rows"]:
            node = (advisory["x"], advisory["y"])
            for neighbour in list(weighted.neighbors(node)) \
                    if node in weighted else []:
                weighted[node][neighbour]["minutes"] += \
                    advisory["delay_minutes"]
        path = nx.shortest_path(weighted, origin, destination,
                                weight="minutes")
        eta = nx.path_weight(weighted, path, weight="minutes")
        steps = [f"go to {node}" for node in path[1:]]
        return HTTPResponse.ok(render(DIRECTIONS_TEMPLATE, {
            "destination": str(destination),
            "steps": steps,
            "eta": f"{eta:.0f}",
        }))

    def _report(self, ctx):
        """A driver reports congestion at an intersection."""
        rowid = self._next_rowid
        self._next_rowid += 1
        yield ctx.database.query(
            "INSERT INTO tf_advisories (rowid, x, y, message, "
            "delay_minutes) VALUES (?, ?, ?, ?, ?)",
            (rowid, int(ctx.param("x", "0")), int(ctx.param("y", "0")),
             ctx.param("message", "congestion"),
             float(ctx.param("delay", "5"))))
        return HTTPResponse.ok(html_page("Reported", "<p>advisory filed</p>"))

    def _advisories(self, ctx):
        reply = yield ctx.database.query(
            "SELECT * FROM tf_advisories ORDER BY rowid")
        lines = "".join(
            f"<p>({r['x']},{r['y']}): {r['message']} "
            f"+{r['delay_minutes']}min</p>"
            for r in reply["rows"]
        ) or "<p>all clear</p>"
        return HTTPResponse.ok(html_page("Advisories", lines))

    # -- flows --------------------------------------------------------------
    def navigate(self, origin=(0, 0), destination=(4, 4)):
        def flow(ctx):
            directions = yield from ctx.get(
                f"/traffic/directions?from_x={origin[0]}&from_y={origin[1]}"
                f"&to_x={destination[0]}&to_y={destination[1]}")
            yield from ctx.render(directions)
            if directions.status != 200:
                raise RuntimeError("no directions")
            return {"status": directions.status}

        flow.__name__ = "navigate"
        return flow

    def report_and_reroute(self, congestion=(2, 2)):
        """Report congestion, then verify routes avoid it."""

        def flow(ctx):
            report = yield from ctx.get(
                f"/traffic/report?x={congestion[0]}&y={congestion[1]}"
                f"&delay=30")
            if report.status != 200:
                raise RuntimeError("report failed")
            advisories = yield from ctx.get("/traffic/advisories")
            yield from ctx.render(advisories)
            return {"status": advisories.status}

        flow.__name__ = "report_and_reroute"
        return flow
