"""Mobile commerce transactions and payments (Table 1, "Commerce").

The headline category: browse a catalog, view an item, authorize
payment through the host's payment processor, and get an order
confirmation.  Pages are personalized per user profile (requirement 2).
"""

from __future__ import annotations

from ..security import PaymentError, PaymentOrder
from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["CommerceApp"]

CATALOG_TEMPLATE = """<html><head><title>Mobile Shop</title></head><body>
<h1>Catalog</h1>
<p>Welcome{{ greeting }}.</p>
{% for item in items %}<p><a href="/shop/item?id={{ item.id }}">
{{ item.name }} — ${{ item.price }}</a></p>{% endfor %}
</body></html>"""

ITEM_TEMPLATE = """<html><head><title>{{ item.name }}</title></head><body>
<h1>{{ item.name }}</h1>
<p>Price: ${{ item.price }}. In stock: {{ item.stock }}.</p>
<p><a href="/shop/buy?id={{ item.id }}&qty=1&account={{ account }}">
Buy now</a></p>
</body></html>"""


class CommerceApp(Application):
    """Catalog + purchase, backed by the DB server and payment processor."""

    category = "commerce"
    clients = "Businesses"

    def __init__(self, items=None):
        super().__init__()
        self.items = items or [
            ("WAP Phone", 19900, 10),
            ("Leather Case", 950, 100),
            ("Car Charger", 2500, 40),
        ]
        self.merchant = "mobile-shop"
        self._merchant_key = None

    # -- server side -----------------------------------------------------
    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS shop_items ("
                 "id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
                 "price INTEGER NOT NULL, stock INTEGER NOT NULL)")
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS shop_orders ("
                 "order_id INTEGER PRIMARY KEY, item_id INTEGER NOT NULL, "
                 "account TEXT NOT NULL, qty INTEGER NOT NULL, "
                 "total INTEGER NOT NULL, auth_id INTEGER)")

    def seed_data(self, database) -> None:
        for index, (name, price, stock) in enumerate(self.items, start=1):
            self.sql(database,
                     "INSERT INTO shop_items (id, name, price, stock) "
                     "VALUES (?, ?, ?, ?)", (index, name, price, stock))

    def mount_programs(self, server) -> None:
        payment = server.services["payment"]
        self._merchant_key = payment.register_merchant(self.merchant)
        server.mount("/shop/catalog", self._catalog, name="shop-catalog")
        server.mount("/shop/item", self._item, name="shop-item")
        server.mount("/shop/buy", self._buy, name="shop-buy")

    def _catalog(self, ctx):
        reply = yield ctx.database.query(
            "SELECT id, name, price FROM shop_items ORDER BY id")
        user = ctx.param("user", "")
        greeting = ""
        if user:
            greeting = f" back, {user}"
            self.mark_personalized()
        items = [dict(r, price=f"{r['price'] / 100:.2f}")
                 for r in reply["rows"]]
        return HTTPResponse.ok(render(
            CATALOG_TEMPLATE, {"items": items, "greeting": greeting}))

    def _item(self, ctx):
        item_id = int(ctx.param("id", "0"))
        reply = yield ctx.database.query(
            "SELECT * FROM shop_items WHERE id = ?", (item_id,))
        if not reply["rows"]:
            return HTTPResponse.not_found("no such item")
        row = dict(reply["rows"][0])
        row["price"] = f"{row['price'] / 100:.2f}"
        account = ctx.param("account", "guest")
        return HTTPResponse.ok(render(
            ITEM_TEMPLATE, {"item": row, "account": account}))

    def _buy(self, ctx):
        payment = ctx.server.services["payment"]
        item_id = int(ctx.param("id", "0"))
        qty = int(ctx.param("qty", "1"))
        account = ctx.param("account", "")
        reply = yield ctx.database.query(
            "SELECT * FROM shop_items WHERE id = ?", (item_id,))
        if not reply["rows"]:
            return HTTPResponse.not_found("no such item")
        item = reply["rows"][0]
        # Claim the stock atomically: concurrent buyers must not
        # oversell, and the read above is a separate round trip.
        claimed = yield ctx.database.query(
            "UPDATE shop_items SET stock = stock - ? "
            "WHERE id = ? AND stock >= ?",
            (qty, item_id, qty))
        if claimed["rowcount"] == 0:
            return HTTPResponse(409, {"content-type": "text/plain"},
                                "out of stock")
        total = item["price"] * qty
        order = PaymentOrder(
            account=account,
            merchant=self.merchant,
            amount_cents=total,
            nonce=payment.make_nonce(),
        ).signed(self._merchant_key)
        try:
            authorization = payment.authorize(order)
        except PaymentError as exc:
            # Return the claimed stock.
            yield ctx.database.query(
                "UPDATE shop_items SET stock = stock + ? WHERE id = ?",
                (qty, item_id))
            return HTTPResponse(402, {"content-type": "text/plain"},
                                f"payment declined: {exc}")
        insert = yield ctx.database.query(
            "INSERT INTO shop_orders (order_id, item_id, account, qty, "
            "total, auth_id) VALUES (?, ?, ?, ?, ?, ?)",
            (authorization.auth_id, item_id, account, qty, total,
             authorization.auth_id))
        if not insert["ok"]:
            payment.void(authorization.auth_id)
            return HTTPResponse.error("order write failed")
        payment.capture(authorization.auth_id)
        return HTTPResponse.ok(html_page(
            "Order confirmed",
            f"<p>Order {authorization.auth_id} confirmed: {qty} x "
            f"{item['name']} for ${total / 100:.2f}.</p>"
        ))

    # -- client flows ----------------------------------------------------
    def browse_and_buy(self, item_id: int = 1, account: str = "ann",
                       user: str = ""):
        """Flow: catalog -> item -> buy, rendering every page."""

        def flow(ctx):
            user_q = f"&user={user}" if user else ""
            catalog = yield from ctx.get(f"/shop/catalog?x=1{user_q}")
            if catalog.status != 200:
                # Retries are exhausted by the time a non-200 surfaces
                # here; pressing on would waste two more round trips of
                # scarce airtime on a transaction that already failed.
                raise RuntimeError(
                    f"catalog failed: {catalog.status} "
                    f"{catalog.body[:80]!r}")
            yield from ctx.render(catalog)
            item = yield from ctx.get(
                f"/shop/item?id={item_id}&account={account}")
            if item.status != 200:
                raise RuntimeError(
                    f"item failed: {item.status} {item.body[:80]!r}")
            yield from ctx.render(item)
            confirmation = yield from ctx.get(
                f"/shop/buy?id={item_id}&qty=1&account={account}")
            yield from ctx.render(confirmation)
            if confirmation.status != 200:
                raise RuntimeError(
                    f"purchase failed: {confirmation.status} "
                    f"{confirmation.body[:80]!r}"
                )
            return {"status": confirmation.status, "item": item_id}

        flow.__name__ = "browse_and_buy"
        return flow
