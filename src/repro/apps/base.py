"""Application framework: what a Table 1 application category provides.

Every application has a *server side* (CGI programs + database schema
installed into a built system's host tier) and *client flows*
(generator functions run by the :class:`~repro.core.transaction.TransactionEngine`
through a station's middleware session).  The same application object
installs identically into an EC or MC system — requirement 5 again.
"""

from __future__ import annotations

from typing import Any, Optional

from ..db import execute

__all__ = ["Application", "form_body", "wml_page", "html_page"]


class Application:
    """Base class for the eight Table 1 categories."""

    category = "abstract"
    clients = ""  # the Table 1 "Clients" column

    def __init__(self):
        self.system = None
        self.personalization_used = False

    # -- install ------------------------------------------------------------
    def install(self, system) -> None:
        """Create schema, seed data, mount programs.  Idempotent per system."""
        self.system = system
        self.create_schema(system.host.db_server.database)
        self.seed_data(system.host.db_server.database)
        self.mount_programs(system.host.web_server)

    def create_schema(self, database) -> None:
        """Synchronous provisioning-time DDL against the host database."""

    def seed_data(self, database) -> None:
        """Synchronous provisioning-time seed rows."""

    def mount_programs(self, server) -> None:
        """Mount CGI programs on the host web server."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def sql(database, statement: str, params: tuple = ()):
        return execute(database, statement, params)

    def mark_personalized(self) -> None:
        self.personalization_used = True


def form_body(params: dict) -> str:
    """Render a dict as readable key=value lines (plain-text responses)."""
    return "\n".join(f"{key}={value}" for key, value in sorted(params.items()))


def html_page(title: str, body_html: str) -> str:
    return (f"<html><head><title>{title}</title></head>"
            f"<body>{body_html}</body></html>")


def wml_page(title: str, paragraphs: list[str]) -> str:
    """A WML deck for content providers that author natively for WAP."""
    inner = "".join(f"<p>{p}</p>" for p in paragraphs)
    return (f'<?xml version="1.0"?>\n<wml>\n'
            f'<card id="main" title="{title}">{inner}</card>\n</wml>')
