"""Product tracking and dispatching (Table 1, "Inventory tracking").

The paper's example of a task "not feasible for electronic commerce":
drivers post shipment positions from the field, dispatchers query live
status and dispatch the nearest vehicle to a pickup.
"""

from __future__ import annotations

import math

from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["InventoryApp"]

STATUS_TEMPLATE = """<html><head><title>Fleet Status</title></head><body>
<h1>Shipments</h1>
{% for s in shipments %}<p>#{{ s.shipment_id }} {{ s.status }} at ({{ s.x }}, {{ s.y }}) driver {{ s.driver }}</p>{% endfor %}
</body></html>"""


class InventoryApp(Application):
    """Fleet tracking + nearest-vehicle dispatching."""

    category = "inventory"
    clients = "Delivery services and transportation"

    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS inv_shipments ("
                 "shipment_id INTEGER PRIMARY KEY, driver TEXT NOT NULL, "
                 "status TEXT NOT NULL, x REAL NOT NULL, y REAL NOT NULL)")

    def seed_data(self, database) -> None:
        self.sql(database,
                 "INSERT INTO inv_shipments (shipment_id, driver, status, "
                 "x, y) VALUES "
                 "(1, 'dave', 'en-route', 0.0, 0.0), "
                 "(2, 'erin', 'idle', 5.0, 5.0), "
                 "(3, 'finn', 'idle', 50.0, 50.0)")

    def mount_programs(self, server) -> None:
        server.mount("/fleet/status", self._status, name="fleet-status")
        server.mount("/fleet/update", self._update, name="fleet-update")
        server.mount("/fleet/dispatch", self._dispatch, name="fleet-dispatch")

    def _status(self, ctx):
        reply = yield ctx.database.query(
            "SELECT * FROM inv_shipments ORDER BY shipment_id")
        return HTTPResponse.ok(render(STATUS_TEMPLATE,
                                      {"shipments": reply["rows"]}))

    def _update(self, ctx):
        """A driver reports position/status for their shipment."""
        shipment = int(ctx.param("shipment", "0"))
        found = yield ctx.database.query(
            "SELECT * FROM inv_shipments WHERE shipment_id = ?", (shipment,))
        if not found["rows"]:
            return HTTPResponse.not_found("no such shipment")
        x = float(ctx.param("x", found["rows"][0]["x"]))
        y = float(ctx.param("y", found["rows"][0]["y"]))
        status = ctx.param("status", found["rows"][0]["status"])
        yield ctx.database.query(
            "UPDATE inv_shipments SET x = ?, y = ?, status = ? "
            "WHERE shipment_id = ?", (x, y, status, shipment))
        return HTTPResponse.ok(html_page("Updated",
                                         f"<p>shipment {shipment} at "
                                         f"({x}, {y}) {status}</p>"))

    def _dispatch(self, ctx):
        """Dispatch the nearest idle vehicle to a pickup point."""
        px = float(ctx.param("x", "0"))
        py = float(ctx.param("y", "0"))
        idle = yield ctx.database.query(
            "SELECT * FROM inv_shipments WHERE status = 'idle'")
        if not idle["rows"]:
            return HTTPResponse(409, {"content-type": "text/plain"},
                                "no idle vehicles")
        nearest = min(
            idle["rows"],
            key=lambda r: math.hypot(r["x"] - px, r["y"] - py),
        )
        yield ctx.database.query(
            "UPDATE inv_shipments SET status = 'dispatched' "
            "WHERE shipment_id = ?", (nearest["shipment_id"],))
        return HTTPResponse.ok(html_page(
            "Dispatched",
            f"<p>driver {nearest['driver']} (shipment "
            f"{nearest['shipment_id']}) dispatched to ({px}, {py})</p>"))

    # -- flows --------------------------------------------------------------
    def driver_rounds(self, shipment: int = 1, positions=None,
                      status: str = "en-route"):
        """A driver posting a series of position updates."""
        positions = positions or [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]

        def flow(ctx):
            last = None
            for x, y in positions:
                last = yield from ctx.get(
                    f"/fleet/update?shipment={shipment}&x={x}&y={y}"
                    f"&status={status}")
                if last.status != 200:
                    raise RuntimeError("update failed")
            return {"status": last.status, "updates": len(positions)}

        flow.__name__ = "driver_rounds"
        return flow

    def dispatcher_flow(self, pickup=(6.0, 6.0)):
        def flow(ctx):
            status = yield from ctx.get("/fleet/status")
            yield from ctx.render(status)
            dispatched = yield from ctx.get(
                f"/fleet/dispatch?x={pickup[0]}&y={pickup[1]}")
            if dispatched.status != 200:
                raise RuntimeError("dispatch failed")
            return {"status": dispatched.status}

        flow.__name__ = "dispatcher_flow"
        return flow
