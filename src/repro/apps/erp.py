"""Resource management / enterprise resource planning (Table 1, "ERP").

Field staff check resource availability from handhelds, reserve and
release resources, and managers pull a utilisation report.
"""

from __future__ import annotations

from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["ERPApp"]

REPORT_TEMPLATE = """<html><head><title>Resource Report</title></head><body>
<h1>Utilisation</h1>
{% for r in resources %}<p>{{ r.name }}: {{ r.reserved }}/{{ r.capacity }} reserved</p>{% endfor %}
</body></html>"""


class ERPApp(Application):
    """Reserve/release pooled resources with overbooking protection."""

    category = "erp"
    clients = "All companies"

    def __init__(self, resources=None):
        super().__init__()
        self.resources = resources or [
            ("meeting-room-a", 1),
            ("delivery-van", 3),
            ("projector", 2),
        ]

    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS erp_resources ("
                 "name TEXT PRIMARY KEY, capacity INTEGER NOT NULL, "
                 "reserved INTEGER NOT NULL)")

    def seed_data(self, database) -> None:
        for name, capacity in self.resources:
            self.sql(database,
                     "INSERT INTO erp_resources (name, capacity, reserved) "
                     "VALUES (?, ?, 0)", (name, capacity))

    def mount_programs(self, server) -> None:
        server.mount("/erp/report", self._report, name="erp-report")
        server.mount("/erp/reserve", self._reserve, name="erp-reserve")
        server.mount("/erp/release", self._release, name="erp-release")

    def _report(self, ctx):
        reply = yield ctx.database.query(
            "SELECT * FROM erp_resources ORDER BY name")
        return HTTPResponse.ok(render(REPORT_TEMPLATE,
                                      {"resources": reply["rows"]}))

    def _reserve(self, ctx):
        name = ctx.param("resource")
        reply = yield ctx.database.query(
            "SELECT * FROM erp_resources WHERE name = ?", (name,))
        if not reply["rows"]:
            return HTTPResponse.not_found("no such resource")
        row = reply["rows"][0]
        # Atomic claim against the capacity ceiling.
        claimed = yield ctx.database.query(
            "UPDATE erp_resources SET reserved = reserved + 1 "
            "WHERE name = ? AND reserved < capacity", (name,))
        if claimed["rowcount"] == 0:
            return HTTPResponse(409, {"content-type": "text/plain"},
                                "resource fully reserved")
        return HTTPResponse.ok(html_page(
            "Reserved", f"<p>{name} reserved "
            f"({row['reserved'] + 1}/{row['capacity']})</p>"))

    def _release(self, ctx):
        name = ctx.param("resource")
        reply = yield ctx.database.query(
            "SELECT * FROM erp_resources WHERE name = ?", (name,))
        if not reply["rows"]:
            return HTTPResponse.not_found("no such resource")
        released = yield ctx.database.query(
            "UPDATE erp_resources SET reserved = reserved - 1 "
            "WHERE name = ? AND reserved > 0", (name,))
        if released["rowcount"] == 0:
            return HTTPResponse(409, {"content-type": "text/plain"},
                                "nothing to release")
        return HTTPResponse.ok(html_page("Released", f"<p>{name} freed</p>"))

    # -- flows --------------------------------------------------------------
    def manage_resources(self, resource: str = "delivery-van"):
        def flow(ctx):
            report = yield from ctx.get("/erp/report")
            yield from ctx.render(report)
            reserved = yield from ctx.get(f"/erp/reserve?resource={resource}")
            if reserved.status != 200:
                raise RuntimeError(f"reserve failed: {reserved.status}")
            released = yield from ctx.get(f"/erp/release?resource={resource}")
            return {"status": released.status}

        flow.__name__ = "manage_resources"
        return flow
