"""Mobile classrooms and labs (Table 1, "Education").

Students list courses, enroll from their handhelds, take a short quiz
and get a grade recorded host-side.
"""

from __future__ import annotations

from ..web import HTTPResponse, render
from .base import Application, html_page

__all__ = ["EducationApp"]

COURSES_TEMPLATE = """<html><head><title>Mobile Classroom</title></head>
<body><h1>Courses</h1>
{% for c in courses %}<p><a href="/edu/enroll?course={{ c.code }}&student={{ student }}">{{ c.code }}: {{ c.title }}</a> ({{ c.enrolled }} enrolled)</p>{% endfor %}
</body></html>"""


class EducationApp(Application):
    """Course enrollment and quizzes."""

    category = "education"
    clients = "Schools and training centers"

    QUIZ = {
        "q1": "4",   # 2 + 2
        "q2": "tcp",  # reliable transport on the internet
    }

    def create_schema(self, database) -> None:
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS edu_courses ("
                 "code TEXT PRIMARY KEY, title TEXT NOT NULL, "
                 "enrolled INTEGER NOT NULL)")
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS edu_enrollments ("
                 "rowid INTEGER PRIMARY KEY, course TEXT NOT NULL, "
                 "student TEXT NOT NULL)")
        self.sql(database,
                 "CREATE TABLE IF NOT EXISTS edu_grades ("
                 "rowid INTEGER PRIMARY KEY, course TEXT NOT NULL, "
                 "student TEXT NOT NULL, score INTEGER NOT NULL)")

    def seed_data(self, database) -> None:
        for code, title in [("CS101", "Intro to Mobile Computing"),
                            ("EC200", "Electronic Commerce")]:
            self.sql(database,
                     "INSERT INTO edu_courses (code, title, enrolled) "
                     "VALUES (?, ?, 0)", (code, title))
        self._next_rowid = 1

    def mount_programs(self, server) -> None:
        server.mount("/edu/courses", self._courses, name="edu-courses")
        server.mount("/edu/enroll", self._enroll, name="edu-enroll")
        server.mount("/edu/quiz", self._quiz, name="edu-quiz")

    def _courses(self, ctx):
        reply = yield ctx.database.query(
            "SELECT * FROM edu_courses ORDER BY code")
        return HTTPResponse.ok(render(COURSES_TEMPLATE, {
            "courses": reply["rows"],
            "student": ctx.param("student", "anon"),
        }))

    def _enroll(self, ctx):
        course = ctx.param("course")
        student = ctx.param("student", "anon")
        found = yield ctx.database.query(
            "SELECT enrolled FROM edu_courses WHERE code = ?", (course,))
        if not found["rows"]:
            return HTTPResponse.not_found("no such course")
        rowid = self._next_rowid
        self._next_rowid += 1
        yield ctx.database.query(
            "INSERT INTO edu_enrollments (rowid, course, student) "
            "VALUES (?, ?, ?)", (rowid, course, student))
        yield ctx.database.query(
            "UPDATE edu_courses SET enrolled = enrolled + 1 WHERE code = ?",
            (course,))
        return HTTPResponse.ok(html_page(
            "Enrolled", f"<p>{student} enrolled in {course}. "
            f'<a href="/edu/quiz?course={course}&student={student}'
            f'&q1=&q2=">Take the quiz</a></p>'))

    def _quiz(self, ctx):
        course = ctx.param("course")
        student = ctx.param("student", "anon")
        answers = {key: ctx.param(key, "").strip().lower()
                   for key in self.QUIZ}
        score = sum(100 // len(self.QUIZ)
                    for key, right in self.QUIZ.items()
                    if answers.get(key) == right)
        rowid = self._next_rowid
        self._next_rowid += 1
        yield ctx.database.query(
            "INSERT INTO edu_grades (rowid, course, student, score) "
            "VALUES (?, ?, ?, ?)", (rowid, course, student, score))
        return HTTPResponse.ok(html_page(
            "Quiz graded", f"<p>{student}: {score}/100 in {course}</p>"))

    # -- flows --------------------------------------------------------------
    def attend_class(self, student: str = "s1", course: str = "CS101",
                     answers: dict | None = None):
        answers = answers or {"q1": "4", "q2": "TCP"}

        def flow(ctx):
            listing = yield from ctx.get(f"/edu/courses?student={student}")
            yield from ctx.render(listing)
            enrolled = yield from ctx.get(
                f"/edu/enroll?course={course}&student={student}")
            if enrolled.status != 200:
                raise RuntimeError("enrollment failed")
            query = "&".join(f"{k}={v}" for k, v in answers.items())
            graded = yield from ctx.get(
                f"/edu/quiz?course={course}&student={student}&{query}")
            yield from ctx.render(graded)
            return {"status": graded.status}

        flow.__name__ = "attend_class"
        return flow
