"""Mobility extensions to the wired stack (paper §5.2).

Mobile IP (home/foreign agents, tunnelling, registration) plus the
three wireless TCP enhancements the paper surveys: split connection
(I-TCP), snoop packet caching, and fast retransmission after handoff.
"""

from .mobileip import (
    MOBILE_IP_PORT,
    ForeignAgent,
    HomeAgent,
    MobileIPClient,
    RegistrationReply,
    RegistrationRequest,
    RoamingManager,
)
from .tcp_freeze import HandoffNotifier
from .tcp_snoop import SnoopAgent
from .tcp_split import SplitRelay

__all__ = [
    "MOBILE_IP_PORT",
    "ForeignAgent",
    "HomeAgent",
    "MobileIPClient",
    "RegistrationReply",
    "RegistrationRequest",
    "RoamingManager",
    "HandoffNotifier",
    "SnoopAgent",
    "SplitRelay",
]
