"""Snoop protocol: base-station packet caching (Balakrishnan et al. [1]).

A :class:`SnoopAgent` sits on the base station's forwarding path and
keeps the fixed-host sender blissfully unaware of wireless losses:

* data segments flowing *toward* the mobile are cached (and forwarded
  normally);
* duplicate ACKs flowing *from* the mobile are interpreted as a
  wireless loss: the agent retransmits the missing segment from its
  cache **locally** and suppresses the duplicate ACK so the fixed
  sender neither fast-retransmits nor halves its congestion window.

Unlike split connection, end-to-end TCP semantics are preserved — the
fixed host's ACKs still come from the mobile itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...sim import Counter
from ..node import Interface, Node
from ..packet import PROTO_TCP, Packet
from ..tcp import TCPSegment

__all__ = ["SnoopAgent"]

# Flow key: (fixed_addr, fixed_port, mobile_addr, mobile_port)
FlowKey = tuple


@dataclass
class _FlowState:
    cache: dict[int, Packet] = field(default_factory=dict)  # seq -> packet
    last_ack: int = -1
    dupacks: int = 0
    retransmitted_for: int = -1
    dupacks_since_retransmit: int = 0


class SnoopAgent:
    """Per-base-station snoop cache over TCP flows toward mobile hosts."""

    def __init__(self, base_station: Node, mobile_addresses: set,
                 max_cached_segments: int = 256):
        self.node = base_station
        self.mobile_addresses = set(mobile_addresses)
        self.max_cached_segments = max_cached_segments
        self.flows: dict[FlowKey, _FlowState] = {}
        self.stats = Counter()
        base_station.rx_taps.append(self._tap)

    def add_mobile(self, address) -> None:
        self.mobile_addresses.add(address)

    def _tap(self, packet: Packet, iface: Interface) -> bool:
        if packet.proto != PROTO_TCP:
            return False
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            return False
        if packet.dst in self.mobile_addresses and segment.data:
            self._on_data_toward_mobile(packet, segment)
            return False  # forward normally
        if packet.src in self.mobile_addresses and segment.is_ack and \
                not segment.data:
            return self._on_ack_from_mobile(packet, segment)
        return False

    # -- data path: fixed -> mobile -------------------------------------------
    def _on_data_toward_mobile(self, packet: Packet, segment: TCPSegment) -> None:
        key = (packet.src, segment.src_port, packet.dst, segment.dst_port)
        flow = self.flows.setdefault(key, _FlowState())
        if len(flow.cache) < self.max_cached_segments:
            flow.cache[segment.seq] = packet.copy()
            self.stats.incr("cached_segments")

    # -- ack path: mobile -> fixed -------------------------------------------
    def _on_ack_from_mobile(self, packet: Packet, segment: TCPSegment) -> bool:
        key = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        flow = self.flows.get(key)
        if flow is None:
            return False
        ack = segment.ack
        if ack > flow.last_ack:
            # New ACK: clean the cache below it and pass it through.
            flow.last_ack = ack
            flow.dupacks = 0
            for seq in [s for s in flow.cache if s < ack]:
                del flow.cache[seq]
            return False
        if ack == flow.last_ack:
            flow.dupacks += 1
            self.stats.incr("dupacks_seen")
            cached = flow.cache.get(ack)
            if cached is not None:
                if flow.retransmitted_for != ack:
                    # First dupack for this hole: local retransmission.
                    flow.retransmitted_for = ack
                    flow.dupacks_since_retransmit = 0
                    self._local_retransmit(cached)
                else:
                    # The local copy may itself have been lost on the
                    # wireless hop; retry every few further dupacks
                    # (poor man's snoop timer).
                    flow.dupacks_since_retransmit += 1
                    if flow.dupacks_since_retransmit >= 3:
                        flow.dupacks_since_retransmit = 0
                        self._local_retransmit(cached)
                self.stats.incr("suppressed_dupacks")
                return True  # suppress the dupack
            # Not our loss (hole not in cache): let the sender handle it.
            return False
        return False

    def _local_retransmit(self, cached: Packet) -> None:
        self.node.forward(cached.copy(), originating=True)
        self.stats.incr("local_retransmissions")
