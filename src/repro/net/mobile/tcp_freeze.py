"""Fast retransmission after handoff (Caceres & Iftode [2]).

During a handoff the mobile is unreachable; segments in flight are
lost and the fixed sender's retransmission timer backs off
exponentially, so after reconnection the connection can sit idle for
seconds waiting for the (inflated) RTO.  The fix: the moment the
handoff completes, the mobile's TCP emits three duplicate ACKs, which
the fixed sender interprets as a fast-retransmit signal and resumes
immediately at the much milder fast-recovery penalty.

:class:`HandoffNotifier` wires this to the rest of the stack: register
the mobile's connections, call :meth:`handoff_complete` after each
re-attachment (e.g. right after Mobile IP registration succeeds).
"""

from __future__ import annotations

from ...sim import Counter
from ..tcp import TCPConnection

__all__ = ["HandoffNotifier"]


class HandoffNotifier:
    """Triggers TCP fast retransmission on the fixed sender after handoff."""

    def __init__(self):
        self._connections: list[TCPConnection] = []
        self.stats = Counter()

    def track(self, connection: TCPConnection) -> None:
        """Register a connection whose receiver lives on the mobile."""
        if connection not in self._connections:
            self._connections.append(connection)

    def untrack(self, connection: TCPConnection) -> None:
        if connection in self._connections:
            self._connections.remove(connection)

    def handoff_complete(self) -> None:
        """Signal every tracked (still-open) connection."""
        for connection in list(self._connections):
            if connection.state == TCPConnection.CLOSED:
                self._connections.remove(connection)
                continue
            connection.signal_handoff_complete()
            self.stats.incr("signals_sent")
