"""Mobile IP: home agents, foreign agents, registration and tunnelling.

Implements the §5.2 description end-to-end:

* a :class:`HomeAgent` on the mobile node's home subnet intercepts
  datagrams addressed to the mobile's *home address* and tunnels them
  (IP-in-IP) to the registered *care-of address*;
* a :class:`ForeignAgent` on a visited subnet advertises itself,
  relays registration requests to the home agent, decapsulates
  tunnelled datagrams and delivers them over the visited link;
* a :class:`MobileIPClient` on the mobile host performs agent
  discovery and registration, and a :class:`RoamingManager` performs
  the physical handoff (re-linking the mobile under a new agent).

Transparency above IP — the paper's headline property — falls out: the
mobile keeps its home address across moves, so TCP connections and UDP
port bindings survive handoffs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ...sim import Event, Simulator
from ..addressing import IPAddress, Subnet
from ..link import Link
from ..node import Interface, Network, Node
from ..packet import Packet
from ..routing import Route
from ..udp import UDPStack

__all__ = [
    "RegistrationRequest",
    "RegistrationReply",
    "HomeAgent",
    "ForeignAgent",
    "MobileIPClient",
    "RoamingManager",
    "MOBILE_IP_PORT",
]

MOBILE_IP_PORT = 434
DEFAULT_LIFETIME = 300.0

_registration_ids = itertools.count(1)


@dataclass
class RegistrationRequest:
    """Mobile -> FA -> HA registration message."""

    home_address: IPAddress
    home_agent: IPAddress
    care_of_address: IPAddress
    lifetime: float
    identification: int


@dataclass
class RegistrationReply:
    """HA -> FA -> mobile registration outcome."""

    home_address: IPAddress
    accepted: bool
    lifetime: float
    identification: int
    reason: str = ""


@dataclass
class _Binding:
    care_of_address: IPAddress
    expires_at: float


class HomeAgent:
    """Tunnel endpoint on the home network for roaming mobiles."""

    def __init__(self, router: Node, udp: Optional[UDPStack] = None):
        self.router = router
        self.sim: Simulator = router.sim
        self.udp = udp or UDPStack(router)
        self._sock = self.udp.bind(MOBILE_IP_PORT)
        self.bindings: dict[IPAddress, _Binding] = {}
        router.rx_taps.append(self._intercept)
        self.sim.spawn(self._serve(), name=f"ha@{router.name}")

    # -- control plane ---------------------------------------------------
    def _serve(self):
        while True:
            message, src, src_port = yield self._sock.recv()
            if isinstance(message, RegistrationRequest):
                reply = self._register(message)
                self._sock.sendto(reply, src, src_port, data_size=32)

    def _register(self, request: RegistrationRequest) -> RegistrationReply:
        if request.home_agent != self.router.primary_address and \
                not self.router.owns_address(request.home_agent):
            return RegistrationReply(
                home_address=request.home_address,
                accepted=False,
                lifetime=0.0,
                identification=request.identification,
                reason="wrong home agent",
            )
        if request.lifetime <= 0:
            # Deregistration: the mobile is back home.
            self.bindings.pop(request.home_address, None)
            self.router.stats.incr("mip_deregistrations")
        else:
            self.bindings[request.home_address] = _Binding(
                care_of_address=request.care_of_address,
                expires_at=self.sim.now + request.lifetime,
            )
            self.router.stats.incr("mip_registrations")
        return RegistrationReply(
            home_address=request.home_address,
            accepted=True,
            lifetime=request.lifetime,
            identification=request.identification,
        )

    def binding_for(self, home_address: IPAddress) -> Optional[_Binding]:
        binding = self.bindings.get(home_address)
        if binding is None:
            return None
        if binding.expires_at < self.sim.now:
            del self.bindings[home_address]
            return None
        return binding

    # -- data plane --------------------------------------------------------
    def _intercept(self, packet: Packet, iface: Interface) -> bool:
        """Tunnel datagrams addressed to a registered home address."""
        if packet.proto == "ipip":
            return False  # never re-tunnel tunnel traffic
        binding = self.binding_for(packet.dst)
        if binding is None:
            return False
        outer = packet.encapsulate(
            outer_src=self.router.primary_address,
            outer_dst=binding.care_of_address,
        )
        self.router.stats.incr("mip_tunneled")
        self.router.forward(outer, originating=True)
        return True


class ForeignAgent:
    """Care-of endpoint on a visited network."""

    def __init__(self, router: Node, udp: Optional[UDPStack] = None):
        self.router = router
        self.sim: Simulator = router.sim
        self.udp = udp or UDPStack(router)
        self._sock = self.udp.bind(MOBILE_IP_PORT)
        # home_address -> (iface toward the visitor, pending reply events)
        self.visitors: dict[IPAddress, Interface] = {}
        self._pending: dict[int, tuple[IPAddress, int]] = {}
        router.rx_taps.append(self._intercept)
        self.sim.spawn(self._serve(), name=f"fa@{router.name}")

    @property
    def care_of_address(self) -> IPAddress:
        return self.router.primary_address

    def _serve(self):
        while True:
            message, src, src_port = yield self._sock.recv()
            if isinstance(message, RegistrationRequest):
                self._relay_request(message, src, src_port)
            elif isinstance(message, RegistrationReply):
                self._relay_reply(message)

    def _relay_request(self, request: RegistrationRequest,
                       src: IPAddress, src_port: int) -> None:
        # Record where the mobile is attached so data can be delivered and
        # the reply routed back down the same link.
        iface = self._iface_toward_visitor(request.home_address)
        if iface is not None:
            self.visitors[request.home_address] = iface
            self._install_visitor_route(request.home_address, iface)
        self._pending[request.identification] = (src, src_port)
        rewritten = RegistrationRequest(
            home_address=request.home_address,
            home_agent=request.home_agent,
            care_of_address=self.care_of_address,
            lifetime=request.lifetime,
            identification=request.identification,
        )
        self._sock.sendto(rewritten, request.home_agent, MOBILE_IP_PORT,
                          data_size=32)
        self.router.stats.incr("mip_relayed_requests")

    def _relay_reply(self, reply: RegistrationReply) -> None:
        pending = self._pending.pop(reply.identification, None)
        if pending is None:
            return
        src, src_port = pending
        self._sock.sendto(reply, src, src_port, data_size=32)
        self.router.stats.incr("mip_relayed_replies")

    def _iface_toward_visitor(self, home_address: IPAddress) -> Optional[Interface]:
        for iface in self.router.interfaces:
            peer = iface.peer()
            if peer is not None and peer.node is not None and \
                    peer.node.owns_address(home_address):
                return iface
        return None

    def _install_visitor_route(self, home_address: IPAddress,
                               iface: Interface) -> None:
        self.router.routing_table.add(
            Route(subnet=Subnet(home_address, 32), iface_name=iface.name)
        )

    def remove_visitor(self, home_address: IPAddress) -> None:
        self.visitors.pop(home_address, None)
        self.router.routing_table.remove(Subnet(home_address, 32))

    def _intercept(self, packet: Packet, iface: Interface) -> bool:
        """Decapsulate tunnelled datagrams for our visitors."""
        if packet.proto != "ipip" or packet.dst != self.care_of_address:
            return False
        inner = packet.decapsulate()
        visitor_iface = self.visitors.get(inner.dst)
        if visitor_iface is None:
            self.router.stats.incr("mip_unknown_visitor")
            return True
        self.router.stats.incr("mip_decapsulated")
        visitor_iface.send(inner)
        return True


class MobileIPClient:
    """Registration logic living on the mobile host."""

    def __init__(self, mobile: Node, home_address: IPAddress,
                 home_agent_address: IPAddress,
                 udp: Optional[UDPStack] = None):
        self.mobile = mobile
        self.sim: Simulator = mobile.sim
        self.home_address = home_address
        self.home_agent_address = home_agent_address
        self.udp = udp or UDPStack(mobile)
        self.registered_with: Optional[IPAddress] = None

    def register_via(self, fa_address: IPAddress,
                     lifetime: float = DEFAULT_LIFETIME,
                     timeout: float = 3.0) -> Event:
        """Register through a foreign agent; event yields the reply or None."""
        result = self.sim.event()

        def register(env):
            sock = self.udp.bind()
            request = RegistrationRequest(
                home_address=self.home_address,
                home_agent=self.home_agent_address,
                care_of_address=fa_address,
                lifetime=lifetime,
                identification=next(_registration_ids),
            )
            try:
                sock.sendto(request, fa_address, MOBILE_IP_PORT, data_size=32)
                reply = yield sock.recv_with_timeout(timeout)
            finally:
                sock.close()
            if reply is None:
                result.succeed(None)
                return
            message, _, _ = reply
            if isinstance(message, RegistrationReply) and message.accepted:
                self.registered_with = fa_address
            result.succeed(message)

        self.sim.spawn(register(self.sim), name="mip-register")
        return result

    def deregister(self, timeout: float = 3.0) -> Event:
        """Tell the home agent we are home again (lifetime 0)."""
        result = self.sim.event()

        def deregister(env):
            sock = self.udp.bind()
            request = RegistrationRequest(
                home_address=self.home_address,
                home_agent=self.home_agent_address,
                care_of_address=self.home_address,
                lifetime=0.0,
                identification=next(_registration_ids),
            )
            try:
                sock.sendto(request, self.home_agent_address,
                            MOBILE_IP_PORT, data_size=32)
                reply = yield sock.recv_with_timeout(timeout)
            finally:
                sock.close()
            self.registered_with = None
            result.succeed(reply[0] if reply else None)

        self.sim.spawn(deregister(self.sim), name="mip-deregister")
        return result


class RoamingManager:
    """Performs physical attachment changes for a mobile node.

    The mobile keeps a single logical "radio" attachment: a fresh link is
    created toward each access router on attach, and the previous link is
    torn down.  The mobile's routing table is rewritten to default through
    the current access router, while its *address* never changes — that is
    Mobile IP's contract.
    """

    DEFAULT_NET = Subnet(IPAddress(0), 0)

    def __init__(self, network: Network, mobile: Node,
                 home_address: IPAddress,
                 bandwidth_bps: float = 2_000_000.0,
                 delay: float = 0.004):
        self.network = network
        self.mobile = mobile
        self.home_address = home_address
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.current_link: Optional[Link] = None
        self.current_iface: Optional[Interface] = None
        self.current_router: Optional[Node] = None
        self._radio_index = itertools.count()

    def attach(self, access_router: Node, loss_rate: float = 0.0,
               loss_stream=None) -> Link:
        """Bring up a radio link to ``access_router`` (dropping any old one)."""
        self.detach()
        link = Link(
            self.mobile.sim,
            name=f"radio-{self.mobile.name}-{access_router.name}",
            bandwidth_bps=self.bandwidth_bps,
            delay=self.delay,
            loss_rate=loss_rate,
            loss_stream=loss_stream,
        )
        mobile_iface = self.mobile.add_interface(
            name=f"radio{next(self._radio_index)}",
            address=self.home_address,
        )
        mobile_iface.attach(link)
        router_iface = access_router.add_interface(
            name=f"radio-to-{self.mobile.name}-{len(access_router.interfaces)}",
            address=access_router.primary_address,
        )
        router_iface.attach(link)
        self.network.links.append(link)
        # The access router can always reach its directly-attached mobile.
        access_router.routing_table.add(
            Route(subnet=Subnet(self.home_address, 32),
                  iface_name=router_iface.name)
        )
        self.current_link = link
        self.current_iface = mobile_iface
        self.current_router = access_router
        # Mobile routes everything through the access router.
        self.mobile.routing_table.clear()
        self.mobile.routing_table.add(
            Route(subnet=self.DEFAULT_NET, iface_name=mobile_iface.name,
                  next_hop=access_router.primary_address)
        )
        return link

    def detach(self) -> None:
        """Tear down the current radio link, if any."""
        if self.current_link is not None:
            self.current_link.take_down()
        if self.current_iface is not None:
            self.current_iface.detach()
        if self.current_router is not None and \
                self.current_link is not None:
            # Let the old router stop delivering to the dead link.
            other = self.current_link.other_iface(self.current_iface)
            if other is not None:
                other.detach()
        self.current_link = None
        self.current_iface = None
        self.current_router = None
