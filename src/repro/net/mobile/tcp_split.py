"""Split-connection TCP (I-TCP, Yavatkar & Bhagawat [16]).

The path between the mobile host and the fixed host is split at the
base station / gateway into two independent TCP connections: one over
the (short, lossy) wireless hop and one over the wired Internet.  Each
half runs its own congestion control, so wireless losses trigger
*local* recovery on the wireless half and never shrink the wired
sender's window.

:class:`SplitRelay` is the gateway-side implementation: it accepts
connections on a listen port and, per session, opens its own wired
connection to the configured fixed host, then pumps bytes in both
directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...sim import Counter
from ..addressing import IPAddress
from ..node import Node
from ..tcp import TCPConnection, TCPStack

__all__ = ["SplitRelay"]


@dataclass
class _Session:
    wireless: TCPConnection
    wired: TCPConnection
    bytes_up: int = 0
    bytes_down: int = 0


class SplitRelay:
    """An I-TCP style indirection point on a gateway node."""

    def __init__(
        self,
        gateway: Node,
        listen_port: int,
        target_address: IPAddress,
        target_port: int,
        tcp: Optional[TCPStack] = None,
        wireless_mss: int = 512,
        wired_mss: int = 1460,
    ):
        self.gateway = gateway
        self.sim = gateway.sim
        self.tcp = tcp or TCPStack(gateway)
        self.listen_port = listen_port
        self.target_address = target_address
        self.target_port = target_port
        self.wireless_mss = wireless_mss
        self.wired_mss = wired_mss
        self.sessions: list[_Session] = []
        self.stats = Counter()
        self._listener = self.tcp.listen(listen_port, mss=wireless_mss)
        self.sim.spawn(self._accept_loop(), name=f"split-relay@{gateway.name}")

    def _accept_loop(self):
        while True:
            wireless_conn = yield self._listener.accept()
            self.stats.incr("sessions")
            self.sim.spawn(
                self._start_session(wireless_conn),
                name="split-session",
            )

    def _start_session(self, wireless_conn: TCPConnection):
        wired_conn = self.tcp.connect(
            self.target_address, self.target_port, mss=self.wired_mss
        )
        yield wired_conn.established_event
        session = _Session(wireless=wireless_conn, wired=wired_conn)
        self.sessions.append(session)
        self.sim.spawn(self._pump(session, "up"), name="split-pump-up")
        self.sim.spawn(self._pump(session, "down"), name="split-pump-down")

    def _pump(self, session: _Session, direction: str):
        """Copy bytes from one half to the other until EOF."""
        if direction == "up":
            src, dst = session.wireless, session.wired
        else:
            src, dst = session.wired, session.wireless
        while True:
            chunk = yield src.recv()
            if chunk == b"":
                dst.close()
                return
            if direction == "up":
                session.bytes_up += len(chunk)
            else:
                session.bytes_down += len(chunk)
            self.stats.incr(f"bytes_{direction}", len(chunk))
            dst.send(chunk)
