"""Routing: longest-prefix-match tables and static shortest-path fill.

Each node carries a :class:`RoutingTable`.  The :func:`compute_static_routes`
helper runs Dijkstra over a :class:`repro.net.node.Network` topology and
installs host routes, which is all a laptop-scale simulation needs; the
point of this module is that forwarding decisions are *data*, so Mobile
IP can override them (host routes for care-of addresses) exactly the way
real stacks do.
"""

from __future__ import annotations

# Dijkstra's frontier, not an event queue.
import heapq  # repro: noqa[direct-heapq]
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .addressing import IPAddress, Subnet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Interface, Network, Node

__all__ = ["Route", "RoutingTable", "compute_static_routes"]


@dataclass
class Route:
    """One routing entry.

    ``next_hop`` of None means the destination is directly attached on
    ``iface`` (deliver without further routing).
    """

    subnet: Subnet
    iface_name: str
    next_hop: Optional[IPAddress] = None
    metric: int = 1

    def __repr__(self) -> str:  # pragma: no cover
        via = f" via {self.next_hop}" if self.next_hop else " direct"
        return f"<Route {self.subnet} dev {self.iface_name}{via}>"


class RoutingTable:
    """Longest-prefix-match over a list of routes.

    Lookups are memoised per destination; any table mutation drops the
    memo, so Mobile IP's mid-run host-route updates are seen instantly.
    """

    def __init__(self):
        self._routes: list[Route] = []
        # destination address value -> winning Route (or None for no
        # route).  Purely a lookup memo: cleared on every mutation.
        self._lookup_cache: dict[int, Optional[Route]] = {}

    def add(self, route: Route) -> None:
        # Replace an existing route for the identical prefix.
        self._routes = [
            r for r in self._routes if r.subnet != route.subnet
        ]
        self._routes.append(route)
        self._routes.sort(key=lambda r: -r.subnet.prefix_len)
        self._lookup_cache.clear()

    def remove(self, subnet: Subnet) -> bool:
        before = len(self._routes)
        self._routes = [r for r in self._routes if r.subnet != subnet]
        self._lookup_cache.clear()
        return len(self._routes) != before

    def lookup(self, destination: IPAddress) -> Optional[Route]:
        """Most specific matching route, or None."""
        value = destination.value
        try:
            return self._lookup_cache[value]
        except KeyError:
            pass
        found = None
        for route in self._routes:  # sorted by descending prefix length
            subnet = route.subnet
            if (value & subnet.mask) == subnet.network.value:
                found = route
                break
        self._lookup_cache[value] = found
        return found

    def routes(self) -> list[Route]:
        return list(self._routes)

    def clear(self) -> None:
        self._routes.clear()
        self._lookup_cache.clear()


def compute_static_routes(network: "Network") -> None:
    """Populate every node's routing table with shortest-path routes.

    Runs Dijkstra from each node over the link topology (metric = 1 per
    link, ties broken by insertion order) and installs:

    * a *direct* route for every attached subnet, and
    * a /32 host route toward every remote interface address.
    """
    for node in network.nodes:
        node.routing_table.clear()
        # Direct subnets first.
        for iface in node.interfaces:
            if iface.subnet is not None:
                node.routing_table.add(
                    Route(subnet=iface.subnet, iface_name=iface.name)
                )

    for source in network.nodes:
        dist, first_hop = _dijkstra(network, source)
        for target in network.nodes:
            if target is source or target not in first_hop:
                continue
            out_iface, gateway = first_hop[target]
            for announced in target.announced_subnets:
                existing = source.routing_table.lookup(announced.network)
                if existing is not None and \
                        existing.subnet.prefix_len >= announced.prefix_len:
                    continue
                source.routing_table.add(
                    Route(
                        subnet=announced,
                        iface_name=out_iface.name,
                        next_hop=gateway,
                        metric=dist[target],
                    )
                )
            for iface in target.interfaces:
                if iface.address is None:
                    continue
                host_net = Subnet(iface.address, 32)
                existing = source.routing_table.lookup(iface.address)
                if existing is not None and existing.subnet.prefix_len == 32:
                    continue
                source.routing_table.add(
                    Route(
                        subnet=host_net,
                        iface_name=out_iface.name,
                        next_hop=gateway,
                        metric=dist[target],
                    )
                )


def _dijkstra(network: "Network", source: "Node"):
    """Shortest paths; returns (distance, first_hop) maps.

    ``first_hop[node]`` is ``(source_iface, gateway_address)`` for the
    first link on the path from ``source`` to ``node``.
    """
    dist: dict = {source: 0}
    first_hop: dict = {}
    counter = 0
    heap: list[tuple[int, int, "Node", Optional[tuple]]] = [(0, counter, source, None)]
    visited: set = set()
    while heap:
        d, _, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if hop is not None:
            first_hop[node] = hop
        for iface in node.interfaces:
            if iface.link is None or not iface.is_up or iface.link.is_down:
                continue
            peer = iface.peer()
            if peer is None or peer.node is None or not peer.is_up:
                continue
            neighbour = peer.node
            nd = d + 1
            if neighbour not in dist or nd < dist[neighbour]:
                dist[neighbour] = nd
                if node is source:
                    next_hop_info = (iface, peer.address)
                else:
                    next_hop_info = hop
                counter += 1
                heapq.heappush(heap, (nd, counter, neighbour, next_hop_info))
    return dist, first_hop
