"""UDP: connectionless datagram sockets.

Used by Mobile IP signalling (registration requests/replies), DNS and a
few application protocols.  Port demultiplexing is per node.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from ..sim import Event, Store
from .addressing import IPAddress
from .node import Node
from .packet import PROTO_UDP, Packet

__all__ = ["UDPSegment", "UDPSocket", "UDPStack", "udp_stack"]


def udp_stack(node: Node) -> "UDPStack":
    """The node's UDP stack, creating one on first use."""
    existing = getattr(node, "_udp_stack", None)
    if existing is not None:
        return existing
    return UDPStack(node)

UDP_HEADER_BYTES = 8


@dataclass
class UDPSegment:
    src_port: int
    dst_port: int
    data: Any
    data_size: int = 0


class UDPSocket:
    """A bound UDP endpoint."""

    def __init__(self, stack: "UDPStack", port: int):
        self.stack = stack
        self.port = port
        self.inbox: Store = Store(stack.node.sim)
        self.closed = False

    def sendto(self, data: Any, dst: IPAddress, dst_port: int,
               data_size: int = 0) -> bool:
        """Send one datagram; returns False if the first hop dropped it."""
        if self.closed:
            raise RuntimeError("sendto() on a closed socket")
        segment = UDPSegment(self.port, dst_port, data, data_size)
        packet = Packet(
            src=self.stack.node.primary_address,
            dst=dst,
            proto=PROTO_UDP,
            payload=segment,
            payload_size=data_size + UDP_HEADER_BYTES,
        )
        return self.stack.node.send_ip(packet)

    def recv(self) -> Event:
        """Event yielding (data, src_address, src_port)."""
        if self.closed:
            raise RuntimeError("recv() on a closed socket")
        return self.inbox.get()

    def recv_with_timeout(self, timeout: float) -> Event:
        """Event yielding (data, src, port) or None on timeout."""
        sim = self.stack.node.sim
        result = sim.event()

        def waiter(env):
            got = self.inbox.get()
            expiry = env.timeout(timeout)
            fired = yield env.any_of([got, expiry])
            if not result.triggered:
                if got in fired:
                    result.succeed(fired[got])
                else:
                    result.succeed(None)

        sim.spawn(waiter(sim), name="udp-recv-timeout")
        return result

    def close(self) -> None:
        self.closed = True
        self.stack._unbind(self.port)


class UDPStack:
    """Per-node UDP port table."""

    def __init__(self, node: Node):
        if getattr(node, "_udp_stack", None) is not None:
            raise RuntimeError(
                f"node {node.name} already has a UDP stack; share it instead"
            )
        node._udp_stack = self
        self.node = node
        self._sockets: dict[int, UDPSocket] = {}
        self._ephemeral = itertools.count(49152)
        node.register_protocol(PROTO_UDP, self._on_packet)

    def bind(self, port: Optional[int] = None) -> UDPSocket:
        if port is None:
            port = next(self._ephemeral)
        if port in self._sockets:
            raise RuntimeError(f"port {port} already bound on {self.node.name}")
        sock = UDPSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def _on_packet(self, node: Node, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, UDPSegment):
            node.stats.incr("udp_malformed")
            return
        sock = self._sockets.get(segment.dst_port)
        if sock is None:
            node.stats.incr("udp_port_unreachable")
            return
        sock.inbox.try_put((segment.data, packet.src, segment.src_port))
