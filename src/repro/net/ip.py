"""IP-layer utilities: echo (ping) and path tracing.

These sit on top of :mod:`repro.net.node` and exist mostly for tests,
examples and the Mobile IP benchmarks, which need an application-free
way to observe reachability and routing paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..sim import Event, Simulator
from .addressing import IPAddress
from .node import Node
from .packet import PROTO_ICMP, Packet

__all__ = ["EchoReply", "install_echo_responder", "ping"]

_echo_ids = itertools.count(1)


@dataclass
class _EchoPayload:
    echo_id: int
    kind: str  # "request" | "reply"
    origin: IPAddress


@dataclass
class EchoReply:
    """Result of a successful ping."""

    rtt: float
    hops: list[str]
    echo_id: int


def install_echo_responder(node: Node) -> None:
    """Make ``node`` answer ICMP echo requests."""

    def handler(n: Node, packet: Packet) -> None:
        payload = packet.payload
        if not isinstance(payload, _EchoPayload) or payload.kind != "request":
            return
        reply = Packet(
            src=packet.dst,
            dst=payload.origin,
            proto=PROTO_ICMP,
            payload=_EchoPayload(payload.echo_id, "reply", payload.origin),
            payload_size=packet.payload_size,
        )
        reply.hops = list(packet.hops)
        n.send_ip(reply)

    node.register_protocol(PROTO_ICMP, handler)


def ping(
    sim: Simulator,
    source: Node,
    destination: IPAddress,
    timeout: float = 5.0,
    size: int = 64,
) -> Event:
    """Send one echo request; the returned event yields EchoReply or None.

    The destination node must have :func:`install_echo_responder`
    applied (test/benchmark setup does this for every host).
    """
    echo_id = next(_echo_ids)
    result = sim.event()
    pending: dict[int, Event] = {echo_id: result}

    previous = source._handlers.get(PROTO_ICMP)

    def reply_handler(n: Node, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, _EchoPayload) and payload.kind == "reply":
            waiter = pending.pop(payload.echo_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(
                    EchoReply(
                        rtt=sim.now - start_time,
                        hops=list(packet.hops),
                        echo_id=payload.echo_id,
                    )
                )
            return
        if previous is not None:
            previous(n, packet)

    source.register_protocol(PROTO_ICMP, reply_handler)

    start_time = sim.now
    request = Packet(
        src=source.primary_address,
        dst=destination,
        proto=PROTO_ICMP,
        payload=_EchoPayload(echo_id, "request", source.primary_address),
        payload_size=size,
    )
    source.send_ip(request)

    def watchdog(env):
        yield env.timeout(timeout)
        waiter = pending.pop(echo_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)

    sim.spawn(watchdog(sim), name="ping-timeout")
    return result
