"""TCP: reliable byte streams with Reno congestion control.

This is a functional TCP, not a pantomime: three-way handshake,
sequence numbers over a real byte stream, cumulative ACKs, sliding
window bounded by min(cwnd, receiver window), slow start, congestion
avoidance, fast retransmit on three duplicate ACKs, fast recovery,
Jacobson/Karn RTO estimation with exponential backoff, and FIN
teardown.  The paper's §5.2 discusses why plain TCP struggles over
wireless links; the mobile variants in :mod:`repro.net.mobile` hook the
mechanisms implemented here.

Simplifications relative to RFC 793/5681 are noted inline: no delayed
ACKs (every data segment is ACKed, which makes duplicate-ACK behaviour
crisp), no SACK, no Nagle, unbounded send buffer, and an abbreviated
close (FIN/ACK without TIME_WAIT).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from ..sim import Counter, Event, Simulator, Store, Timeout
from .addressing import IPAddress
from .node import Node
from .packet import PROTO_TCP, Packet

__all__ = ["TCPSegment", "TCPConnection", "TCPListener", "TCPStack", "tcp_stack"]

TCP_HEADER_BYTES = 20
DEFAULT_MSS = 1460
DEFAULT_RWND = 65535
MIN_RTO = 0.2
MAX_RTO = 60.0
INITIAL_RTO = 1.0
DUPACK_THRESHOLD = 3


@dataclass(slots=True)
class TCPSegment:
    """A TCP segment as carried in a Packet payload (slotted: one is
    allocated for every data/ACK exchange on every connection)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: frozenset = frozenset()
    data: bytes = b""
    window: int = DEFAULT_RWND

    @property
    def syn(self) -> bool:
        return "SYN" in self.flags

    @property
    def is_ack(self) -> bool:
        return "ACK" in self.flags

    @property
    def fin(self) -> bool:
        return "FIN" in self.flags

    def __repr__(self) -> str:  # pragma: no cover
        flags = "|".join(sorted(self.flags)) or "-"
        return (
            f"<TCP {self.src_port}->{self.dst_port} seq={self.seq} "
            f"ack={self.ack} {flags} len={len(self.data)}>"
        )


def _segment_flags(*names: str) -> frozenset:
    return frozenset(names)


# Hot-path constant: _emit ORs this in per segment; building the
# frozenset each time is measurable at load-test scale.
_ACK_FLAGS = frozenset(("ACK",))


@dataclass(slots=True)
class _SendBufferEntry:
    seq: int
    data: bytes
    sent_at: float = 0.0
    retransmitted: bool = False


class TCPConnection:
    """One endpoint of an established (or establishing) connection."""

    # Connection states.
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_SENT = "FIN_SENT"
    CLOSE_WAIT = "CLOSE_WAIT"

    def __init__(
        self,
        stack: "TCPStack",
        local_port: int,
        remote_addr: IPAddress,
        remote_port: int,
        mss: int = DEFAULT_MSS,
    ):
        self.stack = stack
        self.sim: Simulator = stack.node.sim
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.mss = mss
        self.state = TCPConnection.CLOSED

        # --- send side -----------------------------------------------------
        self.snd_una = 0          # oldest unacknowledged sequence number
        self.snd_nxt = 0          # next sequence number to send
        self.iss = 0              # initial send sequence
        self.cwnd = float(mss)    # congestion window (bytes)
        self.ssthresh = float(DEFAULT_RWND)
        self.peer_window = DEFAULT_RWND
        # App data not yet segmented: deque, because _pump() consumes
        # from the head chunk by chunk and list.pop(0) is O(n).
        self._send_queue: Deque[bytes] = deque()
        self._inflight: list[_SendBufferEntry] = []
        self._dupacks = 0
        self._in_fast_recovery = False
        # NewReno-style recovery point: while snd_una is below this,
        # every partial ACK retransmits the next hole immediately
        # instead of waiting out another (backed-off) RTO.
        self._recovery_point = 0
        self._send_wakeup: Optional[Event] = None

        # --- receive side ----------------------------------------------------
        self.rcv_nxt = 0
        self.irs = 0
        self._reorder: dict[int, bytes] = {}
        self._rx_stream: Store = Store(self.sim)
        self._rx_buffer = b""
        self.fin_received = False

        # --- timers ----------------------------------------------------------
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        # The retransmission timer is a bare kernel Timeout with a
        # callback, not a spawned process: arming is one allocation,
        # and cancellation tombstones the queue entry so a cancelled
        # timer never wakes anything (see Timeout.cancel).  ACK-driven
        # rearm/cancel is the common case — almost every timer dies.
        self._timer: Optional[Timeout] = None
        # True retransmission deadline and the pending timer's actual
        # fire time; they diverge when arms lazily extend the deadline.
        self._rto_deadline = 0.0
        self._timer_fires_at = 0.0

        # --- lifecycle events --------------------------------------------------
        self.established_event: Event = self.sim.event()
        self.closed_event: Event = self.sim.event()

        self.stats = Counter()
        # Observability: TraceContext stamped onto every emitted Packet,
        # so link-level spans can be stitched to the transaction even
        # after segmentation.  None (untraced) by default.
        self.trace: Any = None

    # ------------------------------------------------------------------ API
    def send(self, data: bytes) -> None:
        """Queue application bytes for transmission."""
        if self.state not in (
            TCPConnection.ESTABLISHED,
            TCPConnection.SYN_SENT,
            TCPConnection.SYN_RCVD,
            TCPConnection.CLOSE_WAIT,
        ):
            raise RuntimeError(f"send() in state {self.state}")
        if not data:
            return
        self._send_queue.append(bytes(data))
        self.stats.incr("bytes_queued", len(data))
        self._pump()

    def recv(self) -> Event:
        """Event yielding the next chunk of received bytes (b"" on FIN)."""
        if self._rx_buffer:
            ev = self.sim.event()
            chunk, self._rx_buffer = self._rx_buffer, b""
            ev.succeed(chunk)
            return ev
        # The store's get event already yields the next chunk (and keeps
        # concurrent callers in FIFO order), so no waiter process is
        # needed here at all.
        return self._rx_stream.get()

    def recv_exactly(self, n: int) -> Event:
        """Event yielding exactly ``n`` bytes (or fewer if FIN arrives)."""
        ev = self.sim.event()
        if len(self._rx_buffer) >= n:
            out, self._rx_buffer = self._rx_buffer[:n], self._rx_buffer[n:]
            ev.succeed(out)
            return ev

        def waiter(env):
            while len(self._rx_buffer) < n:
                chunk = yield self._rx_stream.get()
                if chunk == b"":
                    break
                self._rx_buffer += chunk
            out, self._rx_buffer = self._rx_buffer[:n], self._rx_buffer[n:]
            ev.succeed(out)

        self.sim.spawn(waiter(self.sim), name="tcp-recv-exactly")
        return ev

    def close(self) -> None:
        """Send FIN once all queued data has been transmitted."""
        if self.state in (TCPConnection.CLOSED, TCPConnection.FIN_SENT):
            return

        def closer(env):
            while self._send_queue or self._inflight:
                wake = self._wakeup_event()
                yield wake
            if self.state in (TCPConnection.ESTABLISHED, TCPConnection.CLOSE_WAIT):
                self.state = TCPConnection.FIN_SENT
                self._emit(flags=_segment_flags("FIN", "ACK"))
                self.snd_nxt += 1  # FIN consumes a sequence number

        self.sim.spawn(closer(self.sim), name="tcp-close")

    # --------------------------------------------------------- connection setup
    def open_active(self) -> None:
        """Client side: send SYN."""
        self.iss = self.stack.next_isn()
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.state = TCPConnection.SYN_SENT
        self._emit(flags=_segment_flags("SYN"), seq=self.iss)
        self._arm_timer()

    def open_passive_reply(self, syn_segment: TCPSegment) -> None:
        """Server side: got SYN, send SYN|ACK."""
        self.irs = syn_segment.seq
        self.rcv_nxt = syn_segment.seq + 1
        self.iss = self.stack.next_isn()
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.state = TCPConnection.SYN_RCVD
        self._emit(flags=_segment_flags("SYN", "ACK"), seq=self.iss)
        self._arm_timer()

    # ------------------------------------------------------------- segment I/O
    def _emit(
        self,
        flags: frozenset = frozenset(),
        seq: Optional[int] = None,
        data: bytes = b"",
    ) -> None:
        segment = TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt,
            flags=flags | _ACK_FLAGS if self.state not in (
                TCPConnection.SYN_SENT,) else flags,
            data=data,
            window=DEFAULT_RWND,
        )
        packet = Packet(
            src=self.stack.node.primary_address,
            dst=self.remote_addr,
            proto=PROTO_TCP,
            payload=segment,
            payload_size=len(data) + TCP_HEADER_BYTES,
            trace=self.trace,
        )
        self.stats.incr("segments_sent")
        self.stack.node.send_ip(packet)

    def handle_segment(self, segment: TCPSegment, packet: Packet) -> None:
        """Demultiplexed inbound segment processing."""
        self.stats.incr("segments_received")
        if segment.data and packet.trace is not None:
            # Adopt the sender's trace context: the peer's spans (and our
            # replies) stitch to the same transaction without spending a
            # single wire byte on it.  Data segments only — a straggling
            # ACK from a previous request must not revert the context.
            self.trace = packet.trace
        if segment.syn and segment.is_ack:
            self._on_synack(segment)
            return
        if segment.syn:
            # Simultaneous open is out of scope; re-ACK our SYN|ACK.
            return
        if self.state == TCPConnection.SYN_RCVD and segment.is_ack and \
                segment.ack == self.snd_nxt:
            self._become_established()
        if segment.is_ack:
            self._on_ack(segment)
        if segment.data:
            self._on_data(segment)
        if segment.fin:
            self._on_fin(segment)

    def _on_synack(self, segment: TCPSegment) -> None:
        if self.state != TCPConnection.SYN_SENT:
            return
        if segment.ack != self.snd_nxt:
            return
        self.irs = segment.seq
        self.rcv_nxt = segment.seq + 1
        self.snd_una = segment.ack
        self._become_established()
        self._emit(flags=_segment_flags("ACK"))

    def _become_established(self) -> None:
        self.state = TCPConnection.ESTABLISHED
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        self._cancel_timer()
        self._pump()

    # -------------------------------------------------------------- send engine
    def _usable_window(self) -> int:
        window = min(self.cwnd, float(self.peer_window))
        outstanding = self.snd_nxt - self.snd_una
        return max(0, int(window) - outstanding)

    def _pump(self) -> None:
        """Transmit as much queued data as the window allows."""
        if self.state not in (TCPConnection.ESTABLISHED, TCPConnection.CLOSE_WAIT):
            return
        sent_any = False
        while self._send_queue and self._usable_window() >= 1:
            chunk = self._send_queue[0]
            take = min(len(chunk), self.mss, max(self._usable_window(), 1))
            data, rest = chunk[:take], chunk[take:]
            if rest:
                self._send_queue[0] = rest
            else:
                self._send_queue.popleft()
            entry = _SendBufferEntry(seq=self.snd_nxt, data=data,
                                     sent_at=self.sim.now)
            self._inflight.append(entry)
            self._emit(flags=_segment_flags("ACK"), seq=entry.seq, data=data)
            self.snd_nxt += len(data)
            self.stats.incr("bytes_sent", len(data))
            sent_any = True
        if sent_any:
            self._arm_timer()

    def _wakeup_event(self) -> Event:
        if self._send_wakeup is None or self._send_wakeup.triggered:
            self._send_wakeup = self.sim.event()
        return self._send_wakeup

    def _fire_wakeup(self) -> None:
        if self._send_wakeup is not None and not self._send_wakeup.triggered:
            self._send_wakeup.succeed()

    # ---------------------------------------------------------------- ACK path
    def _on_ack(self, segment: TCPSegment) -> None:
        self.peer_window = segment.window
        ack = segment.ack
        if ack > self.snd_una:
            self._on_new_ack(ack, segment)
        elif ack == self.snd_una and self._inflight and not segment.data \
                and not segment.fin:
            self._on_dupack()
        self._pump()
        self._fire_wakeup()

    def _on_new_ack(self, ack: int, segment: TCPSegment) -> None:
        acked_bytes = ack - self.snd_una
        self.snd_una = ack
        self._dupacks = 0

        # RTT sampling (Karn: skip retransmitted segments).
        remaining: list[_SendBufferEntry] = []
        for entry in self._inflight:
            if entry.seq + len(entry.data) <= ack:
                if not entry.retransmitted:
                    self._update_rtt(self.sim.now - entry.sent_at)
            else:
                remaining.append(entry)
        self._inflight = remaining
        self.stats.incr("bytes_acked", acked_bytes)

        if ack < self._recovery_point and self._inflight:
            # Partial ACK during loss recovery: the next hole is now at
            # the front of the inflight list — retransmit it at once.
            self._retransmit_first()
        else:
            self._recovery_point = 0

        if self._in_fast_recovery:
            # Reno: deflate on the ACK of the recovery point.
            self.cwnd = self.ssthresh
            self._in_fast_recovery = ack < self._recovery_point
        elif self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)  # slow start
        else:
            self.cwnd += self.mss * self.mss / self.cwnd  # congestion avoidance
        self.cwnd = max(self.cwnd, float(self.mss))

        if self._inflight:
            self._arm_timer()
        else:
            self._cancel_timer()
        if self.state == TCPConnection.FIN_SENT and ack >= self.snd_nxt:
            self._finish_close()

    def _on_dupack(self) -> None:
        self._dupacks += 1
        self.stats.incr("dupacks")
        if self._in_fast_recovery:
            self.cwnd += self.mss  # inflate during recovery
            self._pump()
            return
        if self._dupacks >= DUPACK_THRESHOLD:
            flight = max(self.snd_nxt - self.snd_una, self.mss)
            self.ssthresh = max(flight / 2.0, 2.0 * self.mss)
            self.cwnd = self.ssthresh + DUPACK_THRESHOLD * self.mss
            self._in_fast_recovery = True
            self._recovery_point = self.snd_nxt
            self.stats.incr("fast_retransmits")
            self._retransmit_first()

    def _retransmit_first(self) -> None:
        if not self._inflight:
            return
        entry = self._inflight[0]
        entry.retransmitted = True
        entry.sent_at = self.sim.now
        self._emit(flags=_segment_flags("ACK"), seq=entry.seq, data=entry.data)
        self.stats.incr("retransmitted_segments")
        self._arm_timer()

    # ---------------------------------------------------------------- RTT/RTO
    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            alpha, beta = 1 / 8.0, 1 / 4.0
            self.rttvar = (1 - beta) * self.rttvar + beta * abs(self.srtt - sample)
            self.srtt = (1 - alpha) * self.srtt + alpha * sample
        self.rto = min(MAX_RTO, max(MIN_RTO, self.srtt + 4 * self.rttvar))

    def _arm_timer(self) -> None:
        # Lazy re-arm: almost every arm call merely *extends* the
        # deadline (each ACK restarts the clock), so instead of
        # cancelling and reallocating a kernel Timeout per segment we
        # record the true deadline and keep any pending timer that fires
        # no later than it.  An early fire re-checks the deadline in
        # _on_timer and re-arms once for the remainder — the retransmit
        # still happens at exactly ``now + rto`` virtual seconds.
        deadline = self.sim.now + self.rto
        self._rto_deadline = deadline
        if self._timer is not None:
            if self._timer_fires_at <= deadline:
                return
            # The deadline moved *earlier* (RTO shrank after an RTT
            # update); a late fire would delay the retransmit, so this
            # rare case really does replace the timer.
            self._timer.cancel()
        timer = Timeout(self.sim, self.rto)
        timer.callbacks.append(self._on_timer)
        self._timer = timer
        self._timer_fires_at = deadline

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timer(self, event: Timeout) -> None:
        if event is not self._timer:
            return  # stale fire; a rearm superseded this timer
        self._timer = None
        deadline = self._rto_deadline
        now = self.sim.now
        if now < deadline:
            # The deadline was pushed out while this timer was pending;
            # sleep the remainder instead of retransmitting early.
            timer = Timeout(self.sim, deadline - now)
            timer.callbacks.append(self._on_timer)
            self._timer = timer
            self._timer_fires_at = deadline
            return
        self._on_rto()

    def _on_rto(self) -> None:
        """Retransmission timeout: collapse the window, resend, back off."""
        if self.state == TCPConnection.SYN_SENT:
            self.stats.incr("syn_retransmits")
            self._emit(flags=_segment_flags("SYN"), seq=self.iss)
            self.rto = min(MAX_RTO, self.rto * 2)
            self._arm_timer()
            return
        if self.state == TCPConnection.SYN_RCVD:
            self._emit(flags=_segment_flags("SYN", "ACK"), seq=self.iss)
            self.rto = min(MAX_RTO, self.rto * 2)
            self._arm_timer()
            return
        if self.state == TCPConnection.FIN_SENT and not self._inflight:
            # Our FIN was lost; resend it.
            self.stats.incr("fin_retransmits")
            self._emit(flags=_segment_flags("FIN", "ACK"), seq=self.snd_nxt - 1)
            self.rto = min(MAX_RTO, self.rto * 2)
            self._arm_timer()
            return
        if not self._inflight:
            return
        self.stats.incr("timeouts")
        flight = max(self.snd_nxt - self.snd_una, self.mss)
        self.ssthresh = max(flight / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self._dupacks = 0
        self._in_fast_recovery = False
        self._recovery_point = self.snd_nxt
        self.rto = min(MAX_RTO, self.rto * 2)  # Karn backoff
        self._retransmit_first()

    # ------------------------------------------------------------ receive path
    def _on_data(self, segment: TCPSegment) -> None:
        seq, data = segment.seq, segment.data
        if seq == self.rcv_nxt:
            self.rcv_nxt += len(data)
            self._deliver(data)
            # Drain contiguous out-of-order segments.
            while self.rcv_nxt in self._reorder:
                buffered = self._reorder.pop(self.rcv_nxt)
                self.rcv_nxt += len(buffered)
                self._deliver(buffered)
        elif seq > self.rcv_nxt:
            self._reorder[seq] = data
            self.stats.incr("out_of_order")
        else:
            self.stats.incr("duplicate_data")
        # ACK everything (no delayed ACK): dupacks flow naturally on gaps.
        self._emit(flags=_segment_flags("ACK"))

    def _deliver(self, data: bytes) -> None:
        self.stats.incr("bytes_delivered", len(data))
        self._rx_stream.try_put(data)

    def _on_fin(self, segment: TCPSegment) -> None:
        if self.fin_received:
            self._emit(flags=_segment_flags("ACK"))
            return
        self.fin_received = True
        self.rcv_nxt = segment.seq + len(segment.data) + 1
        self._rx_stream.try_put(b"")  # EOF marker for readers
        self._emit(flags=_segment_flags("ACK"))
        if self.state == TCPConnection.ESTABLISHED:
            self.state = TCPConnection.CLOSE_WAIT
        elif self.state == TCPConnection.FIN_SENT:
            self._finish_close()

    def _finish_close(self) -> None:
        self.state = TCPConnection.CLOSED
        self._cancel_timer()
        if not self.closed_event.triggered:
            self.closed_event.succeed()
        self.stack._forget(self)

    # ------------------------------------------------------------------ mobile
    def signal_handoff_complete(self) -> None:
        """Caceres/Iftode fast retransmission trigger (see tcp_freeze).

        Called on the *receiving* endpoint right after a handoff: emits
        three duplicate ACKs so the fixed sender fast-retransmits
        immediately instead of idling until its (backed-off) RTO fires.
        """
        for _ in range(DUPACK_THRESHOLD):
            self._emit(flags=_segment_flags("ACK"))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TCPConnection {self.stack.node.name}:{self.local_port} -> "
            f"{self.remote_addr}:{self.remote_port} {self.state}>"
        )


class TCPListener:
    """A passive socket producing TCPConnection objects."""

    def __init__(self, stack: "TCPStack", port: int, mss: int):
        self.stack = stack
        self.port = port
        self.mss = mss
        self._backlog: Store = Store(stack.node.sim)

    def accept(self) -> Event:
        """Event yielding the next established TCPConnection."""
        return self._backlog.get()

    def close(self) -> None:
        self.stack._listeners.pop(self.port, None)


class TCPStack:
    """Per-node TCP: port table, connection demux, ISN generation."""

    def __init__(self, node: Node, mss: int = DEFAULT_MSS):
        if getattr(node, "_tcp_stack", None) is not None:
            raise RuntimeError(
                f"node {node.name} already has a TCP stack; share it instead"
            )
        node._tcp_stack = self
        self.node = node
        self.mss = mss
        self._listeners: dict[int, TCPListener] = {}
        self._connections: dict[tuple, TCPConnection] = {}
        self._ephemeral = itertools.count(49152)
        self._isn = itertools.count(1000, 64000)
        node.register_protocol(PROTO_TCP, self._on_packet)

    def next_isn(self) -> int:
        return next(self._isn)

    def listen(self, port: int, mss: Optional[int] = None) -> TCPListener:
        if port in self._listeners:
            raise RuntimeError(f"port {port} already listening on {self.node.name}")
        listener = TCPListener(self, port, mss or self.mss)
        self._listeners[port] = listener
        return listener

    def connect(self, remote_addr: IPAddress, remote_port: int,
                mss: Optional[int] = None) -> TCPConnection:
        """Begin an active open; wait on ``conn.established_event``."""
        local_port = next(self._ephemeral)
        conn = TCPConnection(
            self, local_port, remote_addr, remote_port, mss=mss or self.mss
        )
        key = (remote_addr, remote_port, local_port)
        self._connections[key] = conn
        conn.open_active()
        return conn

    def _key_for(self, packet: Packet, segment: TCPSegment) -> tuple:
        return (packet.src, segment.src_port, segment.dst_port)

    def _on_packet(self, node: Node, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            node.stats.incr("tcp_malformed")
            return
        key = self._key_for(packet, segment)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(segment, packet)
            return
        if segment.syn and not segment.is_ack:
            listener = self._listeners.get(segment.dst_port)
            if listener is None:
                node.stats.incr("tcp_conn_refused")
                return
            conn = TCPConnection(
                self, segment.dst_port, packet.src, segment.src_port,
                mss=listener.mss,
            )
            self._connections[key] = conn
            conn.open_passive_reply(segment)

            def hand_to_backlog(env, conn=conn, listener=listener):
                yield conn.established_event
                listener._backlog.try_put(conn)

            node.sim.spawn(hand_to_backlog(node.sim), name="tcp-accept")
            return
        node.stats.incr("tcp_no_connection")

    def _forget(self, conn: TCPConnection) -> None:
        key = (conn.remote_addr, conn.remote_port, conn.local_port)
        self._connections.pop(key, None)


def tcp_stack(node: Node, mss: int = DEFAULT_MSS) -> TCPStack:
    """The node's TCP stack, creating one on first use."""
    existing = getattr(node, "_tcp_stack", None)
    if existing is not None:
        return existing
    return TCPStack(node, mss=mss)
