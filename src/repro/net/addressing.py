"""IPv4-style addressing: addresses, subnets, and allocators.

Addresses are modelled as 32-bit integers with the familiar dotted-quad
rendering.  The stack only needs prefix matching and allocation, not the
full RFC corpus, but the semantics here are the real ones so Mobile IP's
"home network vs foreign network" logic behaves authentically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["IPAddress", "Subnet", "AddressAllocator"]


@dataclass(frozen=True, order=True)
class IPAddress:
    """A 32-bit network address."""

    value: int

    def __post_init__(self):
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"address out of 32-bit range: {self.value}")

    @staticmethod
    def parse(text: str) -> "IPAddress":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed address: {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return IPAddress(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"


@dataclass(frozen=True)
class Subnet:
    """A network prefix: base address + prefix length."""

    network: IPAddress
    prefix_len: int

    def __post_init__(self):
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if self.network.value & ~self.mask:
            raise ValueError(
                f"host bits set in network address {self.network}/{self.prefix_len}"
            )

    @staticmethod
    def parse(text: str) -> "Subnet":
        addr, _, plen = text.partition("/")
        if not plen:
            raise ValueError(f"missing prefix length in {text!r}")
        return Subnet(IPAddress.parse(addr), int(plen))

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    def contains(self, address: IPAddress) -> bool:
        return (address.value & self.mask) == self.network.value

    @property
    def size(self) -> int:
        return 1 << (32 - self.prefix_len)

    def hosts(self) -> Iterator[IPAddress]:
        """Usable host addresses (skips network and broadcast for /30 and wider)."""
        if self.prefix_len >= 31:
            for offset in range(self.size):
                yield IPAddress(self.network.value + offset)
            return
        for offset in range(1, self.size - 1):
            yield IPAddress(self.network.value + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"


class AddressAllocator:
    """Hands out unused host addresses from a subnet (a toy DHCP)."""

    def __init__(self, subnet: Subnet):
        self.subnet = subnet
        self._cursor = subnet.hosts()
        self._allocated: set[IPAddress] = set()

    def allocate(self) -> IPAddress:
        for address in self._cursor:
            if address not in self._allocated:
                self._allocated.add(address)
                return address
        raise RuntimeError(f"subnet {self.subnet} exhausted")

    def reserve(self, address: IPAddress) -> None:
        """Mark a specific address as in use (e.g. a router's)."""
        if not self.subnet.contains(address):
            raise ValueError(f"{address} not in {self.subnet}")
        self._allocated.add(address)

    def release(self, address: IPAddress) -> None:
        self._allocated.discard(address)
