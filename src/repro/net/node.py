"""Network nodes: interfaces, IP forwarding, protocol demux, topologies.

A :class:`Node` is anything with an IP stack — a desktop, a router, a
WAP gateway, a web server host, or (via subclassing in
:mod:`repro.devices`) a mobile station.  Nodes receive packets on
interfaces, deliver locally when the destination matches one of their
addresses, and otherwise forward using their routing table.

:class:`Network` is the topology container: it owns nodes and links,
allocates addresses, and recomputes static routes.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Counter, Simulator, Store, Trace
from .addressing import AddressAllocator, IPAddress, Subnet
from .link import Link
from .packet import PROTO_IPIP, Packet
from .routing import Route, RoutingTable, compute_static_routes

__all__ = ["Interface", "Node", "Network"]

ProtocolHandler = Callable[["Node", Packet], None]


class Interface:
    """A network attachment point with an address on a subnet."""

    def __init__(self, node: "Node", name: str,
                 address: Optional[IPAddress] = None,
                 subnet: Optional[Subnet] = None):
        self.node = node
        self.name = name
        self.address = address
        self.subnet = subnet
        self.link: Optional[Link] = None
        self.is_up = True

    def attach(self, link: Link) -> None:
        if self.link is not None:
            raise RuntimeError(f"interface {self} already attached")
        self.link = link
        link.attach(self)

    def detach(self) -> None:
        """Administratively detach (used for handoff simulations)."""
        self.is_up = False

    def reattach(self) -> None:
        self.is_up = True

    def peer(self) -> Optional["Interface"]:
        """The interface at the other end of the link, if any."""
        if self.link is None:
            return None
        return self.link.other_iface(self)

    def send(self, packet: Packet) -> bool:
        """Hand a packet to the attached medium."""
        if not self.is_up or self.link is None:
            self.node.stats.incr("iface_down_drops")
            return False
        return self.link.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the medium when a packet arrives here."""
        if self.is_up:
            self.node.enqueue_rx(packet, self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Interface {self.node.name}:{self.name} {self.address}>"


class Node:
    """An IP host/router."""

    def __init__(self, sim: Simulator, name: str, forwarding: bool = False):
        self.sim = sim
        self.name = name
        self.forwarding = forwarding
        self.interfaces: list[Interface] = []
        self._iface_by_name: dict[str, Interface] = {}
        self._primary_address: Optional[IPAddress] = None
        self.routing_table = RoutingTable()
        # Stub subnets this node claims reachability for (e.g. an access
        # point's wireless subnet); propagated by compute_static_routes.
        self.announced_subnets: list[Subnet] = []
        self.stats = Counter()
        self.trace = Trace(enabled=False)
        # Integer values of every owned address; kept in sync by
        # add_interface (interfaces are never removed and an interface
        # address never changes after construction).
        self._owned_values: set[int] = set()
        self._handlers: dict[str, ProtocolHandler] = {}
        self._rx: Store = Store(sim)
        # Hooks that see every packet before normal processing; used by
        # snoop agents and foreign agents.  A hook returning True consumes
        # the packet.
        self.rx_taps: list[Callable[[Packet, Interface], bool]] = []
        sim.spawn(self._dispatcher(), name=f"{name}-rx")

    # -- configuration -----------------------------------------------------
    def add_interface(self, name: str, address: Optional[IPAddress] = None,
                      subnet: Optional[Subnet] = None) -> Interface:
        iface = Interface(self, name, address=address, subnet=subnet)
        self.interfaces.append(iface)
        self._iface_by_name[name] = iface
        if address is not None:
            self._owned_values.add(address.value)
            # Interfaces are append-only and addresses immutable, so the
            # first address to arrive is the primary one forever.
            if self._primary_address is None:
                self._primary_address = address
        return iface

    def assign_address(self, address: IPAddress) -> Interface:
        """Give the node an address on a virtual (link-less) interface.

        Used for provisioning mobile stations: the address stays fixed
        while radio attachments come and go (the Mobile IP model).
        """
        iface = self.add_interface(
            name=f"lo{len(self.interfaces)}", address=address
        )
        return iface

    def iface(self, name: str) -> Interface:
        try:
            return self._iface_by_name[name]
        except KeyError:
            raise KeyError(
                f"no interface {name!r} on node {self.name}") from None

    def register_protocol(self, proto: str, handler: ProtocolHandler) -> None:
        """Install the upper-layer handler for a protocol tag."""
        self._handlers[proto] = handler

    @property
    def addresses(self) -> list[IPAddress]:
        return [i.address for i in self.interfaces if i.address is not None]

    def owns_address(self, address: IPAddress) -> bool:
        return address.value in self._owned_values

    @property
    def primary_address(self) -> IPAddress:
        address = self._primary_address
        if address is None:
            raise RuntimeError(f"node {self.name} has no address")
        return address

    # -- data path -----------------------------------------------------------
    def enqueue_rx(self, packet: Packet, iface: Interface) -> None:
        self._rx.try_put((packet, iface))

    def _dispatcher(self):
        while True:
            packet, iface = yield self._rx.get()
            self._receive(packet, iface)

    def _receive(self, packet: Packet, iface: Interface) -> None:
        packet.record_hop(self.name)
        if self.trace.enabled:
            self.trace.log(self.sim.now, "rx", node=self.name,
                           pkt=packet.packet_id, proto=packet.proto)
        for tap in list(self.rx_taps):
            if tap(packet, iface):
                return
        if self.owns_address(packet.dst):
            self._deliver_local(packet)
        elif self.forwarding:
            self.forward(packet)
        else:
            self.stats.incr("not_for_me_drops")

    def _deliver_local(self, packet: Packet) -> None:
        if packet.proto == PROTO_IPIP:
            inner = packet.decapsulate()
            self.stats.incr("decapsulated")
            # Re-process the inner datagram as if it had just arrived.
            if self.owns_address(inner.dst):
                self._deliver_local(inner)
            else:
                self.forward(inner, force=True)
            return
        handler = self._handlers.get(packet.proto)
        if handler is None:
            self.stats.incr("no_handler_drops")
            return
        self.stats.incr("delivered_local")
        handler(self, packet)

    def send_ip(self, packet: Packet) -> bool:
        """Originate a datagram from this node."""
        packet.created_at = packet.created_at or self.sim.now
        if self.owns_address(packet.dst):
            # Loopback delivery.
            self._deliver_local(packet)
            return True
        return self.forward(packet, originating=True)

    def forward(self, packet: Packet, originating: bool = False,
                force: bool = False) -> bool:
        """Route a packet toward its destination."""
        if not originating and not force:
            if not packet.decrement_ttl():
                self.stats.incr("ttl_drops")
                return False
        route = self.routing_table.lookup(packet.dst)
        if route is None:
            self.stats.incr("no_route_drops")
            return False
        iface = self._iface_by_name[route.iface_name]
        if self.trace.enabled:
            self.trace.log(self.sim.now, "tx", node=self.name,
                           pkt=packet.packet_id, via=iface.name)
        ok = iface.send(packet)
        if ok:
            self.stats.incr("forwarded")
        else:
            self.stats.incr("tx_drops")
        return ok


class Network:
    """Topology container: nodes, links, address allocation, routing."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: list[Node] = []
        self.links: list[Link] = []
        self._subnet_allocators: dict[Subnet, AddressAllocator] = {}
        self._names: set[str] = set()

    def add_node(self, name: str, forwarding: bool = False) -> Node:
        if name in self._names:
            raise ValueError(f"duplicate node name {name!r}")
        self._names.add(name)
        node = Node(self.sim, name, forwarding=forwarding)
        self.nodes.append(node)
        return node

    def adopt(self, node: Node) -> Node:
        """Register an externally-constructed node (e.g. a MobileStation)."""
        if node.name in self._names:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._names.add(node.name)
        self.nodes.append(node)
        return node

    def node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node {name!r}")

    def _allocator(self, subnet: Subnet) -> AddressAllocator:
        if subnet not in self._subnet_allocators:
            self._subnet_allocators[subnet] = AddressAllocator(subnet)
        return self._subnet_allocators[subnet]

    def connect(
        self,
        a: Node,
        b: Node,
        subnet: Subnet,
        bandwidth_bps: float = 10_000_000.0,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        loss_stream=None,
        queue_capacity: int = 64,
    ) -> Link:
        """Create a link between two nodes and address both ends."""
        allocator = self._allocator(subnet)
        link = Link(
            self.sim,
            name=f"{a.name}<->{b.name}",
            bandwidth_bps=bandwidth_bps,
            delay=delay,
            loss_rate=loss_rate,
            loss_stream=loss_stream,
            queue_capacity=queue_capacity,
        )
        for node in (a, b):
            iface = node.add_interface(
                name=f"eth{len(node.interfaces)}",
                address=allocator.allocate(),
                subnet=subnet,
            )
            iface.attach(link)
        self.links.append(link)
        return link

    def build_routes(self) -> None:
        """(Re)compute static shortest-path routes for every node."""
        compute_static_routes(self)

    def find_node_by_address(self, address: IPAddress) -> Optional[Node]:
        for node in self.nodes:
            if node.owns_address(address):
                return node
        return None
