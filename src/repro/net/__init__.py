"""Wired-network substrate: addressing, links, IP forwarding, UDP/TCP, DNS.

This package implements component (v) of the paper's model — the wired
network an MC system shares with an EC system — plus the transport
machinery that the mobile extensions in :mod:`repro.net.mobile` modify.
"""

from .addressing import AddressAllocator, IPAddress, Subnet
from .dns import DNS_PORT, DNSResolver, DNSServer, NameRegistry, ServiceEndpoint
from .ip import EchoReply, install_echo_responder, ping
from .link import Link
from .node import Interface, Network, Node
from .packet import PROTO_ICMP, PROTO_IPIP, PROTO_TCP, PROTO_UDP, Packet
from .routing import Route, RoutingTable, compute_static_routes
from .tcp import TCPConnection, TCPListener, TCPSegment, TCPStack, tcp_stack
from .udp import UDPSegment, UDPSocket, UDPStack, udp_stack

__all__ = [
    "AddressAllocator",
    "IPAddress",
    "Subnet",
    "DNS_PORT",
    "DNSResolver",
    "DNSServer",
    "NameRegistry",
    "ServiceEndpoint",
    "EchoReply",
    "install_echo_responder",
    "ping",
    "Link",
    "Interface",
    "Network",
    "Node",
    "PROTO_ICMP",
    "PROTO_IPIP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "Route",
    "RoutingTable",
    "compute_static_routes",
    "TCPConnection",
    "TCPListener",
    "TCPSegment",
    "TCPStack",
    "UDPSegment",
    "UDPSocket",
    "UDPStack",
    "tcp_stack",
    "udp_stack",
]
