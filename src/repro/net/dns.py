"""Name resolution: a small DNS.

Hosts in examples and benchmarks are addressed by name
("shop.example.com") rather than raw addresses.  Resolution is served
either from a local registry (zero-cost, the default) or over UDP from
a name-server node, which adds the realistic extra round trip that WAP
gateway requests pay.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Event
from .addressing import IPAddress
from .node import Node
from .udp import UDPStack

__all__ = ["NameRegistry", "DNSServer", "DNSResolver", "DNS_PORT"]

DNS_PORT = 53


class NameRegistry:
    """Authoritative name -> address map."""

    def __init__(self):
        self._records: dict[str, IPAddress] = {}

    def register(self, name: str, address: IPAddress) -> None:
        if not name:
            raise ValueError("empty DNS name")
        self._records[name.lower()] = address

    def lookup(self, name: str) -> Optional[IPAddress]:
        return self._records.get(name.lower())

    def unregister(self, name: str) -> None:
        self._records.pop(name.lower(), None)

    def __len__(self) -> int:
        return len(self._records)


class DNSServer:
    """Answers name queries over UDP from a registry."""

    def __init__(self, node: Node, registry: NameRegistry,
                 udp: Optional[UDPStack] = None):
        self.node = node
        self.registry = registry
        self.udp = udp or UDPStack(node)
        self._sock = self.udp.bind(DNS_PORT)
        node.sim.spawn(self._serve(), name=f"dns@{node.name}")

    def _serve(self):
        while True:
            query, src, src_port = yield self._sock.recv()
            answer = self.registry.lookup(str(query))
            self._sock.sendto(answer, src, src_port, data_size=32)


class DNSResolver:
    """Client-side resolver with a positive cache."""

    def __init__(self, node: Node, server_address: IPAddress,
                 udp: Optional[UDPStack] = None, timeout: float = 3.0):
        self.node = node
        self.server_address = server_address
        self.udp = udp or UDPStack(node)
        self.timeout = timeout
        self.cache: dict[str, IPAddress] = {}

    def resolve(self, name: str) -> Event:
        """Event yielding the IPAddress or None."""
        sim = self.node.sim
        result = sim.event()
        cached = self.cache.get(name.lower())
        if cached is not None:
            result.succeed(cached)
            return result

        def query(env):
            sock = self.udp.bind()
            try:
                sock.sendto(name, self.server_address, DNS_PORT, data_size=32)
                reply = yield sock.recv_with_timeout(self.timeout)
            finally:
                sock.close()
            if reply is None:
                result.succeed(None)
                return
            answer, _, _ = reply
            if answer is not None:
                self.cache[name.lower()] = answer
            result.succeed(answer)

        sim.spawn(query(sim), name="dns-resolve")
        return result
