"""Name resolution: a small DNS.

Hosts in examples and benchmarks are addressed by name
("shop.example.com") rather than raw addresses.  Resolution is served
either from a local registry (zero-cost, the default) or over UDP from
a name-server node, which adds the realistic extra round trip that WAP
gateway requests pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..opt import OPTIMIZATIONS
from ..sim import Event
from .addressing import IPAddress
from .node import Node
from .udp import UDPStack

__all__ = ["NameRegistry", "DNSServer", "DNSResolver", "ServiceEndpoint",
           "DNS_PORT", "DEFAULT_DNS_TTL"]

DNS_PORT = 53

# How long a resolver may serve a cached answer without revalidating.
DEFAULT_DNS_TTL = 30.0


@dataclass(frozen=True)
class ServiceEndpoint:
    """A named service's published (address, port) — SRV-record style."""

    address: IPAddress
    port: int


class NameRegistry:
    """Authoritative name -> address map.

    ``generation`` acts like an SOA serial: it is bumped on every
    register/unregister, and resolvers that hold a reference to their
    authority compare it to the generation they cached under — so a
    ``dns_blackout`` fault (which unregisters names for a window)
    implicitly flushes every such resolver cache.
    """

    def __init__(self):
        self._records: dict[str, IPAddress] = {}
        self._services: dict[str, ServiceEndpoint] = {}
        self.generation = 0

    def register(self, name: str, address: IPAddress) -> None:
        if not name:
            raise ValueError("empty DNS name")
        self._records[name.lower()] = address
        self.generation += 1

    def lookup(self, name: str) -> Optional[IPAddress]:
        return self._records.get(name.lower())

    def unregister(self, name: str) -> None:
        if self._records.pop(name.lower(), None) is not None:
            self.generation += 1

    # -- service (SRV-style) records ------------------------------------
    def register_service(self, name: str, address: IPAddress,
                         port: int) -> None:
        """Publish a named service endpoint (address *and* port).

        Topology builders register gateways here so clients derive
        endpoints — e.g. the standby gateway for failover — from the
        registry instead of hardcoding port arithmetic.
        """
        if not name:
            raise ValueError("empty service name")
        self._services[name.lower()] = ServiceEndpoint(address, int(port))
        self.generation += 1

    def lookup_service(self, name: str) -> Optional[ServiceEndpoint]:
        return self._services.get(name.lower())

    def unregister_service(self, name: str) -> None:
        if self._services.pop(name.lower(), None) is not None:
            self.generation += 1

    def __len__(self) -> int:
        return len(self._records)


class DNSServer:
    """Answers name queries over UDP from a registry."""

    def __init__(self, node: Node, registry: NameRegistry,
                 udp: Optional[UDPStack] = None):
        self.node = node
        self.registry = registry
        self.udp = udp or UDPStack(node)
        self._sock = self.udp.bind(DNS_PORT)
        node.sim.spawn(self._serve(), name=f"dns@{node.name}")

    def _serve(self):
        while True:
            query, src, src_port = yield self._sock.recv()
            answer = self.registry.lookup(str(query))
            self._sock.sendto(answer, src, src_port, data_size=32)


class DNSResolver:
    """Client-side resolver with a TTL'd positive cache.

    A cached answer is served only while all three hold: the
    ``dns_cache`` optimization flag is on, the entry is younger than
    ``ttl`` (virtual seconds), and — when the resolver knows its
    ``authority`` registry — the registry generation has not moved since
    the entry was cached.  The generation check is what keeps the cache
    honest under the ``dns_blackout`` fault injector, which edits the
    registry out from under every resolver.
    """

    def __init__(self, node: Node, server_address: IPAddress,
                 udp: Optional[UDPStack] = None, timeout: float = 3.0,
                 ttl: float = DEFAULT_DNS_TTL,
                 authority: Optional[NameRegistry] = None):
        if ttl < 0:
            raise ValueError(f"negative DNS ttl: {ttl}")
        self.node = node
        self.server_address = server_address
        self.udp = udp or UDPStack(node)
        self.timeout = timeout
        self.ttl = ttl
        self.authority = authority
        # name -> (address, expires_at, registry generation at store time)
        self.cache: dict[str, tuple[IPAddress, float, int]] = {}
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Drop every cached answer."""
        self.cache.clear()

    def _cached(self, key: str) -> Optional[IPAddress]:
        if not OPTIMIZATIONS.dns_cache:
            return None
        entry = self.cache.get(key)
        if entry is None:
            return None
        address, expires_at, generation = entry
        if self.node.sim.now >= expires_at:
            del self.cache[key]
            return None
        if (self.authority is not None
                and self.authority.generation != generation):
            del self.cache[key]
            return None
        return address

    def resolve(self, name: str) -> Event:
        """Event yielding the IPAddress or None."""
        sim = self.node.sim
        result = sim.event()
        key = name.lower()
        cached = self._cached(key)
        if cached is not None:
            self.hits += 1
            result.succeed(cached)
            return result
        self.misses += 1

        def query(env):
            sock = self.udp.bind()
            try:
                sock.sendto(name, self.server_address, DNS_PORT, data_size=32)
                reply = yield sock.recv_with_timeout(self.timeout)
            finally:
                sock.close()
            if reply is None:
                result.succeed(None)
                return
            answer, _, _ = reply
            if answer is not None:
                generation = (self.authority.generation
                              if self.authority is not None else 0)
                self.cache[key] = (answer, sim.now + self.ttl, generation)
            result.succeed(answer)

        sim.spawn(query(sim), name="dns-resolve")
        return result
