"""Point-to-point links with bandwidth, propagation delay, loss and queuing.

A :class:`Link` is full duplex: each direction has its own FIFO transmit
queue and its own transmitter process.  Serialization time is
``size * 8 / bandwidth``; after serialization the packet propagates for
``delay`` seconds and is handed to the remote interface's node.

Loss is Bernoulli per packet, drawn from a named random stream so runs
are reproducible.  A full transmit queue drops arriving packets
(tail-drop), which is what gives TCP its congestion signal.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional

from ..obs import end_span, start_span
from ..sim import Counter, RandomStream, Simulator, Store, Timeout
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Interface

__all__ = ["Link", "LinkEnd"]


class LinkEnd:
    """One direction of a link: queue + transmitter process."""

    def __init__(self, link: "Link", sim: Simulator, queue_capacity: int):
        self.link = link
        self.sim = sim
        self.queue: Store = Store(sim, capacity=queue_capacity)
        self.peer_iface: Optional["Interface"] = None
        sim.spawn(self._transmitter(), name=f"{link.name}-tx")

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission; False if tail-dropped."""
        accepted = self.queue.try_put(packet)
        if not accepted:
            self.link.stats.incr("queue_drops")
        return accepted

    def _transmitter(self):
        sim = self.sim
        while True:
            packet = yield self.queue.get()
            # Only packets that carry a TraceContext get a span; untraced
            # traffic must not seed root traces of its own.
            span = None
            if packet.trace is not None:
                span = start_span(
                    sim, f"{self.link.name}.tx", self.link.layer,
                    parent=packet.trace, bytes=packet.size,
                )
            attempts = 0
            while True:
                attempts += 1
                rate = self.link.transmit_rate(self)
                if rate <= 0:
                    self.link.stats.incr("no_signal_drops")
                    end_span(sim, span, dropped="no_signal")
                    break
                grant = self.link.request_airtime()
                if grant is not None:
                    yield grant
                yield sim.timeout(packet.size * 8 / rate)
                if grant is not None:
                    self.link.airtime.release(grant)
                if self.link.is_down:
                    self.link.stats.incr("down_drops")
                    end_span(sim, span, dropped="down")
                    break
                if self.link.frame_delivered(self, packet):
                    self.link.stats.incr("delivered")
                    self.link.stats.incr("bytes_delivered", packet.size)
                    # Propagation needs no process of its own: a bare
                    # timeout with a delivery callback arrives at exactly
                    # now + delay, without a generator spawn per packet.
                    Timeout(sim, self.link.delay).callbacks.append(
                        partial(self._arrive, packet, span))
                    break
                self.link.stats.incr("frame_errors")
                if attempts > self.link.retry_limit:
                    self.link.stats.incr("loss_drops")
                    end_span(sim, span, dropped="loss", attempts=attempts)
                    break

    def _arrive(self, packet: Packet, span, _event) -> None:
        if self.peer_iface is not None and not self.link.is_down:
            self.peer_iface.deliver(packet)
        end_span(self.sim, span)


class Link:
    """A full-duplex point-to-point link between two interfaces."""

    # Observability layer for link.tx spans; wireless subclasses override.
    layer = "wired"

    def __init__(
        self,
        sim: Simulator,
        name: str = "link",
        bandwidth_bps: float = 10_000_000.0,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        queue_capacity: int = 64,
        loss_stream: Optional[RandomStream] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate out of [0,1]: {loss_rate}")
        if loss_rate > 0 and loss_stream is None:
            raise ValueError("loss_rate > 0 requires a loss_stream")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.loss_rate = loss_rate
        self._loss_stream = loss_stream
        self.is_down = False
        self.stats = Counter()
        # Wired links are full duplex with no local retries; wireless
        # subclasses share one airtime resource and retry lost frames.
        self.airtime = None
        self.retry_limit = 0
        self.ends = (
            LinkEnd(self, sim, queue_capacity),
            LinkEnd(self, sim, queue_capacity),
        )
        self._attached: list[Optional["Interface"]] = [None, None]

    def attach(self, iface: "Interface") -> int:
        """Attach an interface to the next free end; returns the end index."""
        for idx in (0, 1):
            if self._attached[idx] is None:
                self._attached[idx] = iface
                # Traffic entering end idx exits to the *other* side's iface.
                self.ends[idx].peer_iface = None  # set when both attached
                self._rewire()
                return idx
        raise RuntimeError(f"link {self.name} already has two interfaces")

    def _rewire(self) -> None:
        self.ends[0].peer_iface = self._attached[1]
        self.ends[1].peer_iface = self._attached[0]

    def transmit(self, iface: "Interface", packet: Packet) -> bool:
        """Entry point used by an attached interface."""
        try:
            idx = self._attached.index(iface)
        except ValueError:
            raise RuntimeError(f"{iface} is not attached to link {self.name}")
        return self.ends[idx].enqueue(packet)

    # -- medium behaviour (overridden by wireless links) -----------------
    def request_airtime(self):
        """Acquire the shared medium, if any (None = dedicated medium).

        Wireless subclasses with QoS override this to pass a priority.
        """
        if self.airtime is None:
            return None
        return self.airtime.request()

    def transmit_rate(self, end: LinkEnd) -> float:
        """Bit rate for the next frame on this end (0 = no signal)."""
        return self.bandwidth_bps

    def frame_delivered(self, end: LinkEnd, packet: Packet) -> bool:
        """Whether one frame transmission attempt succeeds."""
        if self._loss_stream is not None and \
                self._loss_stream.chance(self.loss_rate):
            return False
        return True

    def other_iface(self, iface: "Interface") -> Optional["Interface"]:
        if iface is self._attached[0]:
            return self._attached[1]
        if iface is self._attached[1]:
            return self._attached[0]
        raise RuntimeError(f"{iface} is not attached to link {self.name}")

    # -- fault injection -------------------------------------------------
    def take_down(self) -> None:
        self.is_down = True

    def bring_up(self) -> None:
        self.is_down = False
