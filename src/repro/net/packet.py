"""Packet model shared by every layer of the stack.

A :class:`Packet` is an IP-like datagram: source/destination addresses,
a protocol tag, a payload (any Python object — usually a TCP/UDP
segment dataclass), a size in bytes and a TTL.  Tunnelling (used by
Mobile IP) wraps a whole packet as the payload of an outer packet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from .addressing import IPAddress

__all__ = ["Packet", "PROTO_TCP", "PROTO_UDP", "PROTO_IPIP", "PROTO_ICMP"]

PROTO_TCP = "tcp"
PROTO_UDP = "udp"
PROTO_IPIP = "ipip"  # IP-in-IP tunnel (Mobile IP)
PROTO_ICMP = "icmp"

_packet_ids = itertools.count(1)

IP_HEADER_BYTES = 20


@dataclass(slots=True)
class Packet:
    """An IP datagram.

    ``size`` is the on-the-wire size in bytes including headers; when
    not given it is computed as payload_size + 20 bytes of IP header.

    Slotted: packets are allocated per hop on every layer of the stack,
    and dropping the instance ``__dict__`` is free wall-clock.
    """

    src: IPAddress
    dst: IPAddress
    proto: str
    payload: Any = None
    payload_size: int = 0
    size: int = 0
    ttl: int = 64
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Bookkeeping for traces and for Mobile IP decapsulation checks.
    hops: list[str] = field(default_factory=list)
    created_at: float = 0.0
    # Observability: the TraceContext of the connection that emitted the
    # packet (None while tracing is off).  Purely observational — copy()
    # and encapsulate() preserve it, nothing else reads it.
    trace: Any = None

    def __post_init__(self):
        if self.payload_size < 0:
            raise ValueError(f"negative payload size: {self.payload_size}")
        if self.size == 0:
            self.size = self.payload_size + IP_HEADER_BYTES
        if self.ttl <= 0:
            raise ValueError(f"packet born dead: ttl={self.ttl}")

    def decrement_ttl(self) -> bool:
        """Consume one hop; returns False when the packet must be dropped."""
        self.ttl -= 1
        return self.ttl > 0

    def record_hop(self, node_name: str) -> None:
        self.hops.append(node_name)

    def encapsulate(self, outer_src: IPAddress, outer_dst: IPAddress) -> "Packet":
        """Wrap this packet in an IP-in-IP tunnel packet."""
        return Packet(
            src=outer_src,
            dst=outer_dst,
            proto=PROTO_IPIP,
            payload=self,
            payload_size=self.size,
            ttl=64,
            created_at=self.created_at,
            trace=self.trace,
        )

    def decapsulate(self) -> "Packet":
        """Unwrap a tunnel packet; returns the inner datagram."""
        if self.proto != PROTO_IPIP or not isinstance(self.payload, Packet):
            raise ValueError("decapsulate() on a non-tunnel packet")
        return self.payload

    def copy(self) -> "Packet":
        """A fresh packet with identical headers/payload but a new id."""
        return replace(
            self,
            packet_id=next(_packet_ids),
            hops=list(self.hops),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.proto} {self.size}B ttl={self.ttl}>"
        )
