"""CGI-style application programs.

"Various programming languages ... and the CGI for transferring
information between a Web server and a CGI program are necessary"
(paper §7).  A :class:`CGIProgram` is a Python callable mounted on a
path; it receives a :class:`CGIContext` (params, cookies, session,
database handle) and returns an :class:`HTTPResponse` — or is a
generator that yields simulation events (database queries, timeouts)
before returning one.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..sim import Counter
from .http import HTTPRequest, HTTPResponse
from .sessions import Session

__all__ = ["CGIContext", "CGIProgram", "CGIRegistry"]


@dataclass
class CGIContext:
    """Everything a server-side program can see for one request."""

    request: HTTPRequest
    params: dict
    session: Optional[Session] = None
    database: Any = None          # repro.db.Database when wired
    transactions: Any = None      # repro.db.TransactionManager when wired
    server: Any = None            # the WebServer, for cross-program state
    trace: Any = None             # TraceContext when the request is traced
    extra: dict = field(default_factory=dict)

    def param(self, name: str, default: str = "") -> str:
        return self.params.get(name, default)


class CGIProgram:
    """A mounted server-side program."""

    def __init__(self, path: str, handler: Callable, name: str = ""):
        if not path.startswith("/"):
            raise ValueError(f"CGI path must start with '/': {path!r}")
        self.path = path
        self.handler = handler
        self.name = name or getattr(handler, "__name__", path)
        self.stats = Counter()

    def run(self, context: CGIContext):
        """Generator yielding sim events; returns an HTTPResponse."""
        self.stats.incr("invocations")
        outcome = self.handler(context)
        if inspect.isgenerator(outcome):
            response = yield from outcome
        else:
            response = outcome
        if not isinstance(response, HTTPResponse):
            raise TypeError(
                f"program {self.name} returned {type(response).__name__}, "
                "expected HTTPResponse"
            )
        self.stats.incr(f"status_{response.status}")
        return response


class CGIRegistry:
    """Maps request paths to programs (exact match, then longest prefix)."""

    def __init__(self):
        self._programs: dict[str, CGIProgram] = {}

    def mount(self, path: str, handler: Callable, name: str = "") \
            -> CGIProgram:
        program = CGIProgram(path, handler, name=name)
        if path in self._programs:
            raise ValueError(f"path {path!r} already mounted")
        self._programs[path] = program
        return program

    def unmount(self, path: str) -> None:
        self._programs.pop(path, None)

    def resolve(self, path: str) -> Optional[CGIProgram]:
        if path in self._programs:
            return self._programs[path]
        best = None
        for mount_path, program in self._programs.items():
            if not mount_path.endswith("/"):
                continue
            if path.startswith(mount_path):
                if best is None or len(mount_path) > len(best.path):
                    best = program
        return best

    def paths(self) -> list[str]:
        return sorted(self._programs)
