"""Host-computer web tier (paper §7): HTTP, web server, CGI, sessions."""

from .cgi import CGIContext, CGIProgram, CGIRegistry
from .client import HTTPClient, http_get
from .http import (
    HTTPParseError,
    HTTPRequest,
    HTTPResponse,
    RequestParser,
    ResponseParser,
    STATUS_REASONS,
)
from .server import DEFAULT_HTTP_PORT, WebServer
from .sessions import SESSION_COOKIE, Session, SessionStore
from .templates import TemplateError, render

__all__ = [
    "CGIContext",
    "CGIProgram",
    "CGIRegistry",
    "HTTPClient",
    "http_get",
    "HTTPParseError",
    "HTTPRequest",
    "HTTPResponse",
    "RequestParser",
    "ResponseParser",
    "STATUS_REASONS",
    "DEFAULT_HTTP_PORT",
    "WebServer",
    "SESSION_COOKIE",
    "Session",
    "SessionStore",
    "TemplateError",
    "render",
]
