"""HTTP/1.0-subset messages and wire codec.

The host computer's web server (paper §7) and the WAP gateway both
speak this: request line + headers + optional body, one request per
connection by default ("Connection: keep-alive" supported for the
always-on i-mode path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qsl, quote, unquote, urlsplit

__all__ = ["HTTPRequest", "HTTPResponse", "HTTPParseError",
           "RequestParser", "ResponseParser", "STATUS_REASONS"]

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    302: "Found",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HTTPParseError(Exception):
    """Malformed HTTP on the wire."""


@dataclass
class HTTPRequest:
    method: str
    path: str
    headers: dict = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.0"
    # Observability metadata (a TraceContext), never serialized: the
    # server stamps it from the connection the request arrived on.
    trace: object = None

    def __post_init__(self):
        self.method = self.method.upper()
        self.headers = {k.lower(): v for k, v in self.headers.items()}

    @property
    def path_only(self) -> str:
        return urlsplit(self.path).path

    @property
    def query_params(self) -> dict:
        return dict(parse_qsl(urlsplit(self.path).query))

    @property
    def form_params(self) -> dict:
        content_type = self.headers.get("content-type", "")
        if "application/x-www-form-urlencoded" in content_type:
            return dict(parse_qsl(self.body.decode()))
        return {}

    @property
    def params(self) -> dict:
        merged = self.query_params
        merged.update(self.form_params)
        return merged

    @property
    def cookies(self) -> dict:
        header = self.headers.get("cookie", "")
        cookies = {}
        for part in header.split(";"):
            name, _, value = part.strip().partition("=")
            if name:
                cookies[name] = unquote(value)
        return cookies

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if self.body:
            headers["content-length"] = str(len(self.body))
        lines = [f"{self.method} {self.path} {self.version}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + self.body


@dataclass
class HTTPResponse:
    status: int = 200
    headers: dict = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.0"

    def __post_init__(self):
        self.headers = {k.lower(): v for k, v in self.headers.items()}
        if isinstance(self.body, str):
            self.body = self.body.encode()

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "application/octet-stream")

    def set_cookie(self, name: str, value: str) -> None:
        self.headers["set-cookie"] = f"{name}={quote(value)}"

    def encode(self) -> bytes:
        headers = dict(self.headers)
        headers["content-length"] = str(len(self.body))
        lines = [f"{self.version} {self.status} {self.reason}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + self.body

    @staticmethod
    def ok(body, content_type: str = "text/html") -> "HTTPResponse":
        return HTTPResponse(200, {"content-type": content_type}, body)

    @staticmethod
    def not_found(message: str = "not found") -> "HTTPResponse":
        return HTTPResponse(404, {"content-type": "text/plain"}, message)

    @staticmethod
    def error(message: str = "internal error") -> "HTTPResponse":
        return HTTPResponse(500, {"content-type": "text/plain"}, message)


class _MessageParser:
    """Shared incremental head+body parsing."""

    def __init__(self):
        self._buffer = b""
        self._head: Optional[tuple] = None

    def feed(self, data: bytes) -> list:
        self._buffer += data
        messages = []
        while True:
            message = self._try_parse()
            if message is None:
                return messages
            messages.append(message)

    def _try_parse(self):
        if self._head is None:
            end = self._buffer.find(b"\r\n\r\n")
            if end < 0:
                return None
            head_text = self._buffer[:end].decode("latin-1")
            self._buffer = self._buffer[end + 4:]
            lines = head_text.split("\r\n")
            headers = {}
            for line in lines[1:]:
                name, sep, value = line.partition(":")
                if not sep:
                    raise HTTPParseError(f"bad header line {line!r}")
                headers[name.strip().lower()] = value.strip()
            self._head = (lines[0], headers)
        first_line, headers = self._head
        length = int(headers.get("content-length", "0"))
        if len(self._buffer) < length:
            return None
        body = self._buffer[:length]
        self._buffer = self._buffer[length:]
        self._head = None
        return self._build(first_line, headers, body)

    def _build(self, first_line: str, headers: dict, body: bytes):
        raise NotImplementedError


class RequestParser(_MessageParser):
    """Feed bytes, get HTTPRequest objects."""

    def _build(self, first_line, headers, body):
        parts = first_line.split(" ")
        if len(parts) != 3:
            raise HTTPParseError(f"bad request line {first_line!r}")
        method, path, version = parts
        return HTTPRequest(method=method, path=path, headers=headers,
                           body=body, version=version)


class ResponseParser(_MessageParser):
    """Feed bytes, get HTTPResponse objects."""

    def _build(self, first_line, headers, body):
        parts = first_line.split(" ", 2)
        if len(parts) < 2:
            raise HTTPParseError(f"bad status line {first_line!r}")
        version, status = parts[0], parts[1]
        try:
            code = int(status)
        except ValueError:
            raise HTTPParseError(f"bad status {status!r}") from None
        return HTTPResponse(status=code, headers=headers, body=body,
                            version=version)
