"""The web server: component "Web servers" of the host computer (§7).

Serves static pages and CGI programs over TCP, with sessions and an
Apache-style worker pool (limited concurrency).  The three features
the paper explicitly credits Apache with are all here:

* "highly configurable error messages" — :meth:`WebServer.set_error_body`;
* "DBM-based authentication databases" — :meth:`WebServer.protect`
  (HTTP Basic auth against the host's :class:`~repro.security.auth.UserStore`);
* "content negotiation" — :meth:`WebServer.add_page` accepts multiple
  variants per path and serves the one matching the request's Accept
  header.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..db.server import TracedDatabaseClient
from ..net.node import Node
from ..net.tcp import TCPConnection, TCPStack, tcp_stack
from ..obs import ctx_of, end_span, start_span
from ..security.auth import AuthenticationError
from ..sim import Counter, Interrupt, Resource, SimulationError
from .cgi import CGIContext, CGIRegistry
from .http import HTTPParseError, HTTPRequest, HTTPResponse, RequestParser
from .sessions import SessionStore

__all__ = ["WebServer", "DEFAULT_HTTP_PORT"]

DEFAULT_HTTP_PORT = 80
REQUEST_SERVICE_TIME = 0.001  # static-content handling cost


class WebServer:
    """An HTTP server bound to a node."""

    def __init__(
        self,
        node: Node,
        port: int = DEFAULT_HTTP_PORT,
        tcp: Optional[TCPStack] = None,
        workers: int = 16,
        database=None,
        transactions=None,
    ):
        self.node = node
        self.sim = node.sim
        self.port = port
        self.tcp = tcp or tcp_stack(node)
        self.cgi = CGIRegistry()
        self.sessions = SessionStore(self.sim)
        self.database = database
        self.transactions = transactions
        # Host-side services (payment processor, user store, ...) that
        # application programs reach through ctx.server.services.
        self.services: dict = {}
        self.stats = Counter()
        # Apache-style access log: (time, client, method, path, status,
        # response bytes).
        self.access_log: list[tuple] = []
        self.workers = Resource(self.sim, capacity=workers)
        # path -> list of (content_type, body) variants, in registration
        # order (the first variant is the default).
        self._static: dict[str, list[tuple[str, bytes]]] = {}
        self._error_bodies: dict[int, bytes] = {}
        # path prefix -> realm name (HTTP Basic auth).
        self._protected: dict[str, str] = {}
        # Admission control (off unless enable_load_shedding is called):
        # when the worker pool is saturated and the queue has grown past
        # the backlog, new requests are shed with 503 + Retry-After
        # instead of waiting unboundedly.
        self._shed_backlog: Optional[int] = None
        self._shed_retry_after = 1.0
        self._shed_jitter = 0.0
        self._shed_stream = None
        self.is_down = False
        self._conns: list[TCPConnection] = []
        self._listener = self.tcp.listen(port)
        self.sim.spawn(self._accept_loop(), name=f"httpd@{node.name}")

    # -- content registration -----------------------------------------------
    def add_page(self, path: str, body, content_type: str = "text/html") \
            -> None:
        """Register a static page (or another variant of an existing one).

        Registering several content types for one path enables content
        negotiation: the served variant is chosen by the request's
        Accept header, defaulting to the first registered.
        """
        if isinstance(body, str):
            body = body.encode()
        variants = self._static.setdefault(path, [])
        variants[:] = [v for v in variants if v[0] != content_type]
        variants.append((content_type, body))

    def protect(self, path_prefix: str, realm: str = "restricted") -> None:
        """Require HTTP Basic credentials (from services['users']) below
        ``path_prefix`` — the paper's "DBM-based authentication
        databases" feature."""
        if "users" not in self.services:
            raise RuntimeError(
                "protect() needs a UserStore in services['users']"
            )
        self._protected[path_prefix] = realm

    def mount(self, path: str, handler: Callable, name: str = "") -> None:
        """Mount a CGI program."""
        self.cgi.mount(path, handler, name=name)

    def set_error_body(self, status: int, body) -> None:
        """Configure a custom error page (the Apache feature)."""
        if isinstance(body, str):
            body = body.encode()
        self._error_bodies[status] = body

    # -- resilience knobs ---------------------------------------------------
    def enable_load_shedding(self, backlog: int = 16,
                             retry_after: float = 1.0,
                             jitter: float = 0.0, stream=None) -> None:
        """Shed requests with 503 + Retry-After once ``backlog`` callers
        are already queued behind a saturated worker pool.

        ``retry_after`` is the base hint; the actual header scales with
        the live worker-queue depth (a deeper queue tells clients to
        stay away longer) and, when ``jitter`` > 0 and a seeded
        ``stream`` is supplied, is spread by ±``jitter`` so shed
        clients do not retry in lockstep and re-stampede.
        """
        if backlog < 0:
            raise ValueError(f"backlog must be >= 0, got {backlog}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self._shed_backlog = backlog
        self._shed_retry_after = retry_after
        self._shed_jitter = jitter
        self._shed_stream = stream

    def _shed_hint(self) -> float:
        """Depth-proportional Retry-After for a shed response."""
        depth = self.workers.queue_length
        hint = self._shed_retry_after * (
            1.0 + depth / (self._shed_backlog + 1.0))
        if self._shed_stream is not None and self._shed_jitter > 0:
            hint *= 1.0 + self._shed_jitter * (
                2.0 * self._shed_stream.random() - 1.0)
        return round(hint, 6)

    def crash(self) -> None:
        """Hard-stop the server: drop live connections, refuse new ones."""
        self.is_down = True
        self.stats.incr("crashes")
        for conn in list(self._conns):
            conn.close()
        self._conns.clear()

    def restart(self) -> None:
        self.is_down = False
        self.stats.incr("restarts")

    # -- serving ----------------------------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            if self.is_down:
                conn.close()
                continue
            self.stats.incr("connections")
            self._conns.append(conn)
            self.sim.spawn(self._serve_connection(conn), name="http-conn")

    def _forget(self, conn: TCPConnection) -> None:
        if conn in self._conns:
            self._conns.remove(conn)

    def _sendable(self, conn: TCPConnection) -> bool:
        """May the serve loop still answer on this connection?

        After a crash the connection was closed under us; sending on a
        FIN_SENT/CLOSED socket raises, so responses are dropped instead.
        """
        return not self.is_down and conn.state in (
            TCPConnection.ESTABLISHED, TCPConnection.CLOSE_WAIT)

    def _serve_connection(self, conn: TCPConnection):
        parser = RequestParser()
        while True:
            chunk = yield conn.recv()
            if chunk == b"":
                self._forget(conn)
                return
            try:
                requests = parser.feed(chunk)
            except HTTPParseError:
                self.stats.incr("parse_errors")
                if self._sendable(conn):
                    conn.send(self._finalize(HTTPResponse(
                        400, {"content-type": "text/plain"}, b"bad request"
                    )).encode())
                conn.close()
                self._forget(conn)
                return
            for request in requests:
                if self.sim.tracer is not None:
                    # The requester's context arrived as packet metadata
                    # and was stamped on the connection by TCP; hand it
                    # to the handler as request metadata.
                    request.trace = conn.trace
                if (self._shed_backlog is not None
                        and self.workers.available == 0
                        and self.workers.queue_length >= self._shed_backlog):
                    self.stats.incr("shed_requests")
                    response = HTTPResponse(
                        503,
                        {"content-type": "text/plain",
                         "retry-after": f"{self._shed_hint():g}"},
                        b"server overloaded",
                    )
                else:
                    worker = self.workers.request()
                    try:
                        yield worker
                        response = yield from self._handle(request)
                    except Interrupt:
                        # Crash/stall injection tore this worker down.
                        self._forget(conn)
                        return
                    finally:
                        if worker.triggered:
                            self.workers.release(worker)
                        else:
                            worker.cancel()
                if not self._sendable(conn):
                    self.stats.incr("dropped_responses")
                    self._forget(conn)
                    return
                keep_alive = (
                    request.headers.get("connection", "").lower()
                    == "keep-alive"
                )
                if keep_alive:
                    response.headers["connection"] = "keep-alive"
                conn.send(self._finalize(response).encode())
                self.stats.incr("requests")
                self.stats.incr(f"status_{response.status}")
                self.access_log.append((
                    self.sim.now, str(conn.remote_addr), request.method,
                    request.path, response.status, len(response.body),
                ))
                if not keep_alive:
                    conn.close()
                    self._forget(conn)
                    return

    def _handle(self, request: HTTPRequest):
        yield self.sim.timeout(REQUEST_SERVICE_TIME)
        path = request.path_only
        span = None
        if self.sim.tracer is not None and request.trace is not None:
            # Join the requester's trace; untraced requests get no
            # span so they don't seed root traces of their own.
            span = start_span(self.sim, "web.handle", "web",
                              parent=request.trace, method=request.method,
                              path=path)
        try:
            response = yield from self._dispatch(request, path, span)
        finally:
            end_span(self.sim, span)
        return response

    def _dispatch(self, request: HTTPRequest, path: str, span):
        denied = self._check_authorization(request, path)
        if denied is not None:
            return denied

        variants = self._static.get(path)
        if variants is not None:
            content_type, body = _negotiate(
                variants, request.headers.get("accept", ""))
            return HTTPResponse.ok(body, content_type)

        program = self.cgi.resolve(path)
        if program is None:
            return HTTPResponse.not_found(f"no resource at {path}")

        session, is_new = self.sessions.resolve(request)
        cgi_span = None
        if span is not None:
            cgi_span = start_span(self.sim, "web.cgi", "web", parent=span,
                                  program=program.name)
        database = self.database
        trace = ctx_of(cgi_span)
        if trace is not None and database is not None:
            # Per-request wrapper: the shared client cannot carry a
            # "current trace" without racing across concurrent requests.
            database = TracedDatabaseClient(database, trace)
        context = CGIContext(
            request=request,
            params=request.params,
            session=session,
            database=database,
            transactions=self.transactions,
            server=self,
            trace=trace,
        )
        try:
            response = yield from program.run(context)
        except (Interrupt, SimulationError):
            # Kernel control flow is never a CGI failure; let it
            # propagate to the event loop.
            raise
        except Exception as exc:  # repro: noqa[broad-except] CGI barrier
            # Any program error becomes a 500 for the client.
            self.stats.incr("program_errors")
            response = HTTPResponse.error(f"{type(exc).__name__}: {exc}")
        finally:
            end_span(self.sim, cgi_span)
        if is_new:
            self.sessions.attach(response, session)
        return response

    def _check_authorization(self, request: HTTPRequest, path: str):
        """None when allowed; a 401 response when credentials fail."""
        realm = None
        for prefix, prefix_realm in self._protected.items():
            if path.startswith(prefix):
                realm = prefix_realm
                break
        if realm is None:
            return None
        header = request.headers.get("authorization", "")
        if header.lower().startswith("basic "):
            import base64
            import binascii
            try:
                decoded = base64.b64decode(header[6:]).decode()
                username, _, password = decoded.partition(":")
                self.services["users"].verify(username, password)
                return None
            except (Interrupt, SimulationError):
                raise
            except (AuthenticationError, UnicodeDecodeError,
                    binascii.Error, ValueError):
                # Malformed base64, undecodable bytes or bad
                # credentials all mean the same thing: challenge again.
                pass
        self.stats.incr("auth_failures")
        return HTTPResponse(
            401,
            {"content-type": "text/plain",
             "www-authenticate": f'Basic realm="{realm}"'},
            b"authentication required",
        )

    def _finalize(self, response: HTTPResponse) -> HTTPResponse:
        custom = self._error_bodies.get(response.status)
        if custom is not None and response.status >= 400:
            response.body = custom
        response.headers.setdefault("server", "repro-httpd/1.0")
        return response


def _negotiate(variants: list[tuple[str, bytes]], accept: str) \
        -> tuple[str, bytes]:
    """Pick the variant best matching an Accept header.

    Minimal semantics: exact type match wins in the order listed by the
    client; ``type/*`` and ``*/*`` match anything of that family; no
    match (or no header) falls back to the first registered variant.
    """
    if accept:
        wanted = [part.split(";")[0].strip().lower()
                  for part in accept.split(",") if part.strip()]
        for want in wanted:
            for content_type, body in variants:
                have = content_type.lower()
                if want == have:
                    return content_type, body
                if want == "*/*":
                    return variants[0][0], variants[0][1]
                if want.endswith("/*") and \
                        have.startswith(want[:-1]):
                    return content_type, body
    return variants[0][0], variants[0][1]
