"""A small HTTP client used by gateways, browsers-by-proxy and tests."""

from __future__ import annotations

from typing import Optional

from ..net.addressing import IPAddress
from ..net.node import Node
from ..net.tcp import TCPStack, tcp_stack
from ..sim import Event
from .http import HTTPRequest, HTTPResponse, ResponseParser

__all__ = ["HTTPClient", "http_get"]


class HTTPClient:
    """One-request-per-connection HTTP client bound to a node."""

    def __init__(self, node: Node, tcp: Optional[TCPStack] = None):
        self.node = node
        self.sim = node.sim
        self.tcp = tcp or tcp_stack(node)

    def request(self, server: IPAddress, req: HTTPRequest,
                port: int = 80, timeout: float = 30.0, trace=None) -> Event:
        """Event yielding the HTTPResponse, or None on timeout.

        ``trace`` (a TraceContext) propagates observability context: it
        is stamped on the connection, rides every packet as metadata
        (zero wire bytes — tracing must not perturb what it measures),
        and the server recovers it from the arriving segments.
        """
        result = self.sim.event()

        def exchange(env):
            conn = self.tcp.connect(server, port)
            conn.trace = trace
            expiry = env.timeout(timeout)
            race = yield env.any_of([conn.established_event, expiry])
            if conn.established_event not in race:
                result.succeed(None)
                return
            conn.send(req.encode())
            parser = ResponseParser()
            deadline = env.timeout(timeout)
            while True:
                chunk_ev = conn.recv()
                got = yield env.any_of([chunk_ev, deadline])
                if chunk_ev not in got:
                    result.succeed(None)
                    return
                chunk = got[chunk_ev]
                if chunk == b"":
                    result.succeed(None)
                    return
                responses = parser.feed(chunk)
                if responses:
                    conn.close()
                    result.succeed(responses[0])
                    return

        self.sim.spawn(exchange(self.sim), name="http-client")
        return result

    def get(self, server: IPAddress, path: str, port: int = 80,
            headers: Optional[dict] = None, timeout: float = 30.0,
            trace=None) -> Event:
        req = HTTPRequest("GET", path, headers=headers or {})
        return self.request(server, req, port=port, timeout=timeout,
                            trace=trace)

    def post(self, server: IPAddress, path: str, body: bytes,
             content_type: str = "application/x-www-form-urlencoded",
             port: int = 80, headers: Optional[dict] = None,
             timeout: float = 30.0, trace=None) -> Event:
        merged = dict(headers or {})
        merged["content-type"] = content_type
        req = HTTPRequest("POST", path, headers=merged, body=body)
        return self.request(server, req, port=port, timeout=timeout,
                            trace=trace)


def http_get(node: Node, server: IPAddress, path: str, port: int = 80,
             headers: Optional[dict] = None) -> Event:
    """Convenience one-shot GET (creates/reuses the node's TCP stack)."""
    return HTTPClient(node).get(server, path, port=port, headers=headers)
