"""Tiny server-side template language for application programs.

Two constructs cover everything the content handlers need:

* ``{{ expression }}`` — substitution; dotted access digs into dicts
  and attributes, missing values render empty;
* ``{% for item in items %} ... {% endfor %}`` — iteration (nestable).

Values are HTML/WML-escaped by default; suffix the expression with
``| raw`` to bypass.
"""

from __future__ import annotations

from typing import Any

__all__ = ["render", "TemplateError"]


class TemplateError(Exception):
    """Malformed template (unclosed tags, bad for-syntax)."""


def render(template: str, context: dict) -> str:
    """Render ``template`` against ``context``."""
    nodes, remainder = _parse(template, 0, end_tag=None)
    if remainder != len(template):
        raise TemplateError("unexpected trailing endfor")
    return "".join(_emit(node, context) for node in nodes)


def _escape(value: str) -> str:
    return (value.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _lookup(expr: str, context: dict) -> Any:
    value: Any = context
    for part in expr.split("."):
        if isinstance(value, dict):
            value = value.get(part)
        else:
            value = getattr(value, part, None)
        if value is None:
            return None
    return value


def _parse(text: str, pos: int, end_tag):
    """Parse until ``end_tag`` ({% endfor %}) or end of text."""
    nodes: list = []
    while pos < len(text):
        brace = text.find("{", pos)
        if brace < 0:
            if end_tag is not None:
                raise TemplateError(f"missing {{% {end_tag} %}}")
            nodes.append(("text", text[pos:]))
            return nodes, len(text)
        if brace > pos:
            nodes.append(("text", text[pos:brace]))
            pos = brace
        if text.startswith("{{", pos):
            close = text.find("}}", pos)
            if close < 0:
                raise TemplateError("unclosed {{ ... }}")
            nodes.append(("var", text[pos + 2: close].strip()))
            pos = close + 2
        elif text.startswith("{%", pos):
            close = text.find("%}", pos)
            if close < 0:
                raise TemplateError("unclosed {% ... %}")
            tag = text[pos + 2: close].strip()
            pos = close + 2
            if tag == "endfor":
                if end_tag != "endfor":
                    raise TemplateError("endfor without for")
                return nodes, pos
            if tag.startswith("for "):
                parts = tag.split()
                if len(parts) != 4 or parts[2] != "in":
                    raise TemplateError(f"bad for syntax: {tag!r}")
                var_name, iterable_expr = parts[1], parts[3]
                body, pos = _parse(text, pos, end_tag="endfor")
                nodes.append(("for", var_name, iterable_expr, body))
            else:
                raise TemplateError(f"unknown tag {tag!r}")
        else:
            nodes.append(("text", "{"))
            pos += 1
    if end_tag is not None:
        raise TemplateError(f"missing {{% {end_tag} %}}")
    return nodes, pos


def _emit(node, context: dict) -> str:
    kind = node[0]
    if kind == "text":
        return node[1]
    if kind == "var":
        expr = node[1]
        raw = False
        if expr.endswith("| raw"):
            raw = True
            expr = expr[: -len("| raw")].strip()
        elif expr.endswith("|raw"):
            raw = True
            expr = expr[: -len("|raw")].strip()
        value = _lookup(expr, context)
        if value is None:
            return ""
        text = str(value)
        return text if raw else _escape(text)
    if kind == "for":
        _, var_name, iterable_expr, body = node
        iterable = _lookup(iterable_expr, context) or []
        chunks = []
        for item in iterable:
            scoped = dict(context)
            scoped[var_name] = item
            chunks.append("".join(_emit(child, scoped) for child in body))
        return "".join(chunks)
    raise TemplateError(f"unknown node {kind!r}")  # pragma: no cover
