"""Cookie-backed server-side sessions.

"Most of the mobile commerce application programs reside in this
component, except for some client-side programs such as cookies" — the
host keeps the state, the device carries only the session cookie.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import Simulator
from .http import HTTPRequest, HTTPResponse

__all__ = ["Session", "SessionStore", "SESSION_COOKIE"]

SESSION_COOKIE = "msid"


@dataclass
class Session:
    session_id: str
    created_at: float
    last_seen: float
    data: dict = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def __setitem__(self, key: str, value: Any) -> None:
        self.data[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __contains__(self, key: str) -> bool:
        return key in self.data


class SessionStore:
    """Creates, resolves and expires sessions."""

    def __init__(self, sim: Simulator, ttl: float = 1800.0):
        self.sim = sim
        self.ttl = ttl
        self._sessions: dict[str, Session] = {}
        # Store-local counter: a module-level one made session ids depend
        # on how many stores had run earlier in the process, breaking
        # run-to-run determinism.
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._sessions)

    def _new_id(self) -> str:
        seed = f"{next(self._counter)}:{self.sim.now}"
        return hashlib.sha256(seed.encode()).hexdigest()[:16]

    def create(self) -> Session:
        session = Session(
            session_id=self._new_id(),
            created_at=self.sim.now,
            last_seen=self.sim.now,
        )
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> Optional[Session]:
        session = self._sessions.get(session_id)
        if session is None:
            return None
        if self.sim.now - session.last_seen > self.ttl:
            del self._sessions[session.session_id]
            return None
        session.last_seen = self.sim.now
        return session

    def destroy(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    # -- HTTP integration -------------------------------------------------
    def resolve(self, request: HTTPRequest) -> tuple[Session, bool]:
        """Session for the request's cookie; (session, is_new)."""
        session_id = request.cookies.get(SESSION_COOKIE)
        if session_id:
            session = self.get(session_id)
            if session is not None:
                return session, False
        return self.create(), True

    def attach(self, response: HTTPResponse, session: Session) -> None:
        response.set_cookie(SESSION_COOKIE, session.session_id)
