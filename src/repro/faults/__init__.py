"""Deterministic chaos engineering for the simulated commerce system.

Fault injection that is exactly as reproducible as the simulation it
attacks.  A :class:`FaultPlan` schedules faults from the taxonomy in
:data:`FAULT_KINDS` — link flaps, wireless loss windows, gateway and
web-server crashes, worker stalls, DB lock stalls, DNS blackouts,
battery drain, memory pressure — either declaratively or as a seeded
random process.  The :class:`FaultEngine` executes the plan on the sim
clock, emitting a ``fault.<kind>`` span per injection; with an empty
plan it spawns nothing and perturbs nothing.

:func:`run_chaos` ties it together: one named scenario against a full
mobile commerce system with the :mod:`repro.resilience` policies on or
off, reported as deterministic JSON.
"""

from .chaos import SCENARIOS, percentile, report_json, run_chaos, scenario_plan
from .engine import FaultEngine
from .injectors import INJECTORS, links_for, radio_links_for, stations_for
from .plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultEngine",
    "INJECTORS",
    "links_for",
    "radio_links_for",
    "stations_for",
    "SCENARIOS",
    "scenario_plan",
    "run_chaos",
    "report_json",
    "percentile",
]
