"""Fault injectors: one generator per fault kind.

Each injector is a generator driven by the
:class:`~repro.faults.engine.FaultEngine` inside its own process.  It
applies the fault to the built system, holds it for ``spec.duration``
sim-seconds, and restores the pre-fault state on the way out — always
through the components' public fault hooks (``take_down``/``bring_up``,
``crash``/``restart``, lock acquisition), never by monkey-patching
behaviour, so a faulted run exercises exactly the code a healthy run
does.
"""

from __future__ import annotations

from ..db.transactions import DeadlockError

__all__ = [
    "INJECTORS",
    "links_for",
    "radio_links_for",
    "stations_for",
    "gateways_for",
    "inject_link_flap",
    "inject_wireless_loss",
    "inject_gateway_crash",
    "inject_server_stall",
    "inject_server_crash",
    "inject_db_stall",
    "inject_dns_blackout",
    "inject_battery_drain",
    "inject_memory_pressure",
]


# ------------------------------------------------------------- selectors
def links_for(system, target: str = ""):
    """All links (wired + live radio bearers) matching a name substring."""
    links = list(system.network.links)
    for handle in getattr(system, "stations", []):
        attachment = handle.attachment
        link = getattr(attachment, "link", None)
        if link is not None and link not in links:
            links.append(link)
    if target:
        links = [link for link in links if target in link.name]
    return links


def radio_links_for(system, target: str = ""):
    """Only the wireless bearer links (layer == "wireless")."""
    return [link for link in links_for(system, target)
            if getattr(link, "layer", "wired") == "wireless"]


def stations_for(system, target: str = ""):
    stations = [handle.station for handle in getattr(system, "stations", [])]
    if target:
        stations = [s for s in stations if target in s.name]
    return stations


# ------------------------------------------------------------- injectors
def inject_link_flap(system, spec):
    """Take matching links down, bring them back after the window."""
    links = links_for(system, spec.target)
    downed = [link for link in links if not link.is_down]
    for link in downed:
        link.take_down()
    try:
        yield system.sim.timeout(spec.duration)
    finally:
        for link in downed:
            link.bring_up()


def inject_wireless_loss(system, spec):
    """Elevated frame-loss window on the radio links.

    ``magnitude`` is the loss probability during the window.  Links
    built without a loss stream get a seeded one for the window (named
    by the spec's start time, so it is reproducible), restored after.
    """
    links = radio_links_for(system, spec.target)
    loss = min(1.0, spec.magnitude)
    saved = []
    for index, link in enumerate(links):
        saved.append((link, link.loss_rate, link._loss_stream))
        if link._loss_stream is None:
            link._loss_stream = system.seeds.stream(
                f"fault-loss-{spec.at:g}-{index}")
        link.loss_rate = loss
    try:
        yield system.sim.timeout(spec.duration)
    finally:
        for link, rate, stream in saved:
            link.loss_rate = rate
            link._loss_stream = stream


def gateways_for(system, target: str = "", at: float = 0.0):
    """Resolve a gateway-crash member selector to gateway objects.

    * ``""`` / ``"primary"`` — the primary gateway (classic behaviour);
    * ``"standby"`` — the hot standby, when one exists;
    * ``"member:<i>"`` — fleet member with index ``i``;
    * ``"canary"`` — every active v2 (canary) fleet member;
    * ``"random-seeded"`` — one active fleet member drawn from a seeded
      stream keyed by ``at`` (the spec's start time), so independent
      crashes in one plan pick independently but reproducibly.
    """
    fleet = getattr(system, "fleet", None)
    if target in ("", "primary"):
        return [system.gateway] if system.gateway is not None else []
    if target == "standby":
        return ([system.standby_gateway]
                if system.standby_gateway is not None else [])
    if fleet is None:
        return []
    if target.startswith("member:"):
        index = int(target.split(":", 1)[1])
        return [m.gateway for m in fleet.members.values()
                if m.index == index and m.state == "active"]
    if target == "canary":
        return [m.gateway for m in fleet.members.values()
                if m.version == "v2" and m.state == "active"]
    if target == "random-seeded":
        active = fleet.active_members()
        if not active:
            return []
        stream = system.seeds.stream(f"fault-gateway-{at:g}")
        return [stream.choice(active).gateway]
    raise ValueError(f"unknown gateway_crash target {target!r}")


def inject_gateway_crash(system, spec):
    """Crash the selected middleware gateway(s) for the window.

    Overlapping windows keep the pre-fleet semantics: ``crash`` and
    ``restart`` are idempotent, and whichever window ends first brings
    the gateway back.
    """
    gateways = gateways_for(system, spec.target, at=spec.at)
    if not gateways:
        return
    for gateway in gateways:
        gateway.crash()
    try:
        yield system.sim.timeout(spec.duration)
    finally:
        for gateway in gateways:
            gateway.restart()


def inject_server_stall(system, spec):
    """Wedge every web-server worker for the window (pool exhausted)."""
    server = system.host.web_server
    grants = [server.workers.request()
              for _ in range(server.workers.capacity)]
    try:
        for grant in grants:
            yield grant
        yield system.sim.timeout(spec.duration)
    finally:
        for grant in grants:
            if grant.triggered:
                server.workers.release(grant)
            else:
                grant.cancel()


def inject_server_crash(system, spec):
    server = system.host.web_server
    server.crash()
    try:
        yield system.sim.timeout(spec.duration)
    finally:
        server.restart()


def inject_db_stall(system, spec):
    """Hold an exclusive lock on a table (default shop_items).

    Every query path acquires table locks, so catalog reads stall
    behind this until it releases or their lock timeout fires.
    """
    table = spec.target or "shop_items"
    manager = system.host.db_server.manager
    txn = manager.begin()
    try:
        yield manager.acquire(txn, table, True)
        yield system.sim.timeout(spec.duration)
    except DeadlockError:
        # Could not get the lock inside the lock timeout: the stall
        # window simply does not happen.
        pass
    finally:
        txn.rollback()


def inject_dns_blackout(system, spec):
    """Remove DNS records for the window (target = one name, or all)."""
    registry = system.registry
    if spec.target:
        names = [spec.target.lower()]
    else:
        names = list(registry._records)
    saved = {}
    for name in names:
        address = registry.lookup(name)
        if address is not None:
            saved[name] = address
            registry.unregister(name)
    try:
        yield system.sim.timeout(spec.duration)
    finally:
        for name, address in saved.items():
            registry.register(name, address)


def inject_battery_drain(system, spec):
    """Instantly drain ``magnitude`` of each matching station's battery.

    Irreversible (batteries don't un-drain); the one injector that is
    not restored after its window.
    """
    for station in stations_for(system, spec.target):
        battery = station.battery
        battery.charge = max(0.0,
                             battery.charge - spec.magnitude
                             * battery.capacity)
    return
    yield  # pragma: no cover - keeps this an (empty) generator


def inject_memory_pressure(system, spec):
    """Allocate ``magnitude`` of each station's free RAM for the window."""
    tag = f"fault-mem-{spec.at:g}"
    held = []
    for station in stations_for(system, spec.target):
        ballast = int(station.memory.free_kb * min(1.0, spec.magnitude))
        if ballast <= 0:
            continue
        station.memory.allocate(tag, ballast)
        held.append(station)
    try:
        yield system.sim.timeout(spec.duration)
    finally:
        for station in held:
            station.memory.free(tag)


INJECTORS = {
    "link_flap": inject_link_flap,
    "wireless_loss": inject_wireless_loss,
    "gateway_crash": inject_gateway_crash,
    "server_stall": inject_server_stall,
    "server_crash": inject_server_crash,
    "db_stall": inject_db_stall,
    "dns_blackout": inject_dns_blackout,
    "battery_drain": inject_battery_drain,
    "memory_pressure": inject_memory_pressure,
}
