"""The chaos engine: drives a :class:`FaultPlan` against a built system.

One simulation process per scheduled fault: sleep until ``spec.at``,
emit a ``fault.<kind>`` span, run the kind's injector, count it.  The
engine holds no hidden state and consumes no randomness of its own —
with an empty plan it spawns nothing, so a run with a zero-fault
engine is event-for-event identical to one without the engine at all.
"""

from __future__ import annotations

from ..obs import end_span, start_span
from ..sim import Counter
from .injectors import INJECTORS
from .plan import FaultPlan

__all__ = ["FaultEngine"]


class FaultEngine:
    """Schedules and executes a fault plan on a built system."""

    def __init__(self, system, plan: FaultPlan, metrics=None):
        self.system = system
        self.plan = plan
        self.metrics = metrics
        self.stats = Counter()
        self._started = False

    def start(self) -> "FaultEngine":
        """Spawn one driver process per fault.  Call once, before run()."""
        if self._started:
            raise RuntimeError("FaultEngine.start() called twice")
        # Written once, before the clock starts; drivers only read it.
        self._started = True  # repro: noqa[shared-state]
        self.plan.validate()
        for index, spec in enumerate(self.plan.ordered()):
            self.system.sim.spawn(
                self._drive(spec),
                name=f"fault-{index}-{spec.kind}",
            )
        return self

    def _drive(self, spec):
        sim = self.system.sim
        if spec.at > 0:
            yield sim.timeout(spec.at)
        span = start_span(sim, f"fault.{spec.kind}", "fault",
                          target=spec.target, duration=spec.duration,
                          magnitude=spec.magnitude)
        # Counter increments commute across driver processes.
        self.stats.incr("injected")  # repro: noqa[shared-state]
        self.stats.incr(f"injected_{spec.kind}")
        if self.metrics is not None:
            self.metrics.incr("faults_injected", spec.kind)  # repro: noqa[shared-state]
        try:
            yield from INJECTORS[spec.kind](self.system, spec)
        finally:
            end_span(sim, span)
