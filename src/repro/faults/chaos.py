"""Named chaos scenarios and the end-to-end chaos runner.

:func:`run_chaos` builds a complete mobile commerce system (optionally
with the resilience policies on), mounts the commerce application,
runs a fleet of shoppers while a :class:`FaultEngine` executes the
scenario's fault plan, and returns a deterministic JSON-able report —
success rate, latency percentiles, retry/failover/breaker/shedding
counters, and the plan itself.  Everything derives from the seed and
the sim clock, so the same arguments produce a byte-identical report.
"""

from __future__ import annotations

import dataclasses
import json

from ..apps import CommerceApp
from ..core import MCSystemBuilder, TransactionEngine
from ..fleet import fleet_report
from ..resilience import ResilienceConfig
from .engine import FaultEngine
from .plan import FaultPlan

__all__ = ["SCENARIOS", "FLEET_SCENARIOS", "scenario_plan", "run_chaos",
           "build_chaos_scenario", "chaos_report", "report_json",
           "percentile"]

DEFAULT_DEVICE = "Nokia 9290 Communicator"


# ------------------------------------------------------------- scenarios
def _flaky_radio(stream, horizon, intensity):
    """Radio link flaps plus elevated-loss windows, repeating."""
    plan = FaultPlan()
    period = max(20.0, horizon / 6.0)
    at = period / 2.0
    while at < horizon:
        plan.add("link_flap", at=at, duration=2.0 + 4.0 * intensity,
                 target="cell-")
        loss_at = at + period / 2.0
        if loss_at < horizon:
            plan.add("wireless_loss", at=loss_at,
                     duration=6.0 + 6.0 * intensity,
                     target="cell-",
                     magnitude=min(0.8, 0.3 + 0.5 * intensity))
        at += period
    return plan


def _gateway_outage(stream, horizon, intensity):
    """Primary gateway crashes mid-run; a shorter relapse later."""
    plan = FaultPlan()
    plan.add("gateway_crash", at=horizon * 0.2,
             duration=horizon * (0.1 + 0.15 * intensity),
             target="primary")
    plan.add("gateway_crash", at=horizon * 0.6,
             duration=horizon * 0.08 * (1.0 + intensity),
             target="primary")
    if intensity >= 0.75:
        # Hard mode: the standby goes down while the primary is out.
        plan.add("gateway_crash", at=horizon * 0.22,
                 duration=horizon * 0.05, target="standby")
    return plan


def _brownout(stream, horizon, intensity):
    """Host-tier brownout: worker stalls, a DB lock stall, one crash."""
    plan = FaultPlan()
    plan.add("server_stall", at=horizon * 0.15,
             duration=2.0 + 6.0 * intensity)
    plan.add("db_stall", at=horizon * 0.4,
             duration=1.0 + 3.0 * intensity, target="shop_items")
    plan.add("server_crash", at=horizon * 0.65,
             duration=2.0 + 8.0 * intensity)
    return plan


def _dns_blackout(stream, horizon, intensity):
    plan = FaultPlan()
    plan.add("dns_blackout", at=horizon * 0.25,
             duration=3.0 + 9.0 * intensity, target="shop.example.com")
    plan.add("dns_blackout", at=horizon * 0.7,
             duration=2.0 + 6.0 * intensity, target="shop.example.com")
    return plan


def _storm(stream, horizon, intensity):
    """Seeded Poisson storm across the whole taxonomy."""
    return FaultPlan.random(stream, horizon, intensity=intensity)


def _fleet_outage(stream, horizon, intensity):
    """Kill one member of the fleet mid-run; health checks recover it.

    k=1 of N=4: the member is ejected after ``unhealthy_threshold``
    failed probes, its ring keys remap to the survivors, and it is
    re-admitted half-open once the restart answers probes again.
    """
    plan = FaultPlan()
    plan.add("gateway_crash", at=horizon * 0.3,
             duration=horizon * (0.2 + 0.2 * intensity),
             target="member:1")
    return plan


def _canary_regression(stream, horizon, intensity):
    """No injected fault: the regression is the handicapped v2 build.

    The scenario's fleet config deploys a deliberately degraded canary
    (per-request handicap scaling with intensity); the controller must
    detect the SLO breach and roll back with zero stranded sessions.
    """
    return FaultPlan()


SCENARIOS = {
    "flaky-radio": _flaky_radio,
    "gateway-outage": _gateway_outage,
    "brownout": _brownout,
    "dns-blackout": _dns_blackout,
    "storm": _storm,
    "fleet-outage": _fleet_outage,
    "canary-regression": _canary_regression,
}

# Scenarios that only make sense on a fleet get one by default (an
# explicit ``fleet=`` argument still wins).
FLEET_SCENARIOS = {"fleet-outage": 4, "canary-regression": 4}


def scenario_plan(scenario: str, stream, horizon: float,
                  intensity: float) -> FaultPlan:
    try:
        build = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(f"unknown scenario {scenario!r} "
                         f"(known: {', '.join(sorted(SCENARIOS))})")
    return build(stream, horizon, intensity)


# ------------------------------------------------------------- reporting
def percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    # ceil(q * n) as an integer rank, then 0-based clamped index.
    rank = int(q * len(ordered))
    if rank < q * len(ordered):
        rank += 1
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


# ------------------------------------------------------------- the runner
class _ChaosScenario:
    """A fully wired chaos scenario, ready to run.

    Produced by :func:`build_chaos_scenario`; consumed by
    :func:`run_chaos` and by the parallel shard runner, which advances
    it window by window in a worker process.  Sharing the wiring and
    the report derivation keeps the two paths byte-identical.
    """

    __slots__ = ("system", "engine", "shop", "faults", "plan", "handles",
                 "scenario", "seed", "intensity", "policies", "middleware",
                 "bearer", "device", "horizon", "stations",
                 "station_offset", "transactions_per_station")


def build_chaos_scenario(scenario: str = "storm", seed: int = 0,
                         intensity: float = 0.5, policies: bool = True,
                         stations: int = None,
                         transactions_per_station: int = 6,
                         horizon: float = 240.0, middleware: str = "WAP",
                         bearer: tuple = ("cellular", "GPRS"),
                         device: str = DEFAULT_DEVICE,
                         plan: FaultPlan = None,
                         fleet: int = 0,
                         station_offset: int = 0) -> _ChaosScenario:
    """Build and wire a chaos scenario without running it.

    ``station_offset`` shifts station/account naming so a shard hosting
    stations ``[offset, offset+stations)`` uses the same global
    identities the sequential run would.
    """
    if fleet == 0:
        fleet = FLEET_SCENARIOS.get(scenario, 0)
    if fleet > 0 and not policies:
        raise ValueError("a gateway fleet requires policies=True")
    if stations is None:
        # Fleet scenarios need enough stations that every shard (and
        # the canary cohort) actually sees traffic.
        stations = 12 if fleet > 0 else 4
    resilience = ResilienceConfig() if policies else None
    if fleet > 0:
        resilience = dataclasses.replace(
            resilience, fleet_size=fleet, standby_gateway=False)
    if scenario == "canary-regression" and fleet > 0:
        # The planted regression: a v2 canary whose per-request
        # handicap scales with intensity, judged over windows sized to
        # see several transactions per side.
        resilience = dataclasses.replace(
            resilience,
            canary_fraction=0.5,
            canary_deploy_at=horizon * 0.25,
            canary_handicap=2.0 + 2.0 * intensity,
            canary_window=horizon / 6.0,
            canary_min_samples=3,
            canary_violations=2,
        )
    builder = MCSystemBuilder(seed=seed, middleware=middleware,
                              bearer=bearer, resilience=resilience)
    system = builder.build()

    shop = CommerceApp(items=[("WAP Phone", 19900, 10_000),
                              ("Leather Case", 950, 10_000)])
    system.mount_application(shop)
    for index in range(stations):
        system.host.payment.open_account(
            f"shopper{station_offset + index}", 100_000_000)

    handles = [system.add_station(
                   device, name=f"station-{station_offset + index}")
               for index in range(stations)]
    engine = TransactionEngine(system)

    if plan is None:
        plan_stream = system.seeds.stream("chaos-plan")
        plan = scenario_plan(scenario, plan_stream, horizon, intensity)
    faults = FaultEngine(system, plan).start()

    think = system.seeds.stream("chaos-think")
    # Pace each shopper so its transactions spread across the horizon
    # (otherwise everything finishes before the first fault fires).
    interval = horizon / (transactions_per_station + 1)

    def shopper(handle, account):
        def loop(env):
            yield env.timeout(think.uniform(0.1, 0.9) * interval)
            for _ in range(transactions_per_station):
                started = env.now
                flow = shop.browse_and_buy(item_id=1, account=account)
                yield engine.run_flow(handle, flow)
                elapsed = env.now - started
                pause = max(0.1, interval - elapsed)
                yield env.timeout(pause * think.uniform(0.7, 1.3))
        return loop

    for index, handle in enumerate(handles):
        name = f"shopper-{station_offset + index}"
        system.sim.spawn(
            shopper(handle, f"shopper{station_offset + index}")(system.sim),
            name=name)

    built = _ChaosScenario()
    built.system = system
    built.engine = engine
    built.shop = shop
    built.faults = faults
    built.plan = plan
    built.handles = handles
    built.scenario = scenario
    built.seed = seed
    built.intensity = intensity
    built.policies = policies
    built.middleware = middleware
    built.bearer = bearer
    built.device = device
    built.horizon = horizon
    built.stations = stations
    built.station_offset = station_offset
    built.transactions_per_station = transactions_per_station
    return built


def chaos_report(built: _ChaosScenario) -> dict:
    """Derive the chaos report dict from a finished scenario run."""
    system, engine = built.system, built.engine
    records = engine.completed
    latencies = sorted(engine.latencies())
    errors: dict = {}
    for record in records:
        if not record.ok:
            label = record.error.split(":", 1)[0] or "unknown"
            errors[label] = errors.get(label, 0) + 1

    offered = built.stations * built.transactions_per_station
    report = {
        "scenario": built.scenario,
        "seed": built.seed,
        "intensity": built.intensity,
        "policies": bool(built.policies),
        "middleware": built.middleware,
        "bearer": list(built.bearer),
        "device": built.device,
        "horizon": built.horizon,
        "stations": built.stations,
        "transactions_per_station": built.transactions_per_station,
        "plan": [spec.to_dict() for spec in built.plan.ordered()],
        "faults": dict(sorted(built.faults.stats.as_dict().items())),
        "offered": offered,
        "completed": len(records),
        "successful": len(engine.successful),
        "success_rate": round(engine.success_rate(), 6),
        "success_vs_offered": (round(len(engine.successful) / offered, 6)
                               if offered else 0.0),
        "retries": sum(record.retries for record in records),
        "errors": dict(sorted(errors.items())),
        "latency": {
            "p50": round(percentile(latencies, 0.50), 6),
            "p95": round(percentile(latencies, 0.95), 6),
            "max": round(latencies[-1], 6) if latencies else 0.0,
        },
        "resilience": _resilience_counters(system, built.handles),
    }
    if system.fleet is not None:
        report["fleet"] = fleet_report(system)
    return report


def run_chaos(scenario: str = "storm", seed: int = 0,
              intensity: float = 0.5, policies: bool = True,
              stations: int = None, transactions_per_station: int = 6,
              horizon: float = 240.0, middleware: str = "WAP",
              bearer: tuple = ("cellular", "GPRS"),
              device: str = DEFAULT_DEVICE,
              plan: FaultPlan = None,
              post_build=None, fleet: int = 0) -> dict:
    """Run one chaos scenario end to end; returns the report dict.

    ``policies=False`` builds the identical system without any
    resilience wiring (no retry, breakers, standby, shedding), which is
    the baseline the benchmark compares against.  An explicit ``plan``
    overrides the scenario's schedule (the scenario name is still
    recorded).  ``post_build(system, engine)``, when given, runs after
    the scenario is fully wired but before the clock starts — the race
    sanitizer uses it to instrument shared state and install its
    kernel hook.  ``fleet`` > 0 runs the scenario against an N-member
    gateway fleet (requires ``policies``); the fleet-native scenarios
    (``fleet-outage``, ``canary-regression``) default to one.
    """
    built = build_chaos_scenario(
        scenario=scenario, seed=seed, intensity=intensity,
        policies=policies, stations=stations,
        transactions_per_station=transactions_per_station,
        horizon=horizon, middleware=middleware, bearer=bearer,
        device=device, plan=plan, fleet=fleet)

    if post_build is not None:
        post_build(built.system, built.engine)

    built.system.run(until=horizon)
    return chaos_report(built)


def _resilience_counters(system, handles) -> dict:
    counters: dict = {"enabled": system.resilience is not None}
    web = system.host.web_server
    counters["shed_requests"] = web.stats.get("shed_requests")
    counters["web_crashes"] = web.stats.get("crashes")
    for label, gateway in (("gateway", system.gateway),
                           ("standby_gateway", system.standby_gateway)):
        if gateway is None:
            continue
        entry = {
            "crashes": gateway.stats.get("crashes"),
            "origin_timeouts": gateway.stats.get("origin_timeouts"),
            "breaker_rejections": gateway.stats.get("breaker_rejections"),
        }
        breaker = getattr(gateway, "breaker", None)
        if breaker is not None:
            entry["breaker"] = dict(sorted(breaker.stats.as_dict().items()))
        counters[label] = entry
    failovers = route_failures = 0
    for handle in handles:
        stats = getattr(handle.session, "stats", None)
        if stats is None:
            continue
        failovers += stats.get("failovers")
        route_failures += stats.get("route_failures")
    counters["failovers"] = failovers
    counters["route_failures"] = route_failures
    return counters


def report_json(report: dict) -> str:
    """Canonical serialisation: byte-identical for identical reports."""
    return json.dumps(report, indent=2, sort_keys=True)
