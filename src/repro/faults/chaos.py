"""Named chaos scenarios and the end-to-end chaos runner.

:func:`run_chaos` builds a complete mobile commerce system (optionally
with the resilience policies on), mounts the commerce application,
runs a fleet of shoppers while a :class:`FaultEngine` executes the
scenario's fault plan, and returns a deterministic JSON-able report —
success rate, latency percentiles, retry/failover/breaker/shedding
counters, and the plan itself.  Everything derives from the seed and
the sim clock, so the same arguments produce a byte-identical report.
"""

from __future__ import annotations

import json

from ..apps import CommerceApp
from ..core import MCSystemBuilder, TransactionEngine
from ..resilience import ResilienceConfig
from .engine import FaultEngine
from .plan import FaultPlan

__all__ = ["SCENARIOS", "scenario_plan", "run_chaos", "report_json",
           "percentile"]

DEFAULT_DEVICE = "Nokia 9290 Communicator"


# ------------------------------------------------------------- scenarios
def _flaky_radio(stream, horizon, intensity):
    """Radio link flaps plus elevated-loss windows, repeating."""
    plan = FaultPlan()
    period = max(20.0, horizon / 6.0)
    at = period / 2.0
    while at < horizon:
        plan.add("link_flap", at=at, duration=2.0 + 4.0 * intensity,
                 target="cell-")
        loss_at = at + period / 2.0
        if loss_at < horizon:
            plan.add("wireless_loss", at=loss_at,
                     duration=6.0 + 6.0 * intensity,
                     magnitude=min(0.8, 0.3 + 0.5 * intensity))
        at += period
    return plan


def _gateway_outage(stream, horizon, intensity):
    """Primary gateway crashes mid-run; a shorter relapse later."""
    plan = FaultPlan()
    plan.add("gateway_crash", at=horizon * 0.2,
             duration=horizon * (0.1 + 0.15 * intensity))
    plan.add("gateway_crash", at=horizon * 0.6,
             duration=horizon * 0.08 * (1.0 + intensity))
    if intensity >= 0.75:
        # Hard mode: the standby goes down while the primary is out.
        plan.add("gateway_crash", at=horizon * 0.22,
                 duration=horizon * 0.05, target="standby")
    return plan


def _brownout(stream, horizon, intensity):
    """Host-tier brownout: worker stalls, a DB lock stall, one crash."""
    plan = FaultPlan()
    plan.add("server_stall", at=horizon * 0.15,
             duration=2.0 + 6.0 * intensity)
    plan.add("db_stall", at=horizon * 0.4,
             duration=1.0 + 3.0 * intensity)
    plan.add("server_crash", at=horizon * 0.65,
             duration=2.0 + 8.0 * intensity)
    return plan


def _dns_blackout(stream, horizon, intensity):
    plan = FaultPlan()
    plan.add("dns_blackout", at=horizon * 0.25,
             duration=3.0 + 9.0 * intensity)
    plan.add("dns_blackout", at=horizon * 0.7,
             duration=2.0 + 6.0 * intensity)
    return plan


def _storm(stream, horizon, intensity):
    """Seeded Poisson storm across the whole taxonomy."""
    return FaultPlan.random(stream, horizon, intensity=intensity)


SCENARIOS = {
    "flaky-radio": _flaky_radio,
    "gateway-outage": _gateway_outage,
    "brownout": _brownout,
    "dns-blackout": _dns_blackout,
    "storm": _storm,
}


def scenario_plan(scenario: str, stream, horizon: float,
                  intensity: float) -> FaultPlan:
    try:
        build = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(f"unknown scenario {scenario!r} "
                         f"(known: {', '.join(sorted(SCENARIOS))})")
    return build(stream, horizon, intensity)


# ------------------------------------------------------------- reporting
def percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    # ceil(q * n) as an integer rank, then 0-based clamped index.
    rank = int(q * len(ordered))
    if rank < q * len(ordered):
        rank += 1
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


# ------------------------------------------------------------- the runner
def run_chaos(scenario: str = "storm", seed: int = 0,
              intensity: float = 0.5, policies: bool = True,
              stations: int = 4, transactions_per_station: int = 6,
              horizon: float = 240.0, middleware: str = "WAP",
              bearer: tuple = ("cellular", "GPRS"),
              device: str = DEFAULT_DEVICE,
              plan: FaultPlan = None,
              post_build=None) -> dict:
    """Run one chaos scenario end to end; returns the report dict.

    ``policies=False`` builds the identical system without any
    resilience wiring (no retry, breakers, standby, shedding), which is
    the baseline the benchmark compares against.  An explicit ``plan``
    overrides the scenario's schedule (the scenario name is still
    recorded).  ``post_build(system, engine)``, when given, runs after
    the scenario is fully wired but before the clock starts — the race
    sanitizer uses it to instrument shared state and install its
    kernel hook.
    """
    resilience = ResilienceConfig() if policies else None
    builder = MCSystemBuilder(seed=seed, middleware=middleware,
                              bearer=bearer, resilience=resilience)
    system = builder.build()

    shop = CommerceApp(items=[("WAP Phone", 19900, 10_000),
                              ("Leather Case", 950, 10_000)])
    system.mount_application(shop)
    for index in range(stations):
        system.host.payment.open_account(f"shopper{index}", 100_000_000)

    handles = [system.add_station(device, name=f"station-{index}")
               for index in range(stations)]
    engine = TransactionEngine(system)

    if plan is None:
        plan_stream = system.seeds.stream("chaos-plan")
        plan = scenario_plan(scenario, plan_stream, horizon, intensity)
    faults = FaultEngine(system, plan).start()

    think = system.seeds.stream("chaos-think")
    # Pace each shopper so its transactions spread across the horizon
    # (otherwise everything finishes before the first fault fires).
    interval = horizon / (transactions_per_station + 1)

    def shopper(handle, account):
        def loop(env):
            yield env.timeout(think.uniform(0.1, 0.9) * interval)
            for _ in range(transactions_per_station):
                started = env.now
                flow = shop.browse_and_buy(item_id=1, account=account)
                yield engine.run_flow(handle, flow)
                elapsed = env.now - started
                pause = max(0.1, interval - elapsed)
                yield env.timeout(pause * think.uniform(0.7, 1.3))
        return loop

    for index, handle in enumerate(handles):
        system.sim.spawn(shopper(handle, f"shopper{index}")(system.sim),
                         name=f"shopper-{index}")

    if post_build is not None:
        post_build(system, engine)

    system.run(until=horizon)

    records = engine.completed
    latencies = sorted(engine.latencies())
    errors: dict = {}
    for record in records:
        if not record.ok:
            label = record.error.split(":", 1)[0] or "unknown"
            errors[label] = errors.get(label, 0) + 1

    report = {
        "scenario": scenario,
        "seed": seed,
        "intensity": intensity,
        "policies": bool(policies),
        "middleware": middleware,
        "bearer": list(bearer),
        "device": device,
        "horizon": horizon,
        "stations": stations,
        "transactions_per_station": transactions_per_station,
        "plan": [spec.to_dict() for spec in plan.ordered()],
        "faults": dict(sorted(faults.stats.as_dict().items())),
        "completed": len(records),
        "successful": len(engine.successful),
        "success_rate": round(engine.success_rate(), 6),
        "retries": sum(record.retries for record in records),
        "errors": dict(sorted(errors.items())),
        "latency": {
            "p50": round(percentile(latencies, 0.50), 6),
            "p95": round(percentile(latencies, 0.95), 6),
            "max": round(latencies[-1], 6) if latencies else 0.0,
        },
        "resilience": _resilience_counters(system, handles),
    }
    return report


def _resilience_counters(system, handles) -> dict:
    counters: dict = {"enabled": system.resilience is not None}
    web = system.host.web_server
    counters["shed_requests"] = web.stats.get("shed_requests")
    counters["web_crashes"] = web.stats.get("crashes")
    for label, gateway in (("gateway", system.gateway),
                           ("standby_gateway", system.standby_gateway)):
        if gateway is None:
            continue
        entry = {
            "crashes": gateway.stats.get("crashes"),
            "origin_timeouts": gateway.stats.get("origin_timeouts"),
            "breaker_rejections": gateway.stats.get("breaker_rejections"),
        }
        breaker = getattr(gateway, "breaker", None)
        if breaker is not None:
            entry["breaker"] = dict(sorted(breaker.stats.as_dict().items()))
        counters[label] = entry
    failovers = route_failures = 0
    for handle in handles:
        stats = getattr(handle.session, "stats", None)
        if stats is None:
            continue
        failovers += stats.get("failovers")
        route_failures += stats.get("route_failures")
    counters["failovers"] = failovers
    counters["route_failures"] = route_failures
    return counters


def report_json(report: dict) -> str:
    """Canonical serialisation: byte-identical for identical reports."""
    return json.dumps(report, indent=2, sort_keys=True)
