"""Declarative fault plans on the simulation clock.

A :class:`FaultPlan` is an ordered set of :class:`FaultSpec` entries —
*what* breaks, *when* (sim-seconds), for *how long*, and how hard.
Plans are data: they serialise to JSON, validate before running, and
can be generated as a seeded random process
(:meth:`FaultPlan.random`), so a chaos run is fully determined by
``(plan | seed, system seed)`` and nothing else.  Schedules must never
come from the wall clock or the module-level ``random`` — the
``fault-schedule`` lint rule enforces this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

# The taxonomy (injectors.py implements one injector per kind).
FAULT_KINDS = (
    "link_flap",        # take links down, bring them back up
    "wireless_loss",    # elevated frame loss window on radio links
    "gateway_crash",    # middleware gateway/centre/proxy crash+restart
    "server_stall",     # web server workers wedge (pool exhausted)
    "server_crash",     # web server crash+restart
    "db_stall",         # exclusive table lock held across the window
    "dns_blackout",     # name registry records vanish, then return
    "battery_drain",    # station battery loses charge instantly
    "memory_pressure",  # station RAM ballast allocated for the window
)

# (min, max) duration in sim-seconds drawn for randomly generated
# specs; instantaneous kinds get 0.
_RANDOM_DURATIONS = {
    "link_flap": (2.0, 8.0),
    "wireless_loss": (5.0, 20.0),
    "gateway_crash": (4.0, 15.0),
    "server_stall": (2.0, 8.0),
    "server_crash": (3.0, 10.0),
    "db_stall": (1.0, 4.0),
    "dns_blackout": (3.0, 12.0),
    "battery_drain": (0.0, 0.0),
    "memory_pressure": (5.0, 20.0),
}

# Kinds a generic random storm draws from.  battery_drain is excluded:
# it is irreversible, so an unlucky early draw would flatline a station
# for the whole run and swamp every other effect.
DEFAULT_RANDOM_KINDS = tuple(k for k in FAULT_KINDS if k != "battery_drain")


@dataclass
class FaultSpec:
    """One scheduled fault.

    ``target`` selects what to hit (injector-specific: a link-name
    substring, ``"standby"``, a table name, a DNS name, a station-name
    substring; empty = the injector's default).  ``magnitude`` scales
    intensity where meaningful (loss probability, battery fraction,
    memory fraction).
    """

    kind: str
    at: float
    duration: float = 0.0
    target: str = ""
    magnitude: float = 1.0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(known: {', '.join(FAULT_KINDS)})")
        if self.at < 0:
            raise ValueError(f"{self.kind}: negative start time {self.at}")
        if self.duration < 0:
            raise ValueError(
                f"{self.kind}: negative duration {self.duration}")
        if self.magnitude < 0:
            raise ValueError(
                f"{self.kind}: negative magnitude {self.magnitude}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "at": self.at, "duration": self.duration,
                "target": self.target, "magnitude": self.magnitude}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        unknown = set(data) - {"kind", "at", "duration", "target",
                               "magnitude"}
        if unknown:
            raise ValueError(f"unknown FaultSpec keys {sorted(unknown)}")
        return cls(
            kind=data["kind"],
            at=float(data["at"]),
            duration=float(data.get("duration", 0.0)),
            target=str(data.get("target", "")),
            magnitude=float(data.get("magnitude", 1.0)),
        )


@dataclass
class FaultPlan:
    """An ordered schedule of faults."""

    specs: list[FaultSpec] = field(default_factory=list)

    def add(self, kind: str, at: float, duration: float = 0.0,
            target: str = "", magnitude: float = 1.0) -> FaultSpec:
        spec = FaultSpec(kind=kind, at=at, duration=duration,
                         target=target, magnitude=magnitude)
        spec.validate()
        self.specs.append(spec)
        return spec

    def ordered(self) -> list[FaultSpec]:
        return sorted(self.specs,
                      key=lambda s: (s.at, s.kind, s.target, s.duration))

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()

    def __len__(self) -> int:
        return len(self.specs)

    # -- serialisation ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"faults": [s.to_dict() for s in self.ordered()]},
                          indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        plan = cls(specs=[FaultSpec.from_dict(entry)
                          for entry in data.get("faults", [])])
        plan.validate()
        return plan

    # -- generation --------------------------------------------------------
    @classmethod
    def random(cls, stream, horizon: float, intensity: float = 0.5,
               kinds=None) -> "FaultPlan":
        """Seeded Poisson fault process over ``[0, horizon)``.

        ``stream`` is a :class:`~repro.sim.RandomStream`; ``intensity``
        scales the arrival rate (~``10 * intensity`` faults per
        horizon) and the drawn magnitudes.  Identical arguments produce
        identical plans.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        kinds = tuple(kinds) if kinds else DEFAULT_RANDOM_KINDS
        plan = cls()
        if intensity == 0:
            return plan
        rate = 10.0 * intensity / horizon
        at = stream.expovariate(rate)
        while at < horizon:
            kind = stream.choice(kinds)
            low, high = _RANDOM_DURATIONS[kind]
            duration = stream.uniform(low, high)
            magnitude = 1.0
            if kind == "wireless_loss":
                magnitude = min(0.9, stream.uniform(0.2, 0.6) * 2 * intensity)
            elif kind == "memory_pressure":
                magnitude = min(0.9, stream.uniform(0.3, 0.7))
            # gateway_crash resolves through a member selector now;
            # name the classic default explicitly.
            target = "primary" if kind == "gateway_crash" else ""
            plan.add(kind, at=at, duration=duration, target=target,
                     magnitude=magnitude)
            at += stream.expovariate(rate)
        return plan
