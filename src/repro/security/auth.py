"""User authentication: salted credential store and bearer tokens.

Covers the "authentication" leg of §8's security requirements for the
application layer (the transport leg is :mod:`repro.security.wtls`).
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from dataclasses import dataclass
from typing import Optional

from ..sim import RandomStream, Simulator

__all__ = ["AuthenticationError", "UserStore", "TokenIssuer"]

_token_counter = itertools.count(1)


class AuthenticationError(Exception):
    """Bad credentials or invalid/expired token."""


def _hash_password(password: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", password.encode(), salt, 1000)


@dataclass
class _UserRecord:
    username: str
    salt: bytes
    password_hash: bytes
    attributes: dict


class UserStore:
    """Salted-and-stretched password storage."""

    def __init__(self, entropy: RandomStream):
        self.entropy = entropy
        self._users: dict[str, _UserRecord] = {}

    def register(self, username: str, password: str, **attributes) -> None:
        if not username or not password:
            raise ValueError("username and password required")
        if username in self._users:
            raise ValueError(f"user {username!r} already exists")
        salt = self.entropy.bytes(16)
        self._users[username] = _UserRecord(
            username=username,
            salt=salt,
            password_hash=_hash_password(password, salt),
            attributes=dict(attributes),
        )

    def verify(self, username: str, password: str) -> dict:
        """Attributes of the user on success; raises otherwise."""
        record = self._users.get(username)
        if record is None:
            # Burn the same work as a real check (timing hygiene).
            _hash_password(password, b"\x00" * 16)
            raise AuthenticationError("unknown user or bad password")
        candidate = _hash_password(password, record.salt)
        if not hmac.compare_digest(candidate, record.password_hash):
            raise AuthenticationError("unknown user or bad password")
        return dict(record.attributes)

    def __contains__(self, username: str) -> bool:
        return username in self._users


class TokenIssuer:
    """HMAC-signed bearer tokens with expiry."""

    def __init__(self, sim: Simulator, secret: bytes, ttl: float = 900.0):
        self.sim = sim
        self.secret = secret
        self.ttl = ttl

    def issue(self, username: str) -> str:
        expires = self.sim.now + self.ttl
        payload = f"{username}:{expires}:{next(_token_counter)}"
        signature = hmac.new(self.secret, payload.encode(),
                             hashlib.sha256).hexdigest()[:24]
        return f"{payload}:{signature}"

    def validate(self, token: str) -> str:
        """The username, if the token is genuine and unexpired."""
        try:
            username, expires_text, counter, signature = token.rsplit(":", 3)
            payload = f"{username}:{expires_text}:{counter}"
            expires = float(expires_text)
        except ValueError:
            raise AuthenticationError("malformed token") from None
        expected = hmac.new(self.secret, payload.encode(),
                            hashlib.sha256).hexdigest()[:24]
        if not hmac.compare_digest(signature, expected):
            raise AuthenticationError("token signature invalid")
        if self.sim.now > expires:
            raise AuthenticationError("token expired")
        return username
