"""A WTLS-style secure channel over a TCP connection.

The paper closes on exactly this gap: "Security issues (including
payment) include data reliability, integrity, confidentiality, and
authentication ... A unified approach has not yet emerged."  This
module is one concrete approach, shaped like WTLS/TLS:

* an ephemeral Diffie-Hellman **handshake** agrees a session secret
  (two records on the wire, so it costs a real round trip);
* a **record layer** frames application data with a sequence number,
  encrypts with per-direction keys, and MACs every record —
  confidentiality, integrity and replay protection;
* optional **client authentication** via a pre-shared credential MAC.

Tampering or replay raises :class:`SecurityError` at the receiver, and
the §8 ablation benchmark measures the handshake + per-record overhead
against a plaintext channel.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

from ..net.tcp import TCPConnection
from ..sim import Event, RandomStream
from .crypto import (
    MAC_BYTES,
    derive_key,
    dh_private_key,
    dh_public_key,
    dh_shared_secret,
    keystream_xor,
    mac,
    verify_mac,
)

__all__ = ["SecurityError", "SecureChannel"]

RECORD_HEADER = 12  # seq (8) + length (4)


class SecurityError(Exception):
    """Handshake failure, MAC mismatch, or replayed record."""


class SecureChannel:
    """Wraps an established TCPConnection with encryption + integrity.

    Usage (client)::

        channel = SecureChannel(conn, entropy)
        yield channel.handshake_client()
        channel.send(b"PAY 49.99")
        plaintext = yield channel.recv()

    The server side calls ``handshake_server()``.  Either side may pass
    ``psk`` — when both do, the handshake also authenticates the client
    (the wireless "authentication" requirement of §8).
    """

    def __init__(self, conn: TCPConnection, entropy: RandomStream,
                 psk: Optional[bytes] = None):
        self.conn = conn
        self.sim = conn.sim
        self.entropy = entropy
        self.psk = psk
        self.established = False
        self._send_key = b""
        self._recv_key = b""
        self._send_mac_key = b""
        self._recv_mac_key = b""
        self._send_seq = 0
        self._recv_seq = 0
        self._rx_buffer = b""
        self.handshake_records = 0

    # -- handshake ---------------------------------------------------------
    def handshake_client(self) -> Event:
        """Event firing once keys are agreed (fails with SecurityError)."""
        result = self.sim.event()

        def run(env):
            private = dh_private_key(self.entropy)
            hello = {"type": "client_hello",
                     "public": str(dh_public_key(private))}
            if self.psk is not None:
                hello["auth"] = mac(self.psk, b"client-auth").hex()
            self._send_clear(hello)
            reply = yield from self._recv_clear()
            if reply.get("type") != "server_hello":
                result.fail(SecurityError("expected server_hello"))
                return
            if reply.get("status") == "denied":
                result.fail(SecurityError("server denied handshake"))
                return
            secret = dh_shared_secret(int(reply["public"]), private)
            self._derive("client", secret)
            result.succeed(self)

        self.sim.spawn(run(self.sim), name="wtls-client")
        return result

    def handshake_server(self) -> Event:
        result = self.sim.event()

        def run(env):
            hello = yield from self._recv_clear()
            if hello.get("type") != "client_hello":
                result.fail(SecurityError("expected client_hello"))
                return
            if self.psk is not None:
                expected = mac(self.psk, b"client-auth").hex()
                if hello.get("auth") != expected:
                    self._send_clear({"type": "server_hello",
                                      "status": "denied", "public": "0"})
                    result.fail(SecurityError("client authentication failed"))
                    return
            private = dh_private_key(self.entropy)
            self._send_clear({"type": "server_hello", "status": "ok",
                              "public": str(dh_public_key(private))})
            secret = dh_shared_secret(int(hello["public"]), private)
            self._derive("server", secret)
            result.succeed(self)

        self.sim.spawn(run(self.sim), name="wtls-server")
        return result

    def _derive(self, role: str, secret: bytes) -> None:
        c2s_key = derive_key(secret, "c2s-enc")
        s2c_key = derive_key(secret, "s2c-enc")
        c2s_mac = derive_key(secret, "c2s-mac")
        s2c_mac = derive_key(secret, "s2c-mac")
        if role == "client":
            self._send_key, self._recv_key = c2s_key, s2c_key
            self._send_mac_key, self._recv_mac_key = c2s_mac, s2c_mac
        else:
            self._send_key, self._recv_key = s2c_key, c2s_key
            self._send_mac_key, self._recv_mac_key = s2c_mac, c2s_mac
        self.established = True

    # -- clear-phase framing -----------------------------------------------
    def _send_clear(self, obj: dict) -> None:
        body = json.dumps(obj).encode()
        self.conn.send(struct.pack(">I", len(body)) + body)
        self.handshake_records += 1

    def _recv_clear(self):
        while True:
            frame = self._try_frame()
            if frame is not None:
                return json.loads(frame.decode())
            chunk = yield self.conn.recv()
            if chunk == b"":
                raise SecurityError("connection closed during handshake")
            self._rx_buffer += chunk

    def _try_frame(self) -> Optional[bytes]:
        if len(self._rx_buffer) < 4:
            return None
        (length,) = struct.unpack(">I", self._rx_buffer[:4])
        if len(self._rx_buffer) < 4 + length:
            return None
        frame = self._rx_buffer[4: 4 + length]
        self._rx_buffer = self._rx_buffer[4 + length:]
        return frame

    # -- record layer ----------------------------------------------------
    def send(self, plaintext: bytes) -> None:
        """Encrypt, MAC and transmit one record."""
        if not self.established:
            raise SecurityError("send() before handshake")
        seq = self._send_seq
        self._send_seq += 1
        ciphertext = keystream_xor(self._send_key, seq, plaintext)
        tag = mac(self._send_mac_key, seq.to_bytes(8, "big"), ciphertext)
        record = (struct.pack(">QI", seq, len(ciphertext) + MAC_BYTES)
                  + ciphertext + tag)
        self.conn.send(record)

    def recv(self) -> Event:
        """Event yielding the next verified plaintext (b"" on EOF)."""
        if not self.established:
            raise SecurityError("recv() before handshake")
        result = self.sim.event()

        def run(env):
            while True:
                record = self._try_record()
                if record == "incomplete":
                    chunk = yield self.conn.recv()
                    if chunk == b"":
                        result.succeed(b"")
                        return
                    self._rx_buffer += chunk
                    continue
                seq, ciphertext, tag = record
                if seq != self._recv_seq:
                    result.fail(SecurityError(
                        f"replay or reorder: got seq {seq}, "
                        f"expected {self._recv_seq}"
                    ))
                    return
                if not verify_mac(self._recv_mac_key, tag,
                                  seq.to_bytes(8, "big"), ciphertext):
                    result.fail(SecurityError("record MAC mismatch"))
                    return
                self._recv_seq += 1
                result.succeed(
                    keystream_xor(self._recv_key, seq, ciphertext))
                return

        self.sim.spawn(run(self.sim), name="wtls-recv")
        return result

    def _try_record(self):
        if len(self._rx_buffer) < RECORD_HEADER:
            return "incomplete"
        seq, length = struct.unpack(">QI", self._rx_buffer[:RECORD_HEADER])
        if len(self._rx_buffer) < RECORD_HEADER + length:
            return "incomplete"
        blob = self._rx_buffer[RECORD_HEADER: RECORD_HEADER + length]
        self._rx_buffer = self._rx_buffer[RECORD_HEADER + length:]
        return seq, blob[:-MAC_BYTES], blob[-MAC_BYTES:]
