"""Mobile security & payment (paper §8): crypto, WTLS channel, auth, payment."""

from .auth import AuthenticationError, TokenIssuer, UserStore
from .crypto import (
    derive_key,
    dh_private_key,
    dh_public_key,
    dh_shared_secret,
    keystream_xor,
    mac,
    verify_mac,
)
from .payment import Authorization, PaymentError, PaymentOrder, PaymentProcessor
from .wtls import SecureChannel, SecurityError

__all__ = [
    "AuthenticationError",
    "TokenIssuer",
    "UserStore",
    "derive_key",
    "dh_private_key",
    "dh_public_key",
    "dh_shared_secret",
    "keystream_xor",
    "mac",
    "verify_mac",
    "Authorization",
    "PaymentError",
    "PaymentOrder",
    "PaymentProcessor",
    "SecureChannel",
    "SecurityError",
]
