"""Cryptographic primitives for the wireless security layer.

Real constructions, toy parameters: Diffie-Hellman over the RFC 3526
1536-bit MODP group, a SHA-256-counter-mode stream cipher, and
HMAC-SHA256.  This is not audited cryptography — it exists so the
security layer (WTLS-style handshake + record protection in
:mod:`repro.security.wtls`) has honest mechanics: keys are actually
agreed, ciphertexts actually depend on them, and MACs actually catch
tampering, which is what the §8 ablation benchmark demonstrates.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from ..sim import RandomStream

__all__ = [
    "DH_PRIME",
    "DH_GENERATOR",
    "dh_private_key",
    "dh_public_key",
    "dh_shared_secret",
    "derive_key",
    "keystream_xor",
    "mac",
    "verify_mac",
    "MAC_BYTES",
]

# RFC 3526 group 5 (1536-bit MODP).
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
DH_GENERATOR = 2
MAC_BYTES = 16
_KEYSTREAM_BLOCK = 32


def dh_private_key(stream: RandomStream) -> int:
    """A fresh private exponent from a seeded stream."""
    return int.from_bytes(stream.bytes(32), "big") | 1


def dh_public_key(private_key: int) -> int:
    return pow(DH_GENERATOR, private_key, DH_PRIME)


def dh_shared_secret(their_public: int, my_private: int) -> bytes:
    if not 1 < their_public < DH_PRIME - 1:
        raise ValueError("degenerate DH public key")
    shared = pow(their_public, my_private, DH_PRIME)
    return hashlib.sha256(
        shared.to_bytes((DH_PRIME.bit_length() + 7) // 8, "big")
    ).digest()


def derive_key(secret: bytes, label: str) -> bytes:
    """Per-purpose subkey (encryption vs MAC, client vs server)."""
    return hashlib.sha256(secret + label.encode()).digest()


def keystream_xor(key: bytes, nonce: int, data: bytes) -> bytes:
    """Counter-mode stream cipher: XOR with SHA256(key||nonce||counter)."""
    out = bytearray(len(data))
    offset = 0
    counter = 0
    while offset < len(data):
        block = hashlib.sha256(
            key + nonce.to_bytes(8, "big") + counter.to_bytes(8, "big")
        ).digest()
        chunk = data[offset: offset + _KEYSTREAM_BLOCK]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ block[i]
        offset += _KEYSTREAM_BLOCK
        counter += 1
    return bytes(out)


def mac(key: bytes, *parts: bytes) -> bytes:
    """Truncated HMAC-SHA256 over the concatenated parts."""
    h = _hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()[:MAC_BYTES]


def verify_mac(key: bytes, tag: bytes, *parts: bytes) -> bool:
    return _hmac.compare_digest(tag, mac(key, *parts))
