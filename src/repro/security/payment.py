"""Mobile payment: an authorize/capture protocol with replay protection.

"It is estimated that 50 million wireless phone users ... will use
their hand-held devices to authorize payment for premium content and
physical goods" — this module is the authorization machinery.  A
:class:`PaymentProcessor` verifies MAC-signed :class:`PaymentOrder`
messages (integrity + merchant authentication), enforces single-use
nonces (replay protection), tracks account balances, and supports the
two-phase authorize → capture/void flow card networks use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..sim import Counter, RandomStream, Simulator
from .crypto import mac, verify_mac

__all__ = ["PaymentError", "PaymentOrder", "Authorization", "PaymentProcessor"]


class PaymentError(Exception):
    """Declined, replayed, tampered or malformed payment."""


@dataclass(frozen=True)
class PaymentOrder:
    """A signed instruction to move money."""

    account: str
    merchant: str
    amount_cents: int
    nonce: str
    signature: bytes = b""

    def signing_payload(self) -> tuple[bytes, ...]:
        return (self.account.encode(), self.merchant.encode(),
                str(self.amount_cents).encode(), self.nonce.encode())

    def signed(self, key: bytes) -> "PaymentOrder":
        return PaymentOrder(
            account=self.account,
            merchant=self.merchant,
            amount_cents=self.amount_cents,
            nonce=self.nonce,
            signature=mac(key, *self.signing_payload()),
        )


@dataclass
class Authorization:
    """A held (not yet captured) amount."""

    auth_id: int
    account: str
    merchant: str
    amount_cents: int
    state: str = "authorized"  # authorized | captured | voided


class PaymentProcessor:
    """The account-holding, order-verifying payment backend."""

    def __init__(self, sim: Simulator, entropy: RandomStream):
        self.sim = sim
        self.entropy = entropy
        self.accounts: dict[str, int] = {}       # account -> balance (cents)
        self.merchant_keys: dict[str, bytes] = {}
        self.authorizations: dict[int, Authorization] = {}
        self._seen_nonces: set[str] = set()
        # Processor-local counter: a module-level one made auth ids (which
        # ride in SQL params and confirmation pages, hence packet sizes)
        # depend on how many runs came earlier in the process, breaking
        # run-to-run determinism.
        self._auth_ids = itertools.count(1)
        self.stats = Counter()

    # -- setup -----------------------------------------------------------
    def open_account(self, account: str, balance_cents: int) -> None:
        if balance_cents < 0:
            raise ValueError("negative opening balance")
        self.accounts[account] = balance_cents

    def register_merchant(self, merchant: str) -> bytes:
        """Provision a merchant; returns its signing key."""
        key = self.entropy.bytes(32)
        self.merchant_keys[merchant] = key
        return key

    def make_nonce(self) -> str:
        return self.entropy.bytes(12).hex()

    def balance(self, account: str) -> int:
        return self.accounts.get(account, 0)

    # -- authorize / capture -----------------------------------------------
    def authorize(self, order: PaymentOrder) -> Authorization:
        """Verify the order and place a hold; raises PaymentError."""
        key = self.merchant_keys.get(order.merchant)
        if key is None:
            self.stats.incr("declined_unknown_merchant")
            raise PaymentError(f"unknown merchant {order.merchant!r}")
        if not verify_mac(key, order.signature, *order.signing_payload()):
            self.stats.incr("declined_bad_signature")
            raise PaymentError("order signature invalid (tampered?)")
        if order.nonce in self._seen_nonces:
            self.stats.incr("declined_replay")
            raise PaymentError("replayed order")
        if order.amount_cents <= 0:
            self.stats.incr("declined_bad_amount")
            raise PaymentError("amount must be positive")
        balance = self.accounts.get(order.account)
        if balance is None:
            self.stats.incr("declined_no_account")
            raise PaymentError(f"no account {order.account!r}")
        held = sum(a.amount_cents for a in self.authorizations.values()
                   if a.account == order.account and a.state == "authorized")
        if balance - held < order.amount_cents:
            self.stats.incr("declined_insufficient")
            raise PaymentError("insufficient funds")
        self._seen_nonces.add(order.nonce)
        authorization = Authorization(
            auth_id=next(self._auth_ids),
            account=order.account,
            merchant=order.merchant,
            amount_cents=order.amount_cents,
        )
        self.authorizations[authorization.auth_id] = authorization
        self.stats.incr("authorized")
        return authorization

    def capture(self, auth_id: int) -> int:
        """Settle a hold; returns the new account balance."""
        authorization = self._active(auth_id)
        authorization.state = "captured"
        self.accounts[authorization.account] -= authorization.amount_cents
        self.stats.incr("captured")
        return self.accounts[authorization.account]

    def void(self, auth_id: int) -> None:
        """Release a hold without moving money."""
        authorization = self._active(auth_id)
        authorization.state = "voided"
        self.stats.incr("voided")

    def _active(self, auth_id: int) -> Authorization:
        authorization = self.authorizations.get(auth_id)
        if authorization is None:
            raise PaymentError(f"no authorization {auth_id}")
        if authorization.state != "authorized":
            raise PaymentError(
                f"authorization {auth_id} already {authorization.state}"
            )
        return authorization
