"""WML (Wireless Markup Language) documents and the WMLC binary codec.

WML is WAP's host language (paper Table 3): a *deck* of *cards*, each
card a screenful of content.  :class:`WMLDocument` is the object model;
``to_xml``/``parse_wml`` give the textual form; ``encode_wmlc`` /
``decode_wmlc`` implement the tokenised binary encoding the real WAP
gateway ships over the air — markup tags collapse to single bytes, which
is why WMLC decks are meaningfully smaller than their XML form (measured
by the Table 3 benchmark).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "WMLCard",
    "WMLDocument",
    "WMLError",
    "parse_wml",
    "encode_wmlc",
    "decode_wmlc",
    "WML_CONTENT_TYPE",
    "WMLC_CONTENT_TYPE",
]

WML_CONTENT_TYPE = "text/vnd.wap.wml"
WMLC_CONTENT_TYPE = "application/vnd.wap.wmlc"


class WMLError(Exception):
    """Malformed WML text or WMLC bytes."""


@dataclass
class WMLCard:
    """One screenful: id, title, paragraphs and navigation links."""

    card_id: str
    title: str = ""
    paragraphs: list[str] = field(default_factory=list)
    links: list[tuple[str, str]] = field(default_factory=list)  # (href, label)


@dataclass
class WMLDocument:
    """A deck of cards."""

    cards: list[WMLCard] = field(default_factory=list)

    def card(self, card_id: str) -> WMLCard:
        for card in self.cards:
            if card.card_id == card_id:
                return card
        raise KeyError(f"no card {card_id!r}")

    def to_xml(self) -> str:
        chunks = ['<?xml version="1.0"?>', "<wml>"]
        for card in self.cards:
            title = f' title="{_escape(card.title)}"' if card.title else ""
            chunks.append(f'<card id="{_escape(card.card_id)}"{title}>')
            for paragraph in card.paragraphs:
                chunks.append(f"<p>{_escape(paragraph)}</p>")
            for href, label in card.links:
                chunks.append(
                    f'<p><a href="{_escape(href)}">{_escape(label)}</a></p>'
                )
            chunks.append("</card>")
        chunks.append("</wml>")
        return "\n".join(chunks)

    @property
    def text_size(self) -> int:
        return len(self.to_xml().encode())


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _unescape(text: str) -> str:
    for entity, char in [("&lt;", "<"), ("&gt;", ">"), ("&quot;", '"'),
                         ("&amp;", "&")]:
        text = text.replace(entity, char)
    return text


# ------------------------------------------------------------ text parser
def parse_wml(text: str) -> WMLDocument:
    """Parse the XML form produced by :meth:`WMLDocument.to_xml`.

    A pragmatic parser for our own serialisation (plus whitespace and
    attribute-order tolerance) — not a general XML engine.
    """
    document = WMLDocument()
    pos = 0
    current: Optional[WMLCard] = None
    if "<wml" not in text:
        raise WMLError("not a WML document (no <wml> element)")
    while True:
        start = text.find("<", pos)
        if start < 0:
            break
        end = text.find(">", start)
        if end < 0:
            raise WMLError("unterminated tag")
        tag = text[start + 1: end].strip()
        pos = end + 1
        if tag.startswith("card"):
            attrs = _parse_attrs(tag)
            current = WMLCard(card_id=attrs.get("id", ""),
                              title=attrs.get("title", ""))
            document.cards.append(current)
        elif tag == "/card":
            current = None
        elif tag == "p" and current is not None:
            close = text.find("</p>", pos)
            if close < 0:
                raise WMLError("unterminated <p>")
            inner = text[pos:close]
            pos = close + len("</p>")
            anchor = inner.find("<a ")
            if anchor >= 0:
                attrs_end = inner.find(">", anchor)
                label_end = inner.find("</a>", attrs_end)
                if attrs_end < 0 or label_end < 0:
                    raise WMLError("malformed anchor")
                attrs = _parse_attrs(inner[anchor + 1: attrs_end])
                label = _unescape(inner[attrs_end + 1: label_end])
                current.links.append((attrs.get("href", ""), label))
            else:
                current.paragraphs.append(_unescape(inner.strip()))
    return document


def _parse_attrs(tag_text: str) -> dict:
    attrs = {}
    pos = 0
    while True:
        eq = tag_text.find('="', pos)
        if eq < 0:
            return attrs
        name_start = tag_text.rfind(" ", 0, eq) + 1
        name = tag_text[name_start:eq]
        value_end = tag_text.find('"', eq + 2)
        if value_end < 0:
            raise WMLError("unterminated attribute")
        attrs[name] = _unescape(tag_text[eq + 2: value_end])
        pos = value_end + 1


# --------------------------------------------------------- binary (WMLC)
_TOK_DECK = 0x01
_TOK_CARD = 0x02
_TOK_PARAGRAPH = 0x03
_TOK_LINK = 0x04
_TOK_END = 0x00
_MAGIC = b"WMLC"


def _write_string(out: bytearray, text: str) -> None:
    data = text.encode()
    out += struct.pack(">H", len(data))
    out += data


def _read_string(data: bytes, pos: int) -> tuple[str, int]:
    if pos + 2 > len(data):
        raise WMLError("truncated WMLC string length")
    (length,) = struct.unpack(">H", data[pos: pos + 2])
    pos += 2
    if pos + length > len(data):
        raise WMLError("truncated WMLC string")
    return data[pos: pos + length].decode(), pos + length


def encode_wmlc(document: WMLDocument) -> bytes:
    """Tokenised binary encoding of a deck."""
    out = bytearray(_MAGIC)
    out.append(_TOK_DECK)
    for card in document.cards:
        out.append(_TOK_CARD)
        _write_string(out, card.card_id)
        _write_string(out, card.title)
        for paragraph in card.paragraphs:
            out.append(_TOK_PARAGRAPH)
            _write_string(out, paragraph)
        for href, label in card.links:
            out.append(_TOK_LINK)
            _write_string(out, href)
            _write_string(out, label)
        out.append(_TOK_END)
    out.append(_TOK_END)
    return bytes(out)


def decode_wmlc(data: bytes) -> WMLDocument:
    if not data.startswith(_MAGIC):
        raise WMLError("not WMLC data (bad magic)")
    pos = len(_MAGIC)
    if pos >= len(data) or data[pos] != _TOK_DECK:
        raise WMLError("missing deck token")
    pos += 1
    document = WMLDocument()
    while pos < len(data):
        token = data[pos]
        pos += 1
        if token == _TOK_END:
            return document
        if token != _TOK_CARD:
            raise WMLError(f"unexpected token {token:#x}")
        card_id, pos = _read_string(data, pos)
        title, pos = _read_string(data, pos)
        card = WMLCard(card_id=card_id, title=title)
        while pos < len(data):
            inner = data[pos]
            pos += 1
            if inner == _TOK_END:
                break
            if inner == _TOK_PARAGRAPH:
                text, pos = _read_string(data, pos)
                card.paragraphs.append(text)
            elif inner == _TOK_LINK:
                href, pos = _read_string(data, pos)
                label, pos = _read_string(data, pos)
                card.links.append((href, label))
            else:
                raise WMLError(f"unexpected card token {inner:#x}")
        document.cards.append(card)
    raise WMLError("truncated WMLC deck")
