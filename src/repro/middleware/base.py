"""Middleware abstraction: what every mobile middleware must provide.

The paper's requirement 5 ("program/data independence: the change of
system components does not affect the existing programs") is enforced
here: applications speak to a :class:`MiddlewareSession` — ``get(url)``
and ``post(url, form)`` returning :class:`MiddlewareResponse` — and
never know whether a WAP gateway or the i-mode service is underneath.
Swapping middleware is a constructor change, which the interoperability
tests exercise for every device x middleware x bearer combination.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urlsplit

from ..sim import Event

__all__ = ["MiddlewareResponse", "MiddlewareSession", "split_url",
           "encode_frame", "encode_obj", "decode_obj", "FrameReader"]


@dataclass
class MiddlewareResponse:
    """What a mobile application gets back for a URL."""

    status: int
    content_type: str
    body: bytes
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class MiddlewareSession:
    """Interface implemented by WAPSession and IModeSession."""

    middleware_name = "abstract"

    def get(self, url: str, trace=None) -> Event:
        """Event yielding a MiddlewareResponse (or failing).

        ``trace`` is an optional observability TraceContext; sessions
        propagate it to the middleware server on whatever their protocol
        already carries (frame key or header).  It never changes what
        the request does.
        """
        raise NotImplementedError

    def post(self, url: str, form: dict, trace=None) -> Event:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def split_url(url: str) -> tuple[str, str]:
    """(host, path-with-query) from an absolute http URL."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"unsupported scheme in {url!r}")
    host = parts.netloc or ""
    if not host:
        raise ValueError(f"URL {url!r} has no host")
    path = parts.path or "/"
    if parts.query:
        path += "?" + parts.query
    return host, path


# ---------------------------------------------------------------- framing
def encode_obj(obj: dict) -> bytes:
    """JSON with bytes values as {"__b64__": ...} (no length prefix).

    Used directly over record-preserving transports (WTLS records);
    :func:`encode_frame` adds the length prefix for byte streams.
    """

    def default(value):
        raise TypeError(f"unencodable {type(value).__name__}")

    prepared = {
        key: ({"__b64__": base64.b64encode(value).decode()}
              if isinstance(value, bytes) else value)
        for key, value in obj.items()
    }
    return json.dumps(prepared, separators=(",", ":"),
                      default=default).encode()


def decode_obj(data: bytes) -> dict:
    """Inverse of :func:`encode_obj`."""
    raw = json.loads(data.decode())
    return {
        key: (base64.b64decode(value["__b64__"])
              if isinstance(value, dict) and "__b64__" in value
              else value)
        for key, value in raw.items()
    }


def encode_frame(obj: dict) -> bytes:
    """Length-prefixed JSON; bytes values become {"__b64__": ...}."""
    body = encode_obj(obj)
    return struct.pack(">I", len(body)) + body


class FrameReader:
    """Incremental decoder for :func:`encode_frame` output."""

    def __init__(self):
        self._buffer = b""

    def feed(self, data: bytes) -> list[dict]:
        self._buffer += data
        frames = []
        while len(self._buffer) >= 4:
            (length,) = struct.unpack(">I", self._buffer[:4])
            if len(self._buffer) < 4 + length:
                break
            raw = json.loads(self._buffer[4: 4 + length].decode())
            self._buffer = self._buffer[4 + length:]
            frames.append({
                key: (base64.b64decode(value["__b64__"])
                      if isinstance(value, dict) and "__b64__" in value
                      else value)
                for key, value in raw.items()
            })
        return frames
