"""Middleware abstraction: what every mobile middleware must provide.

The paper's requirement 5 ("program/data independence: the change of
system components does not affect the existing programs") is enforced
here: applications speak to a :class:`MiddlewareSession` — ``get(url)``
and ``post(url, form)`` returning :class:`MiddlewareResponse` — and
never know whether a WAP gateway or the i-mode service is underneath.
Swapping middleware is a constructor change, which the interoperability
tests exercise for every device x middleware x bearer combination.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urlsplit

from ..sim import Event

__all__ = ["RequestTimeout", "MiddlewareResponse", "MiddlewareSession",
           "guard_timeout", "split_url", "encode_frame", "encode_obj",
           "decode_obj", "FrameReader"]


class RequestTimeout(Exception):
    """A middleware request exceeded its caller-supplied deadline.

    Raised (as an event failure) by sessions whose ``get``/``post`` was
    given a ``timeout``; it distinguishes "the network is slow/dead"
    from protocol-level failures so retry policies can treat it as
    transient.
    """


def guard_timeout(sim, result: Event, proc, timeout: Optional[float],
                  detail: str = "") -> None:
    """Enforce ``timeout`` on a session exchange.

    Spawns a watchdog racing ``result`` against a sim-clock deadline;
    if the deadline fires first the exchange process is interrupted
    with a :class:`RequestTimeout` carried as the interrupt cause (the
    exchange fails ``result`` with it and aborts its connection).  A
    ``timeout`` of None installs nothing.
    """
    if timeout is None:
        return

    def watchdog(env):
        expiry = env.timeout(timeout)
        try:
            yield env.any_of([result, expiry])
        except Exception:  # repro: noqa[broad-except] failed result ends the watch
            return
        if not result.triggered:
            proc.interrupt(RequestTimeout(
                f"no middleware response within {timeout:g}s"
                + (f" ({detail})" if detail else "")))

    sim.spawn(watchdog(sim), name="request-timeout")


@dataclass
class MiddlewareResponse:
    """What a mobile application gets back for a URL."""

    status: int
    content_type: str
    body: bytes
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class MiddlewareSession:
    """Interface implemented by WAPSession and IModeSession."""

    middleware_name = "abstract"

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        """Event yielding a MiddlewareResponse (or failing).

        ``trace`` is an optional observability TraceContext; sessions
        propagate it to the middleware server on whatever their protocol
        already carries (frame key or header).  It never changes what
        the request does.

        ``timeout`` is a per-request deadline in sim-seconds: when set
        and no response arrived in time, the event fails with
        :class:`RequestTimeout` and the underlying connection is
        aborted (a fresh one is established on the next request).
        """
        raise NotImplementedError

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def split_url(url: str) -> tuple[str, str]:
    """(host, path-with-query) from an absolute http URL."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"unsupported scheme in {url!r}")
    host = parts.netloc or ""
    if not host:
        raise ValueError(f"URL {url!r} has no host")
    path = parts.path or "/"
    if parts.query:
        path += "?" + parts.query
    return host, path


# ---------------------------------------------------------------- framing
def encode_obj(obj: dict) -> bytes:
    """JSON with bytes values as {"__b64__": ...} (no length prefix).

    Used directly over record-preserving transports (WTLS records);
    :func:`encode_frame` adds the length prefix for byte streams.
    """

    def default(value):
        raise TypeError(f"unencodable {type(value).__name__}")

    prepared = {
        key: ({"__b64__": base64.b64encode(value).decode()}
              if isinstance(value, bytes) else value)
        for key, value in obj.items()
    }
    return json.dumps(prepared, separators=(",", ":"),
                      default=default).encode()


def decode_obj(data: bytes) -> dict:
    """Inverse of :func:`encode_obj`."""
    raw = json.loads(data.decode())
    return {
        key: (base64.b64decode(value["__b64__"])
              if isinstance(value, dict) and "__b64__" in value
              else value)
        for key, value in raw.items()
    }


def encode_frame(obj: dict) -> bytes:
    """Length-prefixed JSON; bytes values become {"__b64__": ...}."""
    body = encode_obj(obj)
    return struct.pack(">I", len(body)) + body


class FrameReader:
    """Incremental decoder for :func:`encode_frame` output."""

    def __init__(self):
        self._buffer = b""

    def feed(self, data: bytes) -> list[dict]:
        self._buffer += data
        frames = []
        while len(self._buffer) >= 4:
            (length,) = struct.unpack(">I", self._buffer[:4])
            if len(self._buffer) < 4 + length:
                break
            raw = json.loads(self._buffer[4: 4 + length].decode())
            self._buffer = self._buffer[4 + length:]
            frames.append({
                key: (base64.b64decode(value["__b64__"])
                      if isinstance(value, dict) and "__b64__" in value
                      else value)
                for key, value in raw.items()
            })
        return frames
