"""Middleware abstraction: what every mobile middleware must provide.

The paper's requirement 5 ("program/data independence: the change of
system components does not affect the existing programs") is enforced
here: applications speak to a :class:`MiddlewareSession` — ``get(url)``
and ``post(url, form)`` returning :class:`MiddlewareResponse` — and
never know whether a WAP gateway or the i-mode service is underneath.
Swapping middleware is a constructor change, which the interoperability
tests exercise for every device x middleware x bearer combination.
"""

from __future__ import annotations

import base64
import json
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional
from urllib.parse import urlsplit

from ..sim import Counter, Event, Interrupt, SimulationError

__all__ = ["RequestTimeout", "MiddlewareResponse", "MiddlewareSession",
           "guard_timeout", "split_url", "encode_frame", "encode_obj",
           "decode_obj", "FrameReader", "BatchConfig", "RequestBatcher",
           "frame_reply"]


class RequestTimeout(Exception):
    """A middleware request exceeded its caller-supplied deadline.

    Raised (as an event failure) by sessions whose ``get``/``post`` was
    given a ``timeout``; it distinguishes "the network is slow/dead"
    from protocol-level failures so retry policies can treat it as
    transient.
    """


def guard_timeout(sim, result: Event, proc, timeout: Optional[float],
                  detail: str = "") -> None:
    """Enforce ``timeout`` on a session exchange.

    Spawns a watchdog racing ``result`` against a sim-clock deadline;
    if the deadline fires first the exchange process is interrupted
    with a :class:`RequestTimeout` carried as the interrupt cause (the
    exchange fails ``result`` with it and aborts its connection).  A
    ``timeout`` of None installs nothing.
    """
    if timeout is None:
        return

    def watchdog(env):
        expiry = env.timeout(timeout)
        try:
            yield env.any_of([result, expiry])
        except Exception:  # repro: noqa[broad-except] failed result ends the watch
            return
        if not result.triggered:
            proc.interrupt(RequestTimeout(
                f"no middleware response within {timeout:g}s"
                + (f" ({detail})" if detail else "")))

    sim.spawn(watchdog(sim), name="request-timeout")


@dataclass
class MiddlewareResponse:
    """What a mobile application gets back for a URL."""

    status: int
    content_type: str
    body: bytes
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class MiddlewareSession:
    """Interface implemented by WAPSession and IModeSession."""

    middleware_name = "abstract"

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        """Event yielding a MiddlewareResponse (or failing).

        ``trace`` is an optional observability TraceContext; sessions
        propagate it to the middleware server on whatever their protocol
        already carries (frame key or header).  It never changes what
        the request does.

        ``timeout`` is a per-request deadline in sim-seconds: when set
        and no response arrived in time, the event fails with
        :class:`RequestTimeout` and the underlying connection is
        aborted (a fresh one is established on the next request).
        """
        raise NotImplementedError

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def split_url(url: str) -> tuple[str, str]:
    """(host, path-with-query) from an absolute http URL."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"unsupported scheme in {url!r}")
    host = parts.netloc or ""
    if not host:
        raise ValueError(f"URL {url!r} has no host")
    path = parts.path or "/"
    if parts.query:
        path += "?" + parts.query
    return host, path


# ---------------------------------------------------------------- framing
def encode_obj(obj: dict) -> bytes:
    """JSON with bytes values as {"__b64__": ...} (no length prefix).

    Used directly over record-preserving transports (WTLS records);
    :func:`encode_frame` adds the length prefix for byte streams.
    """

    def default(value):
        raise TypeError(f"unencodable {type(value).__name__}")

    prepared = {
        key: ({"__b64__": base64.b64encode(value).decode()}
              if isinstance(value, bytes) else value)
        for key, value in obj.items()
    }
    return json.dumps(prepared, separators=(",", ":"),
                      default=default).encode()


def decode_obj(data: bytes) -> dict:
    """Inverse of :func:`encode_obj`."""
    raw = json.loads(data.decode())
    return {
        key: (base64.b64decode(value["__b64__"])
              if isinstance(value, dict) and "__b64__" in value
              else value)
        for key, value in raw.items()
    }


def encode_frame(obj: dict) -> bytes:
    """Length-prefixed JSON; bytes values become {"__b64__": ...}."""
    body = encode_obj(obj)
    return struct.pack(">I", len(body)) + body


class FrameReader:
    """Incremental decoder for :func:`encode_frame` output."""

    def __init__(self):
        self._buffer = b""

    def feed(self, data: bytes) -> list[dict]:
        self._buffer += data
        frames = []
        while len(self._buffer) >= 4:
            (length,) = struct.unpack(">I", self._buffer[:4])
            if len(self._buffer) < 4 + length:
                break
            raw = json.loads(self._buffer[4: 4 + length].decode())
            self._buffer = self._buffer[4 + length:]
            frames.append({
                key: (base64.b64decode(value["__b64__"])
                      if isinstance(value, dict) and "__b64__" in value
                      else value)
                for key, value in raw.items()
            })
        return frames


# ------------------------------------------------- batching + admission
def frame_reply(status: int, message: str,
                retry_after: Optional[float] = None) -> dict:
    """A gateway-originated frame reply (WAP/Palm wire shape)."""
    meta = {} if retry_after is None else {"retry_after": retry_after}
    return {"status": status, "content_type": "text/plain",
            "body": message.encode(), "meta": meta}


@dataclass(frozen=True)
class BatchConfig:
    """Tuning for :class:`RequestBatcher` (DESIGN.md §13).

    ``window``/``max_batch`` bound the accumulate-and-flush loop: at
    most one flush per ``window`` virtual seconds, at most ``max_batch``
    requests per flush, so the gateway's sustained service rate is
    ``max_batch / window`` requests per second regardless of how many
    subscribers are connected.  ``per_item_cost`` is the virtual CPU
    cost charged per batched request, pipelined inside the flush (each
    item starts one cost after the previous, so same-flush handlers
    never resume in one kernel batch, where their order would be
    observable).

    ``watermark`` is the admission-control knob: once that many
    requests are queued, new arrivals are shed immediately with a 503
    whose Retry-After reserves the next free *future* service slot
    (``reserve_factor * window / max_batch`` seconds apart, never
    sooner than ``retry_floor``), so shed clients trickle back at the
    rate the gateway drains instead of re-stampeding in lockstep.
    ``reserve_factor > 1`` deliberately over-spaces reservations,
    leaving slack for fresh arrivals between returning shed clients.
    ``jitter`` spreads the hints (fraction of the hint, needs a seeded
    stream).  ``watermark=0`` disables shedding; everything queues.

    ``pressure_threshold`` composes an *upstream* congestion signal
    into the same shed decision: when the batcher's ``pressure()``
    callable (e.g. the cell's shared-airtime backlog) reports at least
    this many waiters, new arrivals are shed exactly as if the queue
    were over the watermark.  ``0`` disables the pressure gate.
    """

    window: float = 0.05
    max_batch: int = 8
    watermark: int = 0
    retry_floor: float = 0.25
    jitter: float = 0.2
    per_item_cost: float = 0.0
    reserve_factor: float = 1.0
    pressure_threshold: int = 0

    def __post_init__(self):
        if self.window < 0:
            raise ValueError(f"window must be >= 0, got {self.window}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.watermark < 0:
            raise ValueError(f"watermark must be >= 0, got {self.watermark}")
        if self.retry_floor < 0:
            raise ValueError(
                f"retry_floor must be >= 0, got {self.retry_floor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.per_item_cost < 0:
            raise ValueError(
                f"per_item_cost must be >= 0, got {self.per_item_cost}")
        if self.reserve_factor < 1.0:
            raise ValueError(
                f"reserve_factor must be >= 1, got {self.reserve_factor}")
        if self.pressure_threshold < 0:
            raise ValueError(
                f"pressure_threshold must be >= 0, "
                f"got {self.pressure_threshold}")

    @property
    def drain_gap(self) -> float:
        """Virtual seconds one shed reservation advances the pointer."""
        return self.reserve_factor * self.window / self.max_batch


class RequestBatcher:
    """Accumulate-and-flush front end for a gateway request handler.

    Serve loops call :meth:`submit` instead of invoking the handler
    inline and yield the returned event for the reply.  One flush
    process drains the queue in paced batches (see :class:`BatchConfig`)
    and spawns the handler per admitted request, so middleware occupancy
    is bounded by the batch size rather than scaling with concurrent
    subscribers.  ``handler(request, parent=...)`` is the gateway's
    usual per-request generator; ``reply_factory(status, message,
    retry_after)`` builds protocol-shaped shed/error replies.

    Everything runs on the sim clock with seeded jitter only, so
    batched runs stay byte-identical under the determinism guards.
    """

    def __init__(self, sim, config: BatchConfig,
                 handler: Callable, reply_factory: Callable,
                 stream=None, stats: Optional[Counter] = None,
                 name: str = "gw-batcher",
                 pressure: Optional[Callable[[], int]] = None,
                 metrics=None, metric_name: Optional[str] = None):
        self.sim = sim
        self.config = config
        self.handler = handler
        self.reply_factory = reply_factory
        self.stream = stream
        # Upstream congestion probe (RAN backpressure); consulted per
        # submit when the config sets a pressure_threshold.
        self.pressure = pressure
        self.stats = stats if stats is not None else Counter()
        # Optional live export through repro.obs.metrics: queue depth as
        # a first-class gauge (updated on every enqueue/dequeue) and the
        # shed counters mirrored into a registry counter, so health
        # checks and autoscalers read current values instead of poking
        # batcher internals.  Purely observational — never consulted by
        # the batcher itself, so wiring it changes no virtual behaviour.
        self.depth_gauge = None
        self.shed_counter = None
        if metrics is not None:
            prefix = metric_name or name
            self.depth_gauge = metrics.gauge(f"{prefix}.queue_depth")
            self.shed_counter = metrics.counter(f"{prefix}.sheds")
        self._queue: Deque[tuple] = deque()
        self._wakeup: Optional[Event] = None
        self._last_flush: Optional[float] = None
        # Virtual-FIFO reservation pointer for shed Retry-After hints:
        # each shed claims the next future service slot, so hints grow
        # with (virtual) queue depth and returns arrive spread out.
        self._next_slot = 0.0
        sim.spawn(self._flush_loop(), name=name)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _sync_depth(self) -> None:
        if self.depth_gauge is not None:
            self.depth_gauge.set(len(self._queue))

    def submit(self, request, parent=None) -> Event:
        """Enqueue (or shed) a request; event yields the reply."""
        done = self.sim.event()
        cfg = self.config
        if cfg.watermark and len(self._queue) >= cfg.watermark:
            self.stats.incr("admission_sheds")
            if self.shed_counter is not None:
                self.shed_counter.incr("admission")
            done.succeed(self.reply_factory(
                503, "gateway overloaded", self._reserve_slot()))
            return done
        if (cfg.pressure_threshold and self.pressure is not None
                and self.pressure() >= cfg.pressure_threshold):
            # RAN backpressure: the radio is already backlogged, so a
            # reply would queue behind the very congestion the client
            # is suffering.  Park the client on a reservation instead.
            self.stats.incr("pressure_sheds")
            if self.shed_counter is not None:
                self.shed_counter.incr("pressure")
            done.succeed(self.reply_factory(
                503, "air interface congested", self._reserve_slot()))
            return done
        self._queue.append((request, parent, done))
        self._sync_depth()
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)
        return done

    def reject_pending(self, message: str = "gateway unavailable") -> None:
        """Fail-fast every queued request (crash hook): waiting serve
        loops wake with a 503 instead of blocking forever."""
        while self._queue:
            _request, _parent, done = self._queue.popleft()
            if not done.triggered:
                done.succeed(self.reply_factory(
                    503, message, self.config.retry_floor))
        self._sync_depth()

    def _reserve_slot(self) -> float:
        cfg = self.config
        now = self.sim.now
        base = max(self._next_slot, now + cfg.retry_floor)
        self._next_slot = base + cfg.drain_gap
        hint = base - now
        if self.stream is not None and cfg.jitter > 0:
            hint *= 1.0 + cfg.jitter * (2.0 * self.stream.random() - 1.0)
        return round(hint, 6)

    def _flush_loop(self):
        sim = self.sim
        cfg = self.config
        while True:
            if not self._queue:
                self._wakeup = sim.event()
                yield self._wakeup
                self._wakeup = None
            if cfg.window > 0 and self._last_flush is not None:
                wait = self._last_flush + cfg.window - sim.now
                if wait > 0:
                    yield sim.timeout(wait)
            batch = [self._queue.popleft()
                     for _ in range(min(cfg.max_batch, len(self._queue)))]
            self._sync_depth()
            if not batch:
                # Drained while pacing (crash hook): nothing to flush.
                continue
            self._last_flush = sim.now
            self.stats.incr("batches")
            self.stats.incr("batched_requests", len(batch))
            for request, parent, done in batch:
                if cfg.per_item_cost > 0:
                    # Pipeline the per-item cost: consecutive items
                    # start one cost apart, never in the same kernel
                    # batch — two handlers resuming at one timestamp
                    # both write the gateway counters, and the
                    # commutativity sanitizer proves that order leaks
                    # into the report (flush counts diverge on flip).
                    yield sim.timeout(cfg.per_item_cost)
                sim.spawn(self._run_item(request, parent, done),
                          name="gw-batch-item")

    def _run_item(self, request, parent, done):
        try:
            reply = yield from self.handler(request, parent=parent)
        except (Interrupt, SimulationError):
            # Kernel control flow: settle the waiter, then propagate.
            if not done.triggered:
                done.succeed(self.reply_factory(
                    503, "gateway interrupted", self.config.retry_floor))
            raise
        except Exception as exc:  # repro: noqa[broad-except] batch barrier
            # The serve loop must never hang on a reply that will not
            # come; handler bugs become a 500, matching the CGI barrier.
            self.stats.incr("batch_item_errors")
            reply = self.reply_factory(
                500, f"{type(exc).__name__}: {exc}", None)
        if not done.triggered:
            done.succeed(reply)
