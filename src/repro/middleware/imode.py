"""i-mode: the always-on packet Internet service (paper §5.1, Table 3).

Where WAP is "a protocol" with a translating gateway, i-mode is "a
complete mobile Internet service": phones keep an always-on packet
session to the i-mode centre, which proxies ordinary HTTP to content
providers and serves cHTML ("TCP/IP modifications" rather than a new
stack).  The centre adapts legacy HTML to compact HTML; content
authored as cHTML passes through untouched.

The contrast the Table 3 benchmark measures falls out of the two
implementations: an :class:`IModeSession` holds one persistent
keep-alive connection (no per-request session establishment) and the
centre does cheap tag-stripping instead of full WML transcoding.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Deque, Optional
from urllib.parse import urlencode

from ..net.addressing import IPAddress
from ..net.dns import NameRegistry
from ..net.node import Node
from ..net.tcp import TCPConnection, TCPStack, tcp_stack
from ..obs import ctx_of, end_span, start_span
from ..opt import OPTIMIZATIONS
from ..sim import Counter, Event, Interrupt, RandomStream
from ..web.client import HTTPClient
from ..web.http import HTTPRequest, HTTPResponse, RequestParser, ResponseParser
from .base import (
    BatchConfig,
    MiddlewareResponse,
    MiddlewareSession,
    RequestBatcher,
    guard_timeout,
    split_url,
)
from .chtml import CHTML_CONTENT_TYPE, is_compact, to_chtml

__all__ = ["IModeCenter", "IModeSession", "IMODE_PORT"]

IMODE_PORT = 8700
ADAPTATION_TIME_PER_KB = 0.000_5  # tag stripping is cheap


def _http_reply(status: int, message: str,
                retry_after: Optional[float] = None) -> HTTPResponse:
    """Centre-originated shed/error reply (HTTP wire shape)."""
    headers = {"content-type": "text/plain"}
    if retry_after is not None:
        headers["retry-after"] = f"{retry_after:g}"
    return HTTPResponse(status, headers, message)


class IModeCenter:
    """NTT DoCoMo's packet-gateway-plus-portal, as an HTTP proxy."""

    # Table 3 properties (cross-checked by the static model checker).
    markup = "cHTML"
    session_model = "always-on"
    payload_limit: Optional[int] = None

    def __init__(self, node: Node, registry: NameRegistry,
                 port: int = IMODE_PORT, tcp: Optional[TCPStack] = None,
                 breaker=None, origin_timeout: float = 30.0,
                 batching: Optional[BatchConfig] = None,
                 batch_stream: Optional[RandomStream] = None,
                 air_pressure=None, handicap: float = 0.0,
                 metrics=None, metric_name: Optional[str] = None):
        if handicap < 0:
            raise ValueError(f"handicap must be >= 0, got {handicap}")
        self.node = node
        self.sim = node.sim
        self.registry = registry
        self.port = port
        self.tcp = tcp or tcp_stack(node)
        self.http = HTTPClient(node, tcp=self.tcp)
        self.breaker = breaker
        self.origin_timeout = origin_timeout
        self.stats = Counter()
        # Transparent cHTML adaptation cache keyed by a digest of the
        # origin body.  Memoizes the pure is_compact / to_chtml work
        # only — the adaptation timeout is still charged and counters
        # still tick on hits, so the virtual timeline is unchanged.
        # Flushed on crash and restart (cold cache after reboot).
        self._adaptations: dict[bytes, tuple] = {}
        self.adaptation_cache_hits = 0
        # Per-request service handicap in sim-seconds (0 = none); the
        # public knob canary "v2" variants use for degraded builds.
        self.handicap = handicap
        # Optional accumulate-and-flush batching + admission control
        # (None keeps the legacy inline path bit-for-bit).
        self.batcher = None
        if batching is not None:
            self.batcher = RequestBatcher(
                self.sim, batching, handler=self._proxy,
                reply_factory=_http_reply, stream=batch_stream,
                stats=self.stats, name=f"imode-batch@{node.name}",
                pressure=air_pressure, metrics=metrics,
                metric_name=metric_name)
        self.is_down = False
        self._conns: list[TCPConnection] = []
        self._listener = self.tcp.listen(port)
        self.sim.spawn(self._accept_loop(), name=f"imode@{node.name}")

    # -- fault hooks -------------------------------------------------------
    def crash(self) -> None:
        if self.is_down:
            return
        self.is_down = True
        self.stats.incr("crashes")
        self._adaptations.clear()
        if self.batcher is not None:
            self.batcher.reject_pending("centre crashed")
        for conn in self._conns:
            conn.close()
        self._conns.clear()

    def restart(self) -> None:
        if not self.is_down:
            return
        self.is_down = False
        self.stats.incr("restarts")
        self._adaptations.clear()

    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            if self.is_down:
                conn.close()
                continue
            self._conns.append(conn)
            self.stats.incr("subscriber_sessions")
            self.sim.spawn(self._serve(conn), name="imode-session")

    def _serve(self, conn: TCPConnection):
        parser = RequestParser()
        while True:
            chunk = yield conn.recv()
            if chunk == b"":
                if conn in self._conns:
                    self._conns.remove(conn)
                return
            for request in parser.feed(chunk):
                # conn.trace arrives as packet metadata via TCP.
                if self.batcher is not None:
                    response = yield self.batcher.submit(request,
                                                         parent=conn.trace)
                else:
                    response = yield from self._proxy(request,
                                                      parent=conn.trace)
                if self.is_down or \
                        conn.state not in (TCPConnection.ESTABLISHED,
                                           TCPConnection.CLOSE_WAIT):
                    if conn in self._conns:
                        self._conns.remove(conn)
                    return
                response.headers["connection"] = "keep-alive"
                conn.send(response.encode())

    def _proxy(self, request: HTTPRequest, parent=None):
        self.stats.incr("requests")
        if self.handicap > 0:
            yield self.sim.timeout(self.handicap)
        span = None
        if self.sim.tracer is not None and parent is not None:
            span = start_span(self.sim, "imode.center", "middleware",
                              parent=parent, url=request.path)
        try:
            response = yield from self._proxy_inner(request, span)
        finally:
            end_span(self.sim, span)
        return response

    def _proxy_inner(self, request: HTTPRequest, span):
        try:
            host, path = split_url(request.path)
        except ValueError as exc:
            return HTTPResponse(400, {"content-type": "text/plain"},
                                str(exc))
        origin = self.registry.lookup(host)
        if origin is None:
            self.stats.incr("dns_failures")
            return HTTPResponse(502, {"content-type": "text/plain"},
                                f"cannot resolve {host}")
        if self.breaker is not None and not self.breaker.allow():
            self.stats.incr("breaker_rejections")
            return HTTPResponse(
                503,
                {"content-type": "text/plain",
                 "retry-after": f"{self.breaker.retry_after:g}"},
                b"centre circuit open")
        if request.method == "POST":
            upstream = yield self.http.post(origin, path, request.body,
                                            timeout=self.origin_timeout,
                                            trace=ctx_of(span))
        else:
            upstream = yield self.http.get(origin, path,
                                           timeout=self.origin_timeout,
                                           trace=ctx_of(span))
        if upstream is None:
            self.stats.incr("origin_timeouts")
            if self.breaker is not None:
                self.breaker.record_failure()
            return HTTPResponse(504, {"content-type": "text/plain"},
                                "origin timeout")
        if self.breaker is not None:
            if upstream.status >= 500:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        return (yield from self._adapt(upstream, parent=span))

    def _adapt(self, upstream: HTTPResponse, parent=None):
        span = None
        if parent is not None:
            span = start_span(self.sim, "imode.adapt", "middleware",
                              parent=parent)
        content_type = upstream.content_type
        body = upstream.body
        if "text/html" in content_type:
            digest = hashlib.sha1(body).digest()
            hit = (self._adaptations.get(digest)
                   if OPTIMIZATIONS.translation_cache else None)
            if hit is not None:
                self.adaptation_cache_hits += 1
                compact, adapted = hit
            else:
                text = body.decode("utf-8", errors="replace")
                compact = is_compact(text)
                adapted = None if compact else to_chtml(text).encode()
                if OPTIMIZATIONS.translation_cache:
                    self._adaptations[digest] = (compact, adapted)
            if compact:
                content_type = CHTML_CONTENT_TYPE
                self.stats.incr("passthrough")
            else:
                # Adaptation CPU cost is charged on hits too: the cache
                # saves host time, never virtual time.
                yield self.sim.timeout(
                    ADAPTATION_TIME_PER_KB * max(1, len(body) // 1024)
                )
                body = adapted
                content_type = CHTML_CONTENT_TYPE
                self.stats.incr("adaptations")
        end_span(self.sim, span, delivered_bytes=len(body))
        headers = {"content-type": content_type}
        retry_after = upstream.headers.get("retry-after")
        if retry_after is not None:
            # Keep the origin's backpressure hint for the handset.
            headers["retry-after"] = retry_after
        return HTTPResponse(upstream.status, headers, body)


class IModeSession(MiddlewareSession):
    """A subscriber's always-on connection to the i-mode centre."""

    middleware_name = "i-mode"
    session_model = "always-on"

    def __init__(self, node: Node, center_address: IPAddress,
                 port: int = IMODE_PORT, tcp: Optional[TCPStack] = None):
        self.node = node
        self.sim = node.sim
        self.center_address = center_address
        self.port = port
        self.tcp = tcp or tcp_stack(node)
        self.stats = Counter()
        self._conn: Optional[TCPConnection] = None
        self._parser = ResponseParser()
        self._responses: Deque[HTTPResponse] = deque()
        # Serialise concurrent callers on the always-on connection.
        from ..sim import Resource
        self._mutex = Resource(self.sim, capacity=1)

    def _ensure_connected(self):
        if self._conn is not None and \
                self._conn.state == TCPConnection.ESTABLISHED:
            return
        self._conn = self.tcp.connect(self.center_address, self.port)
        self.stats.incr("session_establishments")
        yield self._conn.established_event

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        request = HTTPRequest("GET", url, {"connection": "keep-alive"})
        return self._roundtrip(request, trace=trace, timeout=timeout)

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        request = HTTPRequest(
            "POST", url,
            {"connection": "keep-alive",
             "content-type": "application/x-www-form-urlencoded"},
            body=urlencode(form).encode(),
        )
        return self._roundtrip(request, trace=trace, timeout=timeout)

    def _roundtrip(self, request: HTTPRequest, trace=None,
                   timeout: Optional[float] = None) -> Event:
        result = self.sim.event()
        span = None
        if trace is not None:
            span = start_span(self.sim, "imode.request", "middleware",
                              parent=trace, url=request.path)

        def exchange(env):
            grant = self._mutex.request()
            try:
                yield grant
                yield from self._ensure_connected()
                if span is not None:
                    self._conn.trace = span.context()
                self._conn.send(request.encode())
                self.stats.incr("requests")
                while not self._responses:
                    chunk = yield self._conn.recv()
                    if chunk == b"":
                        result.fail(ConnectionError("i-mode session closed"))
                        return
                    self._responses.extend(self._parser.feed(chunk))
                response = self._responses.popleft()
                meta = {"delivered_bytes": len(response.body)}
                retry_after = response.headers.get("retry-after")
                if retry_after is not None:
                    meta["retry_after"] = float(retry_after)
                result.succeed(MiddlewareResponse(
                    status=response.status,
                    content_type=response.content_type,
                    body=response.body,
                    meta=meta,
                ))
            except Interrupt as exc:
                self.stats.incr("request_timeouts")
                self._abort()
                if not result.triggered:
                    result.fail(exc.cause if isinstance(exc.cause, Exception)
                                else ConnectionError("request interrupted"))
            finally:
                if grant.triggered:
                    self._mutex.release(grant)
                else:
                    grant.cancel()
                end_span(self.sim, span)

        proc = self.sim.spawn(exchange(self.sim), name="imode-get")
        guard_timeout(self.sim, result, proc, timeout, detail=request.path)
        return result

    def _abort(self) -> None:
        self.close()
        self._parser = ResponseParser()
        self._responses.clear()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
