"""Mobile middleware component (paper §5): WAP, i-mode, content adaptation."""

from .adaptation import (
    CARD_TEXT_LIMIT,
    extract_links,
    extract_title,
    html_to_wml,
    personalize,
    strip_tags,
)
from .base import (
    BatchConfig,
    FrameReader,
    RequestBatcher,
    decode_obj,
    encode_obj,
    frame_reply,
    MiddlewareResponse,
    MiddlewareSession,
    RequestTimeout,
    encode_frame,
    guard_timeout,
    split_url,
)
from .direct import DirectHTTPSession
from .chtml import ALLOWED_TAGS, CHTML_CONTENT_TYPE, is_compact, to_chtml
from .imode import IMODE_PORT, IModeCenter, IModeSession
from .palm import (
    CLIPPING_CONTENT_TYPE,
    CLIPPING_PORT,
    PalmSession,
    WebClippingProxy,
)
from .wap import WAPGateway, WAPSession, WSP_PORT, WTLS_PORT
from .wml import (
    WML_CONTENT_TYPE,
    WMLC_CONTENT_TYPE,
    WMLCard,
    WMLDocument,
    WMLError,
    decode_wmlc,
    encode_wmlc,
    parse_wml,
)

__all__ = [
    "CARD_TEXT_LIMIT",
    "extract_links",
    "extract_title",
    "html_to_wml",
    "personalize",
    "strip_tags",
    "BatchConfig",
    "RequestBatcher",
    "frame_reply",
    "FrameReader",
    "MiddlewareResponse",
    "MiddlewareSession",
    "RequestTimeout",
    "TABLE3_PROPERTIES",
    "guard_timeout",
    "encode_frame",
    "encode_obj",
    "decode_obj",
    "split_url",
    "ALLOWED_TAGS",
    "CHTML_CONTENT_TYPE",
    "is_compact",
    "to_chtml",
    "DirectHTTPSession",
    "IMODE_PORT",
    "IModeCenter",
    "IModeSession",
    "CLIPPING_CONTENT_TYPE",
    "CLIPPING_PORT",
    "PalmSession",
    "WebClippingProxy",
    "WAPGateway",
    "WAPSession",
    "WSP_PORT",
    "WTLS_PORT",
    "WML_CONTENT_TYPE",
    "WMLC_CONTENT_TYPE",
    "WMLCard",
    "WMLDocument",
    "WMLError",
    "decode_wmlc",
    "encode_wmlc",
    "parse_wml",
]

# Table 3's middleware properties, as the paper states them: markup
# language served to the device, session model, and the per-response
# payload ceiling (None = unlimited).  The static model checker
# cross-validates built gateways and sessions against this registry.
TABLE3_PROPERTIES = {
    "WAP": {"markup": "WML", "session_model": "gateway-session",
            "payload_limit": None},
    "i-mode": {"markup": "cHTML", "session_model": "always-on",
               "payload_limit": None},
    "Palm": {"markup": "web-clipping", "session_model": "request-response",
             "payload_limit": 1024},
}
