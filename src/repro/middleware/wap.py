"""WAP: the gateway and the device-side session (paper §5.1, Table 3).

"Requests from mobile stations are sent as a URL through the network to
the WAP Gateway; responses are sent from the Web server to the WAP
Gateway in HTML and are then translated in WML and sent to the mobile
stations."  That is literally the :class:`WAPGateway` request path:

    mobile --WSP--> gateway --DNS+HTTP--> origin web server
    mobile <--WMLC-- gateway <--HTML------ origin

Simplifications (documented per DESIGN.md): WSP/WTP run over our TCP
rather than WDP/UDP, and the session is one TCP connection per
:class:`WAPSession` — which preserves the property Table 3's benchmark
measures: WAP pays a gateway hop plus per-request translation, and
must *establish* a session before the first byte, while i-mode is
always-on.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Deque, Optional
from urllib.parse import urlencode

from ..net.addressing import IPAddress
from ..net.dns import NameRegistry
from ..net.node import Node
from ..net.tcp import TCPConnection, TCPStack, tcp_stack
from ..obs import ctx_of, end_span, start_span
from ..opt import OPTIMIZATIONS
from ..security.wtls import SecureChannel, SecurityError
from ..sim import Counter, Event, Interrupt, RandomStream
from ..web.client import HTTPClient
from .adaptation import html_to_wml
from .base import (
    BatchConfig,
    FrameReader,
    MiddlewareResponse,
    MiddlewareSession,
    RequestBatcher,
    decode_obj,
    encode_frame,
    encode_obj,
    frame_reply,
    guard_timeout,
    split_url,
)
from .wml import WML_CONTENT_TYPE, WMLC_CONTENT_TYPE, encode_wmlc, parse_wml

__all__ = ["WAPGateway", "WAPSession", "WSP_PORT", "WTLS_PORT"]

WSP_PORT = 9201
WTLS_PORT = 9203  # WAP's registered secure-session port
TRANSLATION_TIME_PER_KB = 0.002  # HTML->WML transcoding CPU cost


class WAPGateway:
    """The protocol translation point between wireless and wired worlds."""

    # Table 3 properties (cross-checked by the static model checker).
    markup = "WML"
    session_model = "gateway-session"
    payload_limit: Optional[int] = None

    def __init__(self, node: Node, registry: NameRegistry,
                 port: int = WSP_PORT, tcp: Optional[TCPStack] = None,
                 entropy: Optional[RandomStream] = None,
                 wtls_port: int = WTLS_PORT,
                 cache_ttl: float = 0.0,
                 breaker=None, origin_timeout: float = 30.0,
                 batching: Optional[BatchConfig] = None,
                 batch_stream: Optional[RandomStream] = None,
                 air_pressure=None, handicap: float = 0.0,
                 metrics=None, metric_name: Optional[str] = None):
        if handicap < 0:
            raise ValueError(f"handicap must be >= 0, got {handicap}")
        self.node = node
        self.sim = node.sim
        self.registry = registry
        self.port = port
        self.wtls_port = wtls_port
        self.tcp = tcp or tcp_stack(node)
        self.http = HTTPClient(node, tcp=self.tcp)
        self.entropy = entropy
        # Optional CircuitBreaker guarding gateway -> origin calls.
        self.breaker = breaker
        self.origin_timeout = origin_timeout
        # Response cache for GETs (real gateways cached aggressively to
        # spare the air interface); 0 disables it.
        self.cache_ttl = cache_ttl
        self._cache: dict[tuple, tuple[float, dict]] = {}
        # Transparent WML compile cache, keyed by a digest of the origin
        # body (plus the binary-encoding request flag).  It memoizes the
        # pure html_to_wml / encode_wmlc work only: the translation
        # timeout is still charged and every counter still ticks, so a
        # hit is invisible to the virtual timeline.  Flushed on crash
        # and restart — a rebooted gateway has a cold cache.
        self._translations: dict[tuple, tuple] = {}
        self.translation_cache_hits = 0
        self.stats = Counter()
        # Per-request service handicap in sim-seconds, charged before
        # handling.  0 (the default) adds no event and keeps legacy
        # runs bit-for-bit; canary "v2" variants use it as the public
        # knob for a deliberately degraded build.
        self.handicap = handicap
        # Optional accumulate-and-flush batching + admission control:
        # serve loops route requests through the batcher when present
        # (None keeps the legacy inline path bit-for-bit).
        self.batcher = None
        if batching is not None:
            self.batcher = RequestBatcher(
                self.sim, batching, handler=self._handle,
                reply_factory=frame_reply, stream=batch_stream,
                stats=self.stats, name=f"wap-batch@{node.name}",
                pressure=air_pressure, metrics=metrics,
                metric_name=metric_name)
        self.is_down = False
        self._conns: list[TCPConnection] = []
        self._listener = self.tcp.listen(port)
        self.sim.spawn(self._accept_loop(), name=f"wap-gw@{node.name}")
        # WTLS: WAP's transport security layer, on its registered port.
        # Enabled only when the gateway is given an entropy stream.
        if entropy is not None:
            self._secure_listener = self.tcp.listen(wtls_port)
            self.sim.spawn(self._secure_accept_loop(),
                           name=f"wap-wtls@{node.name}")

    # -- fault hooks -------------------------------------------------------
    def crash(self) -> None:
        """Hard-stop: every established session is severed; new sessions
        are refused (closed immediately) until :meth:`restart`."""
        if self.is_down:
            return
        self.is_down = True
        self.stats.incr("crashes")
        self._translations.clear()
        if self.batcher is not None:
            self.batcher.reject_pending("gateway crashed")
        for conn in self._conns:
            conn.close()
        self._conns.clear()

    def restart(self) -> None:
        if not self.is_down:
            return
        self.is_down = False
        self.stats.incr("restarts")
        self._translations.clear()

    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            if self.is_down:
                conn.close()
                continue
            self._conns.append(conn)
            self.stats.incr("wsp_sessions")
            self.sim.spawn(self._serve(conn), name="wsp-session")

    def _secure_accept_loop(self):
        while True:
            conn = yield self._secure_listener.accept()
            if self.is_down:
                conn.close()
                continue
            self._conns.append(conn)
            self.stats.incr("wtls_sessions")
            self.sim.spawn(self._serve_secure(conn), name="wtls-session")

    def _serve_secure(self, conn: TCPConnection):
        channel = SecureChannel(conn, self.entropy)
        try:
            yield channel.handshake_server()
        except SecurityError:
            self.stats.incr("wtls_handshake_failures")
            self._forget(conn)
            return
        while True:
            try:
                record = yield channel.recv()
            except SecurityError:
                self.stats.incr("wtls_record_failures")
                self._forget(conn)
                return
            if record == b"":
                self._forget(conn)
                return
            request = decode_obj(record)
            if self.batcher is not None:
                reply = yield self.batcher.submit(request,
                                                  parent=conn.trace)
            else:
                reply = yield from self._handle(request,
                                                parent=conn.trace)
            if self.is_down or \
                    conn.state not in (TCPConnection.ESTABLISHED,
                                       TCPConnection.CLOSE_WAIT):
                # Crashed (or peer gone) while handling: drop the reply.
                self._forget(conn)
                return
            channel.send(encode_obj(reply))

    def _serve(self, conn: TCPConnection):
        reader = FrameReader()
        while True:
            chunk = yield conn.recv()
            if chunk == b"":
                self._forget(conn)
                return
            for request in reader.feed(chunk):
                # conn.trace arrives as packet metadata via TCP.
                if self.batcher is not None:
                    reply = yield self.batcher.submit(request,
                                                      parent=conn.trace)
                else:
                    reply = yield from self._handle(request,
                                                    parent=conn.trace)
                if self.is_down or \
                        conn.state not in (TCPConnection.ESTABLISHED,
                                           TCPConnection.CLOSE_WAIT):
                    self._forget(conn)
                    return
                conn.send(encode_frame(reply))

    def _forget(self, conn: TCPConnection) -> None:
        if conn in self._conns:
            self._conns.remove(conn)

    def _handle(self, request: dict, parent=None):
        self.stats.incr("wsp_requests")
        if self.handicap > 0:
            yield self.sim.timeout(self.handicap)
        span = None
        if self.sim.tracer is not None and parent is not None:
            span = start_span(self.sim, "wap.gateway", "middleware",
                              parent=parent,
                              url=request.get("url", ""))
        try:
            reply = yield from self._handle_inner(request, span)
        finally:
            end_span(self.sim, span)
        return reply

    def _handle_inner(self, request: dict, span):
        url = request.get("url", "")
        method = request.get("method", "GET").upper()
        cache_key = (method, url, request.get("accept", ""))
        if self.cache_ttl > 0 and method == "GET":
            cached = self._cache.get(cache_key)
            if cached is not None and \
                    self.sim.now - cached[0] <= self.cache_ttl:
                self.stats.incr("cache_hits")
                reply = dict(cached[1])
                reply["meta"] = dict(reply.get("meta", {}), cache_hit=True)
                return reply
        try:
            host, path = split_url(url)
        except ValueError as exc:
            return {"status": 400, "content_type": "text/plain",
                    "body": str(exc).encode(), "meta": {}}
        origin = self.registry.lookup(host)
        if origin is None:
            self.stats.incr("dns_failures")
            return {"status": 502, "content_type": "text/plain",
                    "body": f"cannot resolve {host}".encode(), "meta": {}}

        if self.breaker is not None and not self.breaker.allow():
            self.stats.incr("breaker_rejections")
            return {"status": 503, "content_type": "text/plain",
                    "body": b"gateway circuit open",
                    "meta": {"retry_after": self.breaker.retry_after}}

        # Negotiate: origins that author native WML serve it directly
        # (no transcoding); others fall back to HTML for translation.
        negotiate = {"accept": f"{WML_CONTENT_TYPE}, text/html"}
        method = request.get("method", "GET").upper()
        if method == "POST":
            response = yield self.http.post(
                origin, path, request.get("body", b""),
                headers=negotiate, timeout=self.origin_timeout,
                trace=ctx_of(span))
        else:
            response = yield self.http.get(origin, path,
                                           headers=negotiate,
                                           timeout=self.origin_timeout,
                                           trace=ctx_of(span))
        if response is None:
            self.stats.incr("origin_timeouts")
            if self.breaker is not None:
                self.breaker.record_failure()
            return {"status": 504, "content_type": "text/plain",
                    "body": b"origin timeout", "meta": {}}
        if self.breaker is not None:
            # 5xx (including load-shed 503s) count against the origin.
            if response.status >= 500:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()

        reply = yield from self._translate(request, response, parent=span)
        if self.cache_ttl > 0 and method == "GET" and \
                reply.get("status") == 200:
            self._cache[cache_key] = (self.sim.now, reply)
        return reply

    def _translate(self, request: dict, response, parent=None):
        """HTML -> WML (-> WMLC) translation of the origin response."""
        span = None
        if parent is not None:
            span = start_span(self.sim, "wap.translate", "middleware",
                              parent=parent)
        content_type = response.content_type
        body = response.body
        meta = {"translated": False, "origin_bytes": len(body)}
        retry_after = response.headers.get("retry-after")
        if retry_after is not None:
            # Backpressure hints survive translation so device-side
            # retry policies can honour them.
            meta["retry_after"] = float(retry_after)
        wants_binary = request.get("accept", WMLC_CONTENT_TYPE) == \
            WMLC_CONTENT_TYPE

        if "text/html" in content_type:
            # The transcoding CPU cost is charged whether or not the
            # compile cache hits: the cache saves host time, never
            # virtual time (same-seed runs stay byte-identical).
            yield self.sim.timeout(
                TRANSLATION_TIME_PER_KB * max(1, len(body) // 1024)
            )
            cache_key = ("html", hashlib.sha1(body).digest(), wants_binary)
            hit = (self._translations.get(cache_key)
                   if OPTIMIZATIONS.translation_cache else None)
            if hit is not None:
                self.translation_cache_hits += 1
                body, content_type, cards = hit
            else:
                document = html_to_wml(body.decode("utf-8", errors="replace"))
                cards = len(document.cards)
                if wants_binary:
                    body = encode_wmlc(document)
                    content_type = WMLC_CONTENT_TYPE
                else:
                    body = document.to_xml().encode()
                    content_type = WML_CONTENT_TYPE
                if OPTIMIZATIONS.translation_cache:
                    self._translations[cache_key] = (body, content_type, cards)
            meta["translated"] = True
            meta["cards"] = cards
            self.stats.incr("translations")
            if wants_binary:
                self.stats.incr("wmlc_encodings")
        elif content_type == WML_CONTENT_TYPE and wants_binary:
            cache_key = ("wml", hashlib.sha1(body).digest(), True)
            hit = (self._translations.get(cache_key)
                   if OPTIMIZATIONS.translation_cache else None)
            if hit is not None:
                self.translation_cache_hits += 1
                body = hit[0]
            else:
                document = parse_wml(body.decode())
                body = encode_wmlc(document)
                if OPTIMIZATIONS.translation_cache:
                    self._translations[cache_key] = (body,)
            content_type = WMLC_CONTENT_TYPE
            self.stats.incr("wmlc_encodings")

        meta["delivered_bytes"] = len(body)
        end_span(self.sim, span, translated=meta["translated"],
                 delivered_bytes=len(body))
        return {"status": response.status, "content_type": content_type,
                "body": body, "meta": meta}


class WAPSession(MiddlewareSession):
    """Device-side WSP session to a gateway."""

    middleware_name = "WAP"
    session_model = "gateway-session"

    def __init__(self, node: Node, gateway_address: IPAddress,
                 port: Optional[int] = None,
                 accept: str = WMLC_CONTENT_TYPE,
                 tcp: Optional[TCPStack] = None,
                 secure: bool = False,
                 entropy: Optional[RandomStream] = None):
        if secure and entropy is None:
            raise ValueError("secure WAP sessions need an entropy stream")
        self.node = node
        self.sim = node.sim
        self.gateway_address = gateway_address
        self.secure = secure
        self.entropy = entropy
        self.port = port if port is not None else (
            WTLS_PORT if secure else WSP_PORT)
        self.accept = accept
        self.tcp = tcp or tcp_stack(node)
        self.stats = Counter()
        self._conn: Optional[TCPConnection] = None
        self._channel: Optional[SecureChannel] = None
        self._reader = FrameReader()
        self._frames: Deque[dict] = deque()
        # One request at a time per WSP session: concurrent callers are
        # serialised so replies match their requests.
        from ..sim import Resource
        self._mutex = Resource(self.sim, capacity=1)

    def _ensure_connected(self):
        """Generator: establishes the WSP (or WTLS) session on first use."""
        if self._conn is not None and \
                self._conn.state == TCPConnection.ESTABLISHED:
            return
        self._conn = self.tcp.connect(self.gateway_address, self.port)
        self.stats.incr("session_establishments")
        yield self._conn.established_event
        if self.secure:
            self._channel = SecureChannel(self._conn, self.entropy)
            yield self._channel.handshake_client()
            self.stats.incr("wtls_handshakes")

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        return self._roundtrip({"method": "GET", "url": url,
                                "accept": self.accept}, trace=trace,
                               timeout=timeout)

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        return self._roundtrip({
            "method": "POST",
            "url": url,
            "accept": self.accept,
            "body": urlencode(form).encode(),
        }, trace=trace, timeout=timeout)

    def _roundtrip(self, request: dict, trace=None,
                   timeout: Optional[float] = None) -> Event:
        result = self.sim.event()
        span = None
        if trace is not None:
            span = start_span(self.sim, "wsp.request", "middleware",
                              parent=trace, url=request.get("url", ""))

        def exchange(env):
            grant = self._mutex.request()
            try:
                yield grant
                connect_span = None
                if span is not None and (
                    self._conn is None
                    or self._conn.state != TCPConnection.ESTABLISHED
                ):
                    connect_span = start_span(self.sim, "wsp.connect",
                                              "middleware", parent=span)
                yield from self._ensure_connected()
                end_span(self.sim, connect_span)
                if span is not None:
                    self._conn.trace = span.context()
                self.stats.incr("requests")
                if self.secure:
                    self._channel.send(encode_obj(request))
                    record = yield self._channel.recv()
                    if record == b"":
                        result.fail(ConnectionError("WTLS session closed"))
                        return
                    frame = decode_obj(record)
                else:
                    self._conn.send(encode_frame(request))
                    while not self._frames:
                        chunk = yield self._conn.recv()
                        if chunk == b"":
                            result.fail(
                                ConnectionError("WSP session closed"))
                            return
                        self._frames.extend(self._reader.feed(chunk))
                    frame = self._frames.popleft()
                result.succeed(MiddlewareResponse(
                    status=frame.get("status", 0),
                    content_type=frame.get("content_type", ""),
                    body=frame.get("body", b""),
                    meta=frame.get("meta", {}),
                ))
            except SecurityError as exc:
                result.fail(exc)
            except Interrupt as exc:
                # The timeout watchdog fired: abort the session (a
                # stale half-reply must not answer the next request).
                self.stats.incr("request_timeouts")
                self._abort()
                if not result.triggered:
                    result.fail(exc.cause if isinstance(exc.cause, Exception)
                                else ConnectionError("request interrupted"))
            finally:
                if grant.triggered:
                    self._mutex.release(grant)
                else:
                    grant.cancel()
                end_span(self.sim, span)

        proc = self.sim.spawn(exchange(self.sim), name="wap-get")
        guard_timeout(self.sim, result, proc, timeout,
                      detail=request.get("url", ""))
        return result

    def _abort(self) -> None:
        self.close()
        self._reader = FrameReader()
        self._frames.clear()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._channel = None
