"""Palm Web Clipping: the third middleware of Table 3's ecosystem.

The paper's usage figures (§5.1): "60% of the world's wireless Internet
users were using i-mode, 39% were using WAP, and 1% were using Palm
middleware."  That 1% is Palm's *Web Clipping* system: instead of
translating protocols (WAP) or adapting markup (i-mode), a clipping
proxy strips pages down to pre-digested plain text "clippings" and
ships them zlib-compressed — built for the Palm VII's tiny screens and
slow Mobitex radios, and a natural fit for the Palm i705 in Table 2.

Implemented as a third :class:`~repro.middleware.base.MiddlewareSession`
so the interoperability matrix covers it like the other two.
"""

from __future__ import annotations

import hashlib
import zlib
from collections import deque
from typing import Deque, Optional

from ..net.addressing import IPAddress
from ..net.dns import NameRegistry
from ..net.node import Node
from ..net.tcp import TCPConnection, TCPStack, tcp_stack
from ..obs import ctx_of, end_span, start_span
from ..opt import OPTIMIZATIONS
from ..sim import Counter, Event, Interrupt, RandomStream, Resource
from ..web.client import HTTPClient
from .adaptation import extract_title, strip_tags
from .base import (
    BatchConfig,
    FrameReader,
    MiddlewareResponse,
    MiddlewareSession,
    RequestBatcher,
    encode_frame,
    frame_reply,
    guard_timeout,
    split_url,
)

__all__ = ["WebClippingProxy", "PalmSession", "CLIPPING_PORT",
           "CLIPPING_CONTENT_TYPE", "CLIPPING_BYTE_LIMIT"]

CLIPPING_PORT = 5002
CLIPPING_CONTENT_TYPE = "text/x-palm-clipping"
CLIPPING_BYTE_LIMIT = 1024  # the Palm VII-era hard ceiling per clipping
CLIPPING_TIME_PER_KB = 0.001


class WebClippingProxy:
    """The clipping server: fetch, strip, truncate, compress."""

    # Table 3 properties (cross-checked by the static model checker).
    markup = "web-clipping"
    session_model = "request-response"

    def __init__(self, node: Node, registry: NameRegistry,
                 port: int = CLIPPING_PORT,
                 byte_limit: int = CLIPPING_BYTE_LIMIT,
                 tcp: Optional[TCPStack] = None,
                 breaker=None, origin_timeout: float = 30.0,
                 batching: Optional[BatchConfig] = None,
                 batch_stream: Optional[RandomStream] = None,
                 air_pressure=None, handicap: float = 0.0,
                 metrics=None, metric_name: Optional[str] = None):
        if handicap < 0:
            raise ValueError(f"handicap must be >= 0, got {handicap}")
        self.node = node
        self.sim = node.sim
        self.registry = registry
        self.port = port
        self.byte_limit = byte_limit
        self.tcp = tcp or tcp_stack(node)
        self.http = HTTPClient(node, tcp=self.tcp)
        self.breaker = breaker
        self.origin_timeout = origin_timeout
        self.stats = Counter()
        # Transparent clipping cache keyed by a digest of the origin
        # HTML.  Memoizes the pure strip/truncate/zlib-compress work —
        # the clipping timeout is still charged and counters still tick
        # on hits, so the virtual timeline is unchanged.  Flushed on
        # crash and restart (cold cache after reboot).
        self._clippings: dict[bytes, tuple] = {}
        self.clipping_cache_hits = 0
        # Per-request service handicap in sim-seconds (0 = none); the
        # public knob canary "v2" variants use for degraded builds.
        self.handicap = handicap
        # Optional accumulate-and-flush batching + admission control
        # (None keeps the legacy inline path bit-for-bit).
        self.batcher = None
        if batching is not None:
            self.batcher = RequestBatcher(
                self.sim, batching, handler=self._handle,
                reply_factory=frame_reply, stream=batch_stream,
                stats=self.stats, name=f"clip-batch@{node.name}",
                pressure=air_pressure, metrics=metrics,
                metric_name=metric_name)
        self.is_down = False
        self._conns: list[TCPConnection] = []
        self._listener = self.tcp.listen(port)
        self.sim.spawn(self._accept_loop(), name=f"clipper@{node.name}")

    @property
    def payload_limit(self) -> int:
        return self.byte_limit

    # -- fault hooks -------------------------------------------------------
    def crash(self) -> None:
        if self.is_down:
            return
        self.is_down = True
        self.stats.incr("crashes")
        self._clippings.clear()
        if self.batcher is not None:
            self.batcher.reject_pending("proxy crashed")
        for conn in self._conns:
            conn.close()
        self._conns.clear()

    def restart(self) -> None:
        if not self.is_down:
            return
        self.is_down = False
        self.stats.incr("restarts")
        self._clippings.clear()

    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            if self.is_down:
                conn.close()
                continue
            self._conns.append(conn)
            self.stats.incr("sessions")
            self.sim.spawn(self._serve(conn), name="clipping-session")

    def _serve(self, conn: TCPConnection):
        reader = FrameReader()
        while True:
            chunk = yield conn.recv()
            if chunk == b"":
                if conn in self._conns:
                    self._conns.remove(conn)
                return
            for request in reader.feed(chunk):
                # conn.trace arrives as packet metadata via TCP.
                if self.batcher is not None:
                    reply = yield self.batcher.submit(request,
                                                      parent=conn.trace)
                else:
                    reply = yield from self._handle(request,
                                                    parent=conn.trace)
                if self.is_down or \
                        conn.state not in (TCPConnection.ESTABLISHED,
                                           TCPConnection.CLOSE_WAIT):
                    if conn in self._conns:
                        self._conns.remove(conn)
                    return
                conn.send(encode_frame(reply))

    def _handle(self, request: dict, parent=None):
        self.stats.incr("requests")
        if self.handicap > 0:
            yield self.sim.timeout(self.handicap)
        span = None
        if self.sim.tracer is not None and parent is not None:
            span = start_span(self.sim, "palm.proxy", "middleware",
                              parent=parent,
                              url=request.get("url", ""))
        try:
            reply = yield from self._handle_inner(request, span)
        finally:
            end_span(self.sim, span)
        return reply

    def _handle_inner(self, request: dict, span):
        url = request.get("url", "")
        try:
            host, path = split_url(url)
        except ValueError as exc:
            return {"status": 400, "body": str(exc).encode(), "meta": {}}
        origin = self.registry.lookup(host)
        if origin is None:
            self.stats.incr("dns_failures")
            return {"status": 502,
                    "body": f"cannot resolve {host}".encode(), "meta": {}}
        if self.breaker is not None and not self.breaker.allow():
            self.stats.incr("breaker_rejections")
            return {"status": 503, "body": b"proxy circuit open",
                    "meta": {"retry_after": self.breaker.retry_after}}
        if request.get("method", "GET").upper() == "POST":
            response = yield self.http.post(origin, path,
                                            request.get("body", b""),
                                            timeout=self.origin_timeout,
                                            trace=ctx_of(span))
        else:
            response = yield self.http.get(origin, path,
                                           timeout=self.origin_timeout,
                                           trace=ctx_of(span))
        if response is None:
            self.stats.incr("origin_timeouts")
            if self.breaker is not None:
                self.breaker.record_failure()
            return {"status": 504, "body": b"origin timeout", "meta": {}}
        if self.breaker is not None:
            if response.status >= 500:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        return (yield from self._clip(response, parent=span))

    def _clip(self, response, parent=None):
        body = response.body
        meta = {"origin_bytes": len(body), "clipped": False}
        retry_after = response.headers.get("retry-after")
        if retry_after is not None:
            meta["retry_after"] = float(retry_after)
        if "text/html" in response.content_type:
            clip_span = None
            if parent is not None:
                clip_span = start_span(self.sim, "palm.clip", "middleware",
                                       parent=parent)
            # Clipping CPU cost is charged whether or not the cache
            # hits: the cache saves host time, never virtual time.
            yield self.sim.timeout(
                CLIPPING_TIME_PER_KB * max(1, len(body) // 1024))
            digest = hashlib.sha1(body).digest()
            hit = (self._clippings.get(digest)
                   if OPTIMIZATIONS.translation_cache else None)
            if hit is not None:
                self.clipping_cache_hits += 1
                payload, raw_len, truncated = hit
            else:
                html = body.decode("utf-8", errors="replace")
                title = extract_title(html)
                text = strip_tags(html)
                clipping = (f"{title}\n{text}" if title else text)
                truncated = len(clipping.encode()) > self.byte_limit
                raw = clipping.encode()[: self.byte_limit]
                payload = zlib.compress(raw, level=9)
                raw_len = len(raw)
                if OPTIMIZATIONS.translation_cache:
                    self._clippings[digest] = (payload, raw_len, truncated)
            meta.update(clipped=True, truncated=truncated)
            self.stats.incr("clippings")
            meta["compressed_bytes"] = len(payload)
            meta["clipping_bytes"] = raw_len
            end_span(self.sim, clip_span, clipping_bytes=raw_len)
            return {"status": response.status, "body": payload,
                    "content_type": CLIPPING_CONTENT_TYPE, "meta": meta}
        # Non-HTML passes through uncompressed (rare for Palm-era use).
        return {"status": response.status, "body": body,
                "content_type": response.content_type, "meta": meta}


class PalmSession(MiddlewareSession):
    """Device-side clipping client (decompresses on arrival)."""

    middleware_name = "Palm Web Clipping"
    session_model = "request-response"

    def __init__(self, node: Node, proxy_address: IPAddress,
                 port: int = CLIPPING_PORT, tcp: Optional[TCPStack] = None):
        self.node = node
        self.sim = node.sim
        self.proxy_address = proxy_address
        self.port = port
        self.tcp = tcp or tcp_stack(node)
        self.stats = Counter()
        self._conn: Optional[TCPConnection] = None
        self._reader = FrameReader()
        self._frames: Deque[dict] = deque()
        self._mutex = Resource(self.sim, capacity=1)

    def _ensure_connected(self):
        if self._conn is not None and \
                self._conn.state == TCPConnection.ESTABLISHED:
            return
        self._conn = self.tcp.connect(self.proxy_address, self.port)
        self.stats.incr("session_establishments")
        yield self._conn.established_event

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        return self._roundtrip({"method": "GET", "url": url}, trace=trace,
                               timeout=timeout)

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        from urllib.parse import urlencode
        return self._roundtrip({"method": "POST", "url": url,
                                "body": urlencode(form).encode()},
                               trace=trace, timeout=timeout)

    def _roundtrip(self, request: dict, trace=None,
                   timeout: Optional[float] = None) -> Event:
        result = self.sim.event()
        span = None
        if trace is not None:
            span = start_span(self.sim, "clip.request", "middleware",
                              parent=trace, url=request.get("url", ""))

        def exchange(env):
            grant = self._mutex.request()
            try:
                yield grant
                yield from self._ensure_connected()
                if span is not None:
                    self._conn.trace = span.context()
                self._conn.send(encode_frame(request))
                self.stats.incr("requests")
                while not self._frames:
                    chunk = yield self._conn.recv()
                    if chunk == b"":
                        result.fail(
                            ConnectionError("clipping session closed"))
                        return
                    self._frames.extend(self._reader.feed(chunk))
                frame = self._frames.popleft()
                body = frame.get("body", b"")
                content_type = frame.get("content_type", "text/plain")
                meta = frame.get("meta", {})
                if content_type == CLIPPING_CONTENT_TYPE and \
                        meta.get("clipped"):
                    meta["wire_bytes"] = len(body)
                    body = zlib.decompress(body)
                result.succeed(MiddlewareResponse(
                    status=frame.get("status", 0),
                    content_type=content_type,
                    body=body,
                    meta=meta,
                ))
            except Interrupt as exc:
                self.stats.incr("request_timeouts")
                self._abort()
                if not result.triggered:
                    result.fail(exc.cause if isinstance(exc.cause, Exception)
                                else ConnectionError("request interrupted"))
            finally:
                if grant.triggered:
                    self._mutex.release(grant)
                else:
                    grant.cancel()
                end_span(self.sim, span)

        proc = self.sim.spawn(exchange(self.sim), name="palm-get")
        guard_timeout(self.sim, result, proc, timeout,
                      detail=request.get("url", ""))
        return result

    def _abort(self) -> None:
        self.close()
        self._reader = FrameReader()
        self._frames.clear()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
