"""cHTML (Compact HTML): i-mode's host language (paper Table 3).

cHTML is a strict subset of HTML designed for phones: no tables, no
frames, no scripts, no stylesheets.  :func:`to_chtml` downgrades full
HTML to that subset (the adaptation i-mode content providers do at
authoring time — here done by the i-mode centre for legacy content),
and :func:`is_compact` checks conformance.
"""

from __future__ import annotations

__all__ = ["CHTML_CONTENT_TYPE", "ALLOWED_TAGS", "to_chtml", "is_compact"]

CHTML_CONTENT_TYPE = "text/x-chtml"

# The cHTML 1.0 tag whitelist (abridged to what our pages use).
ALLOWED_TAGS = {
    "html", "head", "title", "body", "p", "br", "a", "h1", "h2", "h3",
    "ul", "ol", "li", "blockquote", "pre", "center", "hr", "img", "form",
    "input", "select", "option", "textarea", "div", "b", "i",
}

# Tags whose *content* must be dropped entirely, not just the tags.
_DROP_CONTENT_TAGS = {"script", "style"}


def _tag_name(tag_body: str) -> str:
    name = tag_body.strip().lstrip("/").split()[0] if tag_body.strip() else ""
    return name.lower().rstrip("/")


def to_chtml(html: str) -> str:
    """Reduce HTML to the cHTML subset.

    Disallowed tags are removed (content kept, except script/style whose
    bodies are dropped); attributes other than href/src/name/value/type
    are stripped.
    """
    out: list[str] = []
    pos = 0
    skip_until: str | None = None
    while pos < len(html):
        start = html.find("<", pos)
        if start < 0:
            if skip_until is None:
                out.append(html[pos:])
            break
        if start > pos and skip_until is None:
            out.append(html[pos:start])
        end = html.find(">", start)
        if end < 0:
            break
        tag_body = html[start + 1: end]
        name = _tag_name(tag_body)
        pos = end + 1
        if skip_until is not None:
            if tag_body.strip().startswith("/") and name == skip_until:
                skip_until = None
            continue
        if name in _DROP_CONTENT_TAGS:
            if not tag_body.strip().startswith("/") and \
                    not tag_body.rstrip().endswith("/"):
                skip_until = name
            continue
        if name in ALLOWED_TAGS:
            out.append(_clean_tag(tag_body, name))
    return "".join(out)


def _clean_tag(tag_body: str, name: str) -> str:
    closing = tag_body.strip().startswith("/")
    if closing:
        return f"</{name}>"
    kept = []
    for attr in ("href", "src", "name", "value", "type", "action", "method"):
        marker = f'{attr}="'
        idx = tag_body.find(marker)
        if idx >= 0:
            end = tag_body.find('"', idx + len(marker))
            if end > 0:
                kept.append(tag_body[idx: end + 1])
    attrs = (" " + " ".join(kept)) if kept else ""
    return f"<{name}{attrs}>"


def is_compact(html: str) -> bool:
    """True if every tag in ``html`` is in the cHTML whitelist."""
    pos = 0
    while True:
        start = html.find("<", pos)
        if start < 0:
            return True
        end = html.find(">", start)
        if end < 0:
            return False
        name = _tag_name(html[start + 1: end])
        if name and name not in ALLOWED_TAGS:
            return False
        pos = end + 1
