"""Content adaptation: translating host content for mobile stations.

"[Middleware] translates requests from mobile stations to a host
computer and adapts content from the host to the mobile station" [11].
The two directions implemented here:

* :func:`html_to_wml` — the WAP gateway's transcoding: full HTML from
  the web server becomes a WML deck, long pages split into cards sized
  for a phone screen;
* :func:`personalize` — per-user adaptation hooks (requirement 2 of
  §1.1: "products to be personalized or customized upon request").
"""

from __future__ import annotations

from typing import Callable, Optional

from .wml import WMLCard, WMLDocument

__all__ = ["html_to_wml", "extract_title", "extract_links", "strip_tags",
           "personalize", "CARD_TEXT_LIMIT"]

CARD_TEXT_LIMIT = 500  # characters of body text per card


def strip_tags(html: str) -> str:
    """Plain text of an HTML document (whitespace-normalised)."""
    out: list[str] = []
    in_tag = False
    skip_depth = 0
    pos = 0
    while pos < len(html):
        ch = html[pos]
        if ch == "<":
            lowered = html[pos:pos + 8].lower()
            if lowered.startswith("<script") or lowered.startswith("<style"):
                close = html.lower().find("</", pos + 1)
                end = html.find(">", close) if close >= 0 else -1
                pos = end + 1 if end >= 0 else len(html)
                continue
            in_tag = True
        elif ch == ">":
            in_tag = False
            out.append(" ")
        elif not in_tag:
            out.append(ch)
        pos += 1
    text = "".join(out)
    for entity, char in [("&amp;", "&"), ("&lt;", "<"), ("&gt;", ">"),
                         ("&nbsp;", " "), ("&quot;", '"')]:
        text = text.replace(entity, char)
    return " ".join(text.split())


def extract_title(html: str) -> str:
    lowered = html.lower()
    start = lowered.find("<title>")
    if start < 0:
        return ""
    end = lowered.find("</title>", start)
    if end < 0:
        return ""
    return html[start + len("<title>"): end].strip()


def extract_links(html: str) -> list[tuple[str, str]]:
    """(href, label) pairs from anchor tags."""
    links = []
    pos = 0
    lowered = html.lower()
    while True:
        anchor = lowered.find("<a ", pos)
        if anchor < 0:
            return links
        tag_end = html.find(">", anchor)
        close = lowered.find("</a>", tag_end)
        if tag_end < 0 or close < 0:
            return links
        tag_body = html[anchor: tag_end]
        href = ""
        marker = 'href="'
        idx = tag_body.lower().find(marker)
        if idx >= 0:
            end_quote = tag_body.find('"', idx + len(marker))
            if end_quote > 0:
                href = tag_body[idx + len(marker): end_quote]
        label = strip_tags(html[tag_end + 1: close])
        if href:
            links.append((href, label))
        pos = close + 4


def html_to_wml(html: str, card_limit: int = CARD_TEXT_LIMIT) -> WMLDocument:
    """Transcode an HTML page into a WML deck.

    The page title becomes every card's title; body text is split into
    ``card_limit``-character cards chained with "More" links; anchors
    collect on the final card.
    """
    title = extract_title(html) or "Untitled"
    text = strip_tags(html)
    links = extract_links(html)

    chunks: list[str] = []
    words = text.split()
    current: list[str] = []
    length = 0
    for word in words:
        if length + len(word) + 1 > card_limit and current:
            chunks.append(" ".join(current))
            current, length = [], 0
        current.append(word)
        length += len(word) + 1
    if current:
        chunks.append(" ".join(current))
    if not chunks:
        chunks = [""]

    document = WMLDocument()
    for index, chunk in enumerate(chunks):
        card = WMLCard(card_id=f"c{index}", title=title)
        if chunk:
            card.paragraphs.append(chunk)
        if index + 1 < len(chunks):
            card.links.append((f"#c{index + 1}", "More"))
        document.cards.append(card)
    for href, label in links:
        document.cards[-1].links.append((href, label or href))
    return document


def personalize(html: str, profile: Optional[dict],
                rules: Optional[list[Callable[[str, dict], str]]] = None) \
        -> str:
    """Apply per-user adaptation rules to a page.

    Built-in behaviour: substitute ``[[name]]``-style profile fields.
    Extra rules are callables ``(html, profile) -> html`` applied in
    order — the hook applications register for requirement 2.
    """
    if profile:
        for key, value in profile.items():
            html = html.replace(f"[[{key}]]", str(value))
    for rule in rules or []:
        html = rule(html, profile or {})
    return html
